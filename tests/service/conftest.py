"""Shared fixtures for the service concurrency/fault test suite.

Federations here are deliberately small (the suite runs under the
``--racecheck`` sanitizer, which slows every lock), built fresh per
test, and always configured with the degrading federation policy —
the service's production stance: a failing or slow source makes an
answer partial, never a 500.
"""

import threading

import pytest

from repro.core.annoda import Annoda, AnnodaConfig
from repro.mediator.fetch import FederationPolicy, FlakyWrapper
from repro.service import AnnodaService, ServiceConfig
from repro.sources.corpus import AnnotationCorpus, CorpusParameters
from repro.wrappers import default_wrappers

#: The suite's corpus: small, deterministic, non-trivial answers.
SEED = 5
PARAMETERS = dict(loci=60, go_terms=40, omim_entries=25)


class GateWrapper:
    """A wrapper proxy whose every fetch parks until a gate opens.

    Lets tests hold worker threads busy deterministically (fill the
    admission queue, then open the gate) without sleeping.
    """

    def __init__(self, wrapper, gate):
        self._wrapped = wrapper
        self._gate = gate

    def __getattr__(self, name):
        return getattr(self._wrapped, name)

    def fetch(self, request=()):
        self._gate.wait()
        return self._wrapped.fetch(request)


def build_annoda(seed=SEED, policy=None, config=None, flaky=None,
                 gate=None, parameters=None):
    """A fresh degrade-policy federation over the suite's corpus.

    ``flaky`` maps source name -> :class:`FlakyWrapper` kwargs;
    ``gate`` (a ``threading.Event``) wraps *every* source in a
    :class:`GateWrapper`.
    """
    corpus = AnnotationCorpus.generate(
        seed=seed,
        parameters=CorpusParameters(**(parameters or PARAMETERS)),
    )
    if config is None:
        config = AnnodaConfig(
            federation=policy or FederationPolicy(on_failure="degrade")
        )
    annoda = Annoda(config=config)
    annoda.corpus = corpus
    for wrapper in default_wrappers(corpus):
        kwargs = (flaky or {}).get(wrapper.name)
        if kwargs is not None:
            wrapper = FlakyWrapper(wrapper, **kwargs)
        if gate is not None:
            wrapper = GateWrapper(wrapper, gate)
        annoda.add_source(wrapper)
    return annoda


def make_service(annoda=None, queue_capacity=8, workers=2,
                 default_deadline=None, **annoda_kwargs):
    """A started service over a fresh (or given) federation."""
    if annoda is None:
        annoda = build_annoda(**annoda_kwargs)
    service = AnnodaService(
        annoda,
        ServiceConfig(
            queue_capacity=queue_capacity,
            workers=workers,
            default_deadline=default_deadline,
        ),
    )
    return service.start()


@pytest.fixture
def gate():
    """An initially closed gate; tests must open it before exiting so
    parked worker threads always run to completion."""
    event = threading.Event()
    yield event
    event.set()
