"""Fault injection through the whole service path.

Reuses :class:`~repro.mediator.fetch.FlakyWrapper` under the service:
a flaky source yields HTTP 200 *partial* answers whose body carries
the degraded-source report fields, retries recover transient faults,
and — the PR 6 rule, regression-pinned end to end — a degraded answer
never poisons the artifact cache or the result cache: the next healthy
request gets the full answer, not a replay of the truncated one.
"""

from repro.core.annoda import Annoda, AnnodaConfig
from repro.mediator.fetch import FederationPolicy, FlakyWrapper
from repro.questions.catalog import QuestionCatalog
from repro.service import ServiceRequest
from repro.sources.corpus import AnnotationCorpus, CorpusParameters
from repro.wrappers import default_wrappers

from tests.service.conftest import PARAMETERS, SEED, build_annoda, make_service


def _blackout_federation(stage_artifacts=False):
    """A degrade-policy federation whose OMIM wrapper can be switched
    dark; returns ``(annoda, omim_flaky)``."""
    corpus = AnnotationCorpus.generate(
        seed=SEED, parameters=CorpusParameters(**PARAMETERS)
    )
    annoda = Annoda(config=AnnodaConfig(
        federation=FederationPolicy(on_failure="degrade"),
        stage_artifacts=stage_artifacts,
    ))
    annoda.corpus = corpus
    omim_flaky = None
    for wrapper in default_wrappers(corpus):
        if wrapper.name == "OMIM":
            wrapper = omim_flaky = FlakyWrapper(wrapper)
        annoda.add_source(wrapper)
    return annoda, omim_flaky


class TestDegradedAnswers:
    def test_blackout_source_yields_200_partial_with_report(self):
        annoda, omim = _blackout_federation()
        omim.blackout = True
        service = make_service(annoda=annoda, workers=2)
        try:
            response = service.ask(
                ServiceRequest(question="disease_genes", use_cache=False),
                timeout=30,
            )
            assert response.status == 200
            assert response.body["outcome"] == "degraded"
            assert response.body["result"]["degraded_sources"] == ["OMIM"]
            assert response.body["sources"]["OMIM"]["status"] == "degraded"
            assert service.metrics.value("requests_degraded") == 1
        finally:
            service.shutdown(drain=True, timeout=30)

    def test_retries_recover_transient_faults_to_a_full_answer(self):
        annoda = build_annoda(
            policy=FederationPolicy(
                on_failure="degrade", retries=4, backoff=0.0
            ),
            flaky={"GO": {"fail_first": 2}},
        )
        service = make_service(annoda=annoda, workers=1)
        try:
            response = service.ask(
                ServiceRequest(question="figure5b", use_cache=False),
                timeout=30,
            )
            assert response.status == 200
            assert response.body["outcome"] == "ok"
            assert response.body["result"]["degraded_sources"] == []
            snapshot = service.metrics.snapshot()
            assert snapshot["pipeline"]["retries"] >= 2
        finally:
            service.shutdown(drain=True, timeout=30)

    def test_error_rate_degrades_without_retries(self):
        annoda = build_annoda(
            flaky={"GO": {"blackout": True}},
        )
        service = make_service(annoda=annoda, workers=2)
        try:
            response = service.ask(
                ServiceRequest(question="figure5b", use_cache=False),
                timeout=30,
            )
            assert response.status == 200
            assert "GO" in response.body["result"]["degraded_sources"]
        finally:
            service.shutdown(drain=True, timeout=30)


class TestCachesNeverPoisoned:
    def test_degraded_answer_not_served_to_the_next_healthy_request(self):
        """Artifact cache end-to-end pin: outage, then recovery — the
        post-recovery answer is full, not the cached partial."""
        annoda, omim = _blackout_federation(stage_artifacts=True)
        # The true answer, from an identically-seeded healthy twin.
        twin, _ = _blackout_federation()
        expected = sorted(
            twin.ask(QuestionCatalog.disease_genes()).gene_ids()
        )

        service = make_service(annoda=annoda, workers=1)
        try:
            omim.blackout = True
            dark = service.ask(
                ServiceRequest(question="disease_genes", use_cache=False),
                timeout=30,
            )
            assert dark.body["outcome"] == "degraded"
            assert dark.body["result"]["gene_ids"] != expected

            omim.blackout = False
            healthy = service.ask(
                ServiceRequest(question="disease_genes", use_cache=False),
                timeout=30,
            )
            assert healthy.status == 200
            assert healthy.body["outcome"] == "ok"
            assert healthy.body["result"]["degraded_sources"] == []
            assert healthy.body["result"]["gene_ids"] == expected
        finally:
            service.shutdown(drain=True, timeout=30)

    def test_budget_degraded_answer_not_stored_in_result_cache(self):
        """A deadline-truncated answer must not satisfy a later repeat
        of the same question made with a fresh budget."""
        annoda = build_annoda(
            flaky={
                name: {"latency": 0.15}
                for name in ("LocusLink", "GO", "OMIM")
            },
        )
        service = make_service(annoda=annoda, workers=1)
        try:
            truncated = service.ask(
                ServiceRequest(question="figure5b", deadline=0.02),
                timeout=30,
            )
            assert truncated.body["outcome"] == "degraded"

            full = service.ask(
                ServiceRequest(question="figure5b"), timeout=60
            )
            assert full.status == 200
            assert full.body["outcome"] == "ok"
            assert (
                full.body["result"]["gene_count"]
                > truncated.body["result"]["gene_count"]
            )
        finally:
            service.shutdown(drain=True, timeout=30)

    def test_fault_degraded_answer_is_cached_like_budgetless_queries(self):
        """Only *budget-caused* truncation bypasses the result cache.
        A source-fault-degraded answer under a live (unexpired) budget
        caches exactly as the same query without a budget would, so a
        flapping source doesn't force a full re-execution per repeat."""
        annoda, omim = _blackout_federation()
        omim.blackout = True
        service = make_service(annoda=annoda, workers=1)
        try:
            first = service.ask(
                ServiceRequest(question="disease_genes"), timeout=30
            )
            assert first.body["outcome"] == "degraded"
            rows_after_first = service.metrics.snapshot()["pipeline"]["rows"]
            second = service.ask(
                ServiceRequest(question="disease_genes"), timeout=30
            )
            assert second.body["outcome"] == "degraded"
            assert second.body["result"] == first.body["result"]
            # The repeat was a result-cache hit: no new pipeline work.
            rows_after_second = (
                service.metrics.snapshot()["pipeline"]["rows"]
            )
            assert rows_after_second == rows_after_first
            assert service.metrics.value("result_cache_hits") == 1
        finally:
            service.shutdown(drain=True, timeout=30)

    def test_healthy_answers_are_cached_across_requests(self):
        """The flip side: clean repeats do hit the result cache (the
        second identical request does zero new fetching)."""
        service = make_service(workers=1)
        try:
            first = service.ask(
                ServiceRequest(question="figure5b"), timeout=30
            )
            rows_after_first = service.metrics.snapshot()["pipeline"]["rows"]
            second = service.ask(
                ServiceRequest(question="figure5b"), timeout=30
            )
            rows_after_second = (
                service.metrics.snapshot()["pipeline"]["rows"]
            )
            assert first.body["result"] == second.body["result"]
            # The cached repeat did no new pipeline work, so its
            # (replayed) execution stats are not folded in again.
            assert rows_after_second == rows_after_first
            assert service.metrics.value("result_cache_hits") == 1
        finally:
            service.shutdown(drain=True, timeout=30)
