"""Per-request deadlines: expiry degrades, never hangs a worker.

Covers the cooperative cancellation seam end to end: the
:class:`~repro.util.cancel.RequestBudget` unit semantics (against a
fake clock), the fetcher's budget handling, and the service-level
guarantee that a deadline-expired request returns a degraded partial
answer within one scheduling quantum of its deadline.
"""

import time

import pytest

from repro.mediator.fetch import (
    FederatedFetcher,
    FederationPolicy,
    FetchRequest,
)
from repro.service import ServiceRequest
from repro.util.cancel import RequestBudget
from repro.util.clock import FakeClock

from tests.service.conftest import build_annoda, make_service

#: The acceptance bar's "one scheduling quantum": generous enough for
#: a loaded CI box, tiny against the seconds an undegraded execution
#: of the latency-injected federation would take.
QUANTUM = 1.0


class TestRequestBudget:
    def test_unbounded_budget_never_expires(self):
        budget = RequestBudget()
        assert budget.remaining() is None
        assert budget.deadline is None
        assert not budget.expired

    def test_remaining_counts_down_on_the_injected_clock(self):
        clock = FakeClock(start=100.0, tick=0.0)
        budget = RequestBudget(deadline=5.0, clock=clock)
        assert budget.remaining() == pytest.approx(5.0)
        clock.advance(3.0)
        assert budget.remaining() == pytest.approx(2.0)
        assert not budget.expired
        clock.advance(3.0)
        assert budget.remaining() == 0.0
        assert budget.expired

    def test_cancel_zeroes_the_remaining_time(self):
        budget = RequestBudget(deadline=60.0)
        budget.cancel("shutdown")
        assert budget.cancelled
        assert budget.remaining() == 0.0
        assert budget.expired
        assert budget.reason == "shutdown"

    def test_cancel_without_deadline_still_expires(self):
        budget = RequestBudget()
        budget.cancel()
        assert budget.remaining() == 0.0
        assert budget.expired

    def test_first_cancel_reason_wins(self):
        budget = RequestBudget()
        budget.cancel("first")
        budget.cancel("second")
        assert budget.reason == "first"

    def test_negative_deadline_is_rejected(self):
        with pytest.raises(ValueError):
            RequestBudget(deadline=-1.0)


class _CountingWrapper:
    name = "Counting"

    def __init__(self):
        self.calls = 0

    def fetch(self, request=()):
        self.calls += 1
        return [{"GeneID": "X"}]


class TestFetcherBudget:
    def test_expired_budget_times_out_without_touching_the_source(self):
        wrapper = _CountingWrapper()
        fetcher = FederatedFetcher(FederationPolicy())
        budget = RequestBudget(deadline=0.0)
        reply = fetcher.fetch(
            wrapper, FetchRequest(purpose="anchor", budget=budget)
        )
        assert reply.status == "timeout"
        assert wrapper.calls == 0
        assert "deadline" in reply.error

    def test_cancelled_budget_times_out_without_touching_the_source(self):
        wrapper = _CountingWrapper()
        fetcher = FederatedFetcher(FederationPolicy())
        budget = RequestBudget()
        budget.cancel("client gone")
        reply = fetcher.fetch(
            wrapper, FetchRequest(purpose="anchor", budget=budget)
        )
        assert reply.status == "timeout"
        assert wrapper.calls == 0
        assert "client gone" in reply.error

    def test_live_budget_lets_the_fetch_through(self):
        wrapper = _CountingWrapper()
        fetcher = FederatedFetcher(FederationPolicy())
        reply = fetcher.fetch(
            wrapper,
            FetchRequest(purpose="anchor", budget=RequestBudget(deadline=60)),
        )
        assert reply.status == "ok"
        assert wrapper.calls == 1

    def test_budget_does_not_change_request_identity(self):
        bare = FetchRequest(purpose="anchor")
        budgeted = FetchRequest(
            purpose="anchor", budget=RequestBudget(deadline=1)
        )
        assert bare == budgeted
        assert hash(bare) == hash(budgeted)


class TestServiceDeadlines:
    def test_expired_deadline_degrades_within_one_quantum(self):
        """A request whose deadline passes mid-execution answers 200
        with the remaining sources degraded — within deadline + one
        scheduling quantum, not after the full slow execution."""
        deadline = 0.05
        latency = 0.4
        annoda = build_annoda(
            flaky={
                name: {"latency": latency}
                for name in ("LocusLink", "GO", "OMIM")
            },
        )
        service = make_service(annoda=annoda, workers=1)
        try:
            started = time.perf_counter()
            response = service.ask(
                ServiceRequest(
                    question="figure5b", deadline=deadline, use_cache=False
                ),
                timeout=30,
            )
            elapsed = time.perf_counter() - started
            assert response.status == 200
            assert response.body["outcome"] == "degraded"
            assert response.body["deadline_expired"] is True
            assert response.body["result"]["degraded_sources"]
            assert elapsed < deadline + latency + QUANTUM
        finally:
            service.shutdown(drain=True, timeout=30)

    def test_deadline_spent_in_queue_counts(self, gate):
        """Queue wait burns the budget: a request that waited out its
        whole deadline degrades immediately once a worker frees up."""
        service = make_service(gate=gate, workers=1, queue_capacity=4)
        try:
            blocker = service.submit(
                ServiceRequest(question="figure5b", use_cache=False)
            )
            waiter = service.submit(
                ServiceRequest(
                    question="disease_genes",
                    deadline=0.02,
                    use_cache=False,
                )
            )
            # Park long enough that the waiter's budget is gone before
            # the gate opens and the worker reaches it.
            time.sleep(0.1)
            gate.set()
            response = waiter.result(timeout=30)
            assert response.status == 200
            assert response.body["outcome"] == "degraded"
            assert response.body["deadline_expired"] is True
            assert blocker.result(timeout=30).status == 200
        finally:
            gate.set()
            service.shutdown(drain=True, timeout=30)

    def test_default_deadline_from_config_applies(self):
        annoda = build_annoda(
            flaky={"GO": {"latency": 0.3}},
        )
        service = make_service(
            annoda=annoda, workers=1, default_deadline=0.03
        )
        try:
            response = service.ask(
                ServiceRequest(question="figure5b", use_cache=False),
                timeout=30,
            )
            assert response.status == 200
            assert response.body["deadline"] == pytest.approx(0.03)
            assert response.body["outcome"] == "degraded"
        finally:
            service.shutdown(drain=True, timeout=30)

    def test_generous_deadline_answers_in_full(self):
        service = make_service(workers=1)
        try:
            response = service.ask(
                ServiceRequest(question="figure5b", deadline=60.0),
                timeout=30,
            )
            assert response.status == 200
            assert response.body["outcome"] == "ok"
            assert response.body["deadline_expired"] is False
            assert response.body["result"]["degraded_sources"] == []
        finally:
            service.shutdown(drain=True, timeout=30)
