"""Bounded admission and load-shedding under burst load.

The contract: a request either gets a queue seat (and is definitely
answered) or is rejected *immediately* with 429 + ``Retry-After`` —
the backlog never exceeds capacity, nothing deadlocks, and every
ticket the service hands out resolves.
"""

import threading

import pytest

from repro.service import AdmissionQueue, ServiceRequest, Ticket
from repro.util.cancel import RequestBudget

from tests.service.conftest import make_service


def _ticket(request_id=1):
    return Ticket(
        ServiceRequest(question="figure5b"), request_id, RequestBudget()
    )


class TestAdmissionQueue:
    def test_fifo_within_capacity(self):
        queue = AdmissionQueue(capacity=3)
        tickets = [_ticket(n) for n in range(3)]
        assert all(queue.offer(ticket) for ticket in tickets)
        assert [queue.take().request_id for _ in range(3)] == [0, 1, 2]

    def test_offer_rejects_when_full_without_blocking(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.offer(_ticket(1))
        assert queue.offer(_ticket(2))
        assert not queue.offer(_ticket(3))
        assert len(queue) == 2

    def test_offer_rejects_after_close(self):
        queue = AdmissionQueue(capacity=2)
        queue.close()
        assert not queue.offer(_ticket(1))

    def test_take_drains_queued_tickets_after_close(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer(_ticket(1))
        queue.close()
        assert queue.take().request_id == 1
        assert queue.take() is None

    def test_close_wakes_blocked_takers(self):
        queue = AdmissionQueue(capacity=1)
        taken = []
        thread = threading.Thread(
            target=lambda: taken.append(queue.take()), daemon=True
        )
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert taken == [None]

    def test_flush_empties_the_queue(self):
        queue = AdmissionQueue(capacity=4)
        for n in range(3):
            queue.offer(_ticket(n))
        queue.close()
        flushed = queue.flush()
        assert [ticket.request_id for ticket in flushed] == [0, 1, 2]
        assert len(queue) == 0
        assert queue.take() is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


class TestBurstShedding:
    def test_burst_beyond_capacity_sheds_with_429(self, gate):
        """workers + capacity seats answer; the rest shed instantly."""
        capacity, workers = 2, 1
        service = make_service(
            gate=gate, queue_capacity=capacity, workers=workers
        )
        try:
            # Park the worker on the gate, then fill every queue seat.
            parked = [service.submit(ServiceRequest(question="figure5b"))]
            pause = threading.Event()
            for _ in range(500):
                if service.pool.inflight() == workers:
                    break
                pause.wait(0.01)
            else:
                pytest.fail("worker never picked up the first request")
            parked += [
                service.submit(ServiceRequest(question="figure5b"))
                for _ in range(capacity)
            ]
            assert not any(ticket.done for ticket in parked)
            assert len(service.queue) == capacity

            # One more is over capacity — it must shed immediately.
            shed_ticket = service.submit(
                ServiceRequest(question="figure5b")
            )
            assert shed_ticket.done
            response = shed_ticket.result(timeout=1)
            assert response.status == 429
            assert response.retry_after is not None
            assert response.retry_after > 0
            assert response.body["outcome"] == "shed"
            assert "queue full" in response.body["error"]
            assert len(service.queue) <= capacity
        finally:
            gate.set()
            service.shutdown(drain=True, timeout=30)
        # Every admitted ticket resolved with a real answer.
        for ticket in parked:
            answered = ticket.result(timeout=30)
            assert answered.status == 200
            assert answered.body["result"]["gene_count"] > 0

    def test_shed_responses_resolve_without_waiting(self, gate):
        service = make_service(gate=gate, queue_capacity=1, workers=1)
        try:
            for _ in range(10):
                service.submit(ServiceRequest(question="figure5b"))
            shed = service.metrics.value("requests_shed")
            assert shed >= 7  # 10 submitted, 1 in flight + 1-2 seated
            received = service.metrics.value("requests_received")
            assert received == 10
        finally:
            gate.set()
            service.shutdown(drain=True, timeout=30)

    def test_shedding_is_recoverable(self, gate):
        """Once the burst drains, new requests are admitted again."""
        service = make_service(gate=gate, queue_capacity=1, workers=1)
        try:
            for _ in range(5):
                service.submit(ServiceRequest(question="figure5b"))
            assert service.metrics.value("requests_shed") >= 1
            gate.set()
            # The backlog drains asynchronously; retry (as a real
            # client honouring Retry-After would) until admitted.
            pause = threading.Event()
            for _ in range(500):
                late = service.ask(
                    ServiceRequest(question="disease_genes"), timeout=30
                )
                if late.status != 429:
                    break
                pause.wait(late.retry_after or 0.01)
            assert late.status == 200
            assert late.body["outcome"] == "ok"
        finally:
            gate.set()
            service.shutdown(drain=True, timeout=30)

    def test_queue_high_watermark_is_bounded_by_capacity(self, gate):
        capacity = 3
        service = make_service(
            gate=gate, queue_capacity=capacity, workers=1
        )
        try:
            for _ in range(12):
                service.submit(ServiceRequest(question="figure5b"))
            watermark = service.metrics.value("queue_high_watermark")
            assert 1 <= watermark <= capacity
        finally:
            gate.set()
            service.shutdown(drain=True, timeout=30)
