"""The stdlib HTTP shell: routes, status codes, headers, CLI entry.

Servers bind an ephemeral port (``port=0``) and are driven with
``urllib`` — no third-party client.  The transport must faithfully
relay the core's semantics: 200 full/partial answers, 400 on
malformed bodies, 404 on unknown routes, 429 + ``Retry-After`` on
shed, and JSON everywhere.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceConfig, serve

from tests.service.conftest import build_annoda


@pytest.fixture
def server(gate):
    """An HTTP server over a small gated federation (the gate starts
    open; tests close it to park workers)."""
    gate.set()
    http_server = serve(
        build_annoda(gate=gate),
        port=0,
        config=ServiceConfig(queue_capacity=2, workers=1),
    )
    thread = threading.Thread(
        target=http_server.serve_forever, daemon=True
    )
    thread.start()
    yield http_server
    gate.set()
    http_server.close(drain=True)
    thread.join(timeout=30)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _post(server, payload, raw=None):
    data = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        _url(server, "/query"),
        data=data,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestRoutes:
    def test_query_answers_a_catalog_question(self, server):
        status, _headers, body = _post(server, {"question": "figure5b"})
        assert status == 200
        assert body["outcome"] == "ok"
        assert body["result"]["gene_count"] > 0
        assert body["result"]["gene_ids"] == sorted(
            body["result"]["gene_ids"]
        )

    def test_query_answers_free_text(self, server):
        status, _headers, body = _post(
            server,
            {"text": "Find genes associated with some OMIM disease"},
        )
        assert status == 200
        assert body["kind"] == "text"
        assert body["result"]["gene_count"] > 0

    def test_query_with_params(self, server):
        status, _headers, body = _post(
            server,
            {
                "question": "genes_by_annotation_keyword",
                "params": {"keyword": "binding"},
            },
        )
        assert status == 200
        assert body["outcome"] == "ok"

    def test_malformed_json_is_400(self, server):
        status, _headers, body = _post(server, None, raw=b"{nope")
        assert status == 400
        assert "not JSON" in body["error"]

    def test_unknown_question_is_400(self, server):
        status, _headers, body = _post(server, {"question": "nope"})
        assert status == 400
        assert "unknown catalog question" in body["error"]

    def test_missing_question_is_400(self, server):
        status, _headers, body = _post(server, {})
        assert status == 400
        assert "exactly one" in body["error"]

    def test_unknown_endpoint_is_404(self, server):
        status, _headers, body = _get(server, "/nope")
        assert status == 404
        assert "no such endpoint" in body["error"]

    def test_questions_lists_the_catalog(self, server):
        status, _headers, body = _get(server, "/questions")
        assert status == 200
        names = [entry["name"] for entry in body["questions"]]
        assert "figure5b" in names
        assert "genes_under_term" in names
        by_name = {entry["name"]: entry["params"] for entry in body["questions"]}
        assert by_name["genes_by_annotation_keyword"] == [
            "keyword", "aspect",
        ]

    def test_healthz_reports_capacity(self, server):
        status, _headers, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queue_capacity"] == 2
        assert body["workers"] == 1

    def test_metrics_snapshot_counts_requests(self, server):
        _post(server, {"question": "figure5b"})
        status, _headers, body = _get(server, "/metrics")
        assert status == 200
        assert body["service"]["requests_received"] >= 1
        assert body["pipeline"]["rows"] >= 1

    def test_requests_returns_log_shapes(self, server):
        _post(server, {"question": "disease_genes"})
        status, _headers, body = _get(server, "/requests")
        assert status == 200
        assert body["requests"], "request log is empty"
        record = body["requests"][-1]
        assert record["question"] == "disease_genes"
        assert record["http_status"] == 200
        # Volatile fields are normalized out of the shape.
        assert "elapsed" not in record
        assert "request_id" not in record


class TestSheddingOverHTTP:
    def test_queue_full_is_429_with_retry_after(self, server, gate):
        gate.clear()  # park the worker on its next fetch
        background = []
        # Saturate the single worker plus both queue seats with
        # background clients (they park behind the gate), then make
        # one more request — it must shed immediately.
        clients = [
            threading.Thread(
                target=lambda: background.append(_post(
                    server,
                    {"question": "figure5b", "use_cache": False},
                )),
                daemon=True,
            )
            for _ in range(3)
        ]
        try:
            for thread in clients:
                thread.start()
            # Generous deadline: under the racecheck plugin every lock
            # acquisition is instrumented and the three background
            # clients can take well over the uninstrumented time to
            # reach their seats.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _status, _headers, health = _get(server, "/healthz")
                if (
                    health["queue_depth"] >= 2
                    and health["inflight"] >= 1
                ):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("queue never filled")
            status, headers, body = _post(
                server, {"question": "figure5b", "use_cache": False}
            )
            assert status == 429
            assert body["outcome"] == "shed"
            assert "Retry-After" in headers
            assert float(headers["Retry-After"]) > 0
        finally:
            gate.set()
            for thread in clients:
                thread.join(timeout=60)
        assert sorted(s for s, _h, _b in background) == [200, 200, 200]


class TestCliServe:
    def test_serve_command_binds_answers_and_stops(self):
        from repro.cli import main

        out = io.StringIO()
        exit_codes = []
        runner = threading.Thread(
            target=lambda: exit_codes.append(main(
                [
                    "--loci", "60", "--go-terms", "40",
                    "--omim-entries", "25",
                    "serve", "--port", "0", "--max-requests", "1",
                    "--service-workers", "1",
                ],
                out=out,
            )),
            daemon=True,
        )
        runner.start()
        url = None
        for _ in range(300):
            text = out.getvalue()
            if "listening on" in text:
                url = text.split("listening on ", 1)[1].split()[0]
                break
            time.sleep(0.01)
        assert url is not None, "serve never reported its address"
        request = urllib.request.Request(
            f"{url}/query",
            data=json.dumps({"question": "figure5b"}).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            body = json.loads(resp.read())
        assert body["outcome"] == "ok"
        runner.join(timeout=60)
        assert not runner.is_alive()
        assert exit_codes == [0]
        assert "annoda service stopped" in out.getvalue()
