"""Shutdown semantics: graceful drain and fast cancellation.

Graceful shutdown answers everything already admitted before the
workers exit; fast shutdown flushes the still-queued backlog as 503
and cancels in-flight budgets so workers finish their current request
as a degraded partial answer.  Either way: no ticket is ever left
unresolved, and the worker threads always join.
"""

import threading
import time

from repro.service import AnnodaService, ServiceConfig, ServiceRequest

from tests.service.conftest import build_annoda, make_service


class TestGracefulShutdown:
    def test_drains_admitted_requests_before_stopping(self):
        service = make_service(workers=2, queue_capacity=16)
        tickets = [
            service.submit(
                ServiceRequest(question="figure5b", use_cache=False)
            )
            for _ in range(8)
        ]
        service.shutdown(drain=True, timeout=60)
        for ticket in tickets:
            response = ticket.result(timeout=1)
            assert response.status == 200
            assert response.body["outcome"] == "ok"
            assert response.body["result"]["gene_count"] > 0

    def test_submissions_after_shutdown_get_503(self):
        service = make_service(workers=1)
        service.shutdown(drain=True, timeout=30)
        response = service.ask(
            ServiceRequest(question="figure5b"), timeout=1
        )
        assert response.status == 503
        assert response.body["outcome"] == "shutdown"

    def test_shutdown_is_idempotent(self):
        service = make_service(workers=1)
        service.shutdown(drain=True, timeout=30)
        service.shutdown(drain=True, timeout=30)

    def test_context_manager_drains_on_exit(self):
        annoda = build_annoda()
        with AnnodaService(
            annoda, ServiceConfig(queue_capacity=8, workers=2)
        ) as service:
            tickets = [
                service.submit(ServiceRequest(question="disease_genes"))
                for _ in range(4)
            ]
        for ticket in tickets:
            assert ticket.result(timeout=1).status == 200

    def test_worker_threads_join(self):
        service = make_service(workers=3)
        service.ask(ServiceRequest(question="figure5b"), timeout=30)
        service.shutdown(drain=True, timeout=30)
        for thread in service.pool._threads:
            assert not thread.is_alive()


class TestFastShutdown:
    def test_flushes_queued_requests_as_503(self, gate):
        service = make_service(gate=gate, workers=1, queue_capacity=8)
        # One request parks on the gate inside a worker; the rest wait
        # in the queue and must be flushed, not executed.
        tickets = [
            service.submit(
                ServiceRequest(question="figure5b", use_cache=False)
            )
            for _ in range(5)
        ]
        # Let the worker pick up the first ticket.
        for _ in range(100):
            if service.pool.inflight() == 1:
                break
            time.sleep(0.01)
        stopper = threading.Thread(
            target=lambda: service.shutdown(drain=False, timeout=60),
            daemon=True,
        )
        stopper.start()
        # The queued tickets resolve as 503 without the gate opening.
        statuses = sorted(
            ticket.result(timeout=10).status for ticket in tickets[1:]
        )
        assert statuses == [503, 503, 503, 503]
        # The in-flight request finishes once the gate opens — its
        # budget was cancelled, so the answer degrades instead of
        # running the full pipeline.
        gate.set()
        response = tickets[0].result(timeout=30)
        assert response.status == 200
        stopper.join(timeout=30)
        assert not stopper.is_alive()

    def test_ticket_between_dequeue_and_registration_is_cancelled(self):
        """The worker's take()-to-_inflight window: a fast shutdown in
        that instant finds the ticket in neither the queue flush nor
        the in-flight cancel sweep, so the worker itself must cancel
        the budget when it registers the ticket."""
        from repro.service.queue import AdmissionQueue, Ticket
        from repro.service.types import STATUS_OK, ServiceResponse
        from repro.service.workers import WorkerPool
        from repro.util.cancel import RequestBudget

        dequeued = threading.Event()
        resume = threading.Event()

        class ParkedTakeQueue(AdmissionQueue):
            """Parks the worker right after the dequeue, before it can
            register the ticket as in-flight."""

            def take(self):
                ticket = super().take()
                if ticket is not None:
                    dequeued.set()
                    resume.wait(timeout=30)
                return ticket

        cancelled_when_handled = []

        def handler(ticket):
            cancelled_when_handled.append(ticket.budget.cancelled)
            return ServiceResponse(status=STATUS_OK, body={"outcome": "ok"})

        queue = ParkedTakeQueue(capacity=4)
        pool = WorkerPool(queue, handler, workers=1)
        pool.start()
        ticket = Ticket(
            ServiceRequest(question="figure5b"), 1, RequestBudget()
        )
        assert queue.offer(ticket)
        assert dequeued.wait(timeout=10)
        stopper = threading.Thread(
            target=lambda: pool.shutdown(drain=False, timeout=30),
            daemon=True,
        )
        stopper.start()
        # Let shutdown finish its flush + sweep (both miss the ticket)
        # before the worker proceeds.
        for _ in range(500):
            with pool._inflight_lock:
                if pool._cancelling:
                    break
            time.sleep(0.01)
        else:
            assert False, "fast shutdown never flagged cancellation"
        resume.set()
        response = ticket.result(timeout=10)
        assert response.status == 200
        assert cancelled_when_handled == [True]
        assert ticket.budget.cancelled
        assert ticket.budget.reason == "service shutdown"
        stopper.join(timeout=30)
        assert not stopper.is_alive()

    def test_cancels_inflight_budgets(self):
        annoda = build_annoda(
            flaky={"LocusLink": {"latency": 0.3}},
        )
        service = make_service(annoda=annoda, workers=1)
        ticket = service.submit(
            ServiceRequest(question="figure5b", use_cache=False)
        )
        # Let the worker enter the slow fetch, then pull the plug.
        for _ in range(100):
            if service.pool.inflight() == 1:
                break
            time.sleep(0.01)
        service.shutdown(drain=False, timeout=60)
        response = ticket.result(timeout=30)
        assert response.status == 200
        assert ticket.budget.cancelled
        assert ticket.budget.reason == "service shutdown"
        assert response.body["outcome"] == "degraded"
