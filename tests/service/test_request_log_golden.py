"""Golden request-log conformance: the service's flight record, pinned.

Extends the PR 5 golden-trace suite to the service layer: for every
catalog question, a fresh service over the same seeded five-source
federation answers one traced request, and the structured request-log
record's *shape* (:func:`repro.service.log_record_shape` — volatile
request ids and timings normalized out, the embedded trace shape kept)
must match a checked-in golden JSON document.

Run ``pytest --regen-golden tests/service/test_request_log_golden.py``
to rewrite the goldens after an intentional behaviour change.
"""

import json
from pathlib import Path

import pytest

from repro import Annoda
from repro.service import (
    AnnodaService,
    ServiceConfig,
    ServiceRequest,
    log_record_shape,
)
from repro.sources.corpus import CorpusParameters
from repro.wrappers import PubmedLikeWrapper, SwissProtLikeWrapper

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Identical corpus to the golden-trace suite, so the embedded trace
#: shapes stay comparable across the two suites.
SEED = 13
PARAMETERS = dict(loci=120, go_terms=80, omim_entries=50,
                  conflict_rate=0.2)

#: Question name -> the ServiceRequest posed for it.
REQUESTS = {
    "figure5b": ServiceRequest(question="figure5b", trace=True),
    "disease_genes": ServiceRequest(question="disease_genes", trace=True),
    "unannotated_genes": ServiceRequest(
        question="unannotated_genes", trace=True
    ),
    "genes_by_annotation_keyword": ServiceRequest(
        question="genes_by_annotation_keyword",
        params={"keyword": "binding"},
        trace=True,
    ),
    "genes_under_term": ServiceRequest(
        question="genes_under_term",
        params={"go_id": "GO:0000002"},
        trace=True,
    ),
    "cited_disease_genes": ServiceRequest(
        question="cited_disease_genes", trace=True
    ),
}


def build_federation():
    """The golden-trace suite's five-source federation, verbatim."""
    annoda = Annoda.with_default_sources(
        seed=SEED, parameters=CorpusParameters(**PARAMETERS)
    )
    annoda.add_source(
        PubmedLikeWrapper(annoda.corpus.make_citation_store(count=60))
    )
    annoda.add_source(
        SwissProtLikeWrapper(annoda.corpus.make_protein_store())
    )
    return annoda


def run_service_request(name):
    """(response, log-record shape) for one catalog question on a
    fresh single-worker service."""
    service = AnnodaService(
        build_federation(), ServiceConfig(queue_capacity=4, workers=1)
    ).start()
    try:
        response = service.ask(REQUESTS[name], timeout=120)
        record = service.request_log.last()
    finally:
        service.shutdown(drain=True, timeout=60)
    assert record is not None
    return response, log_record_shape(record)


def golden_path(name):
    return GOLDEN_DIR / f"request_log_{name}.json"


@pytest.mark.parametrize("name", sorted(REQUESTS))
def test_golden_request_log(name, regen_golden):
    response, shape = run_service_request(name)

    # The contract, independent of the golden file: a traced service
    # request logs a 200 with the full span-tree shape embedded.
    assert response.status == 200
    assert shape["http_status"] == 200
    assert shape["outcome"] == "ok"
    assert shape["degraded_sources"] == []
    assert shape["trace"] is not None
    assert shape["trace"]["name"] == "query"
    assert shape["gene_count"] == response.body["result"]["gene_count"]

    path = golden_path(name)
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(shape, indent=2, sort_keys=True) + "\n"
        )
        return
    assert path.exists(), (
        f"golden file {path} is missing; run pytest --regen-golden "
        "tests/service/test_request_log_golden.py"
    )
    expected = json.loads(path.read_text())
    assert shape == expected


def test_request_log_shape_is_deterministic_across_runs():
    """Two fresh services produce byte-identical record shapes."""
    _, first = run_service_request("figure5b")
    _, second = run_service_request("figure5b")
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_every_catalog_question_has_a_request_log_golden():
    from repro.questions.catalog import QuestionCatalog

    assert set(QuestionCatalog.all_names()) <= set(REQUESTS)
