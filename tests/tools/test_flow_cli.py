"""Baseline semantics and the ``python -m repro.tools.flow`` CLI."""

import json
from pathlib import Path

import pytest

from repro.tools.flow.baseline import (
    BASELINE_VERSION,
    fingerprint,
    load_baseline,
    partition,
    save_baseline,
)
from repro.tools.flow.cli import main
from repro.tools.lint.engine import Diagnostic

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture(name):
    return str(FIXTURES / name)


def diag(path="a.py", line=3, code="ANN008", message="direct call"):
    return Diagnostic(path, line, 0, code, message)


class TestBaseline:
    def test_fingerprint_ignores_the_line_number(self):
        assert fingerprint(diag(line=3)) == fingerprint(diag(line=99))

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == set()

    def test_save_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        count = save_baseline(path, [diag(), diag(line=99)])
        assert count == 1  # same fingerprint, deduplicated
        assert load_baseline(path) == {fingerprint(diag())}

    def test_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 999, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(path))

    def test_partition_splits_new_from_stale(self):
        known = diag(message="known finding")
        fresh = diag(message="fresh finding")
        stale_key = ("gone.py", "ANN009", "already fixed")
        baseline = {fingerprint(known), stale_key}
        new, stale = partition([known, fresh], baseline)
        assert new == [fresh]
        assert stale == [stale_key]


class TestCli:
    def test_bad_fixture_exits_one(self, capsys):
        code = main([
            fixture("ann008_bad.py"),
            "--include-fixtures", "--select", "ANN008",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "ANN008" in out
        assert "ann008_bad.py" in out

    def test_good_fixture_exits_zero(self, capsys):
        code = main([
            fixture("ann008_good.py"),
            "--include-fixtures", "--select", "ANN008",
        ])
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_update_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main([
            fixture("ann008_bad.py"), "--include-fixtures",
            "--select", "ANN008",
            "--baseline", baseline, "--update-baseline",
        ]) == 0
        capsys.readouterr()
        assert main([
            fixture("ann008_bad.py"), "--include-fixtures",
            "--select", "ANN008",
            "--baseline", baseline,
        ]) == 0

    def test_stale_baseline_entries_are_reported(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        save_baseline(
            baseline,
            [diag(path=fixture("ann008_good.py"), message="long gone")],
        )
        assert main([
            fixture("ann008_good.py"), "--include-fixtures",
            "--select", "ANN008",
            "--baseline", baseline,
        ]) == 0
        err = capsys.readouterr().err
        assert "stale baseline entry" in err
        assert "long gone" in err

    def test_new_findings_fail_despite_a_baseline(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        save_baseline(baseline, [])
        assert main([
            fixture("ann008_bad.py"), "--include-fixtures",
            "--select", "ANN008",
            "--baseline", baseline,
        ]) == 1

    def test_per_file_codes_are_rejected(self, capsys):
        assert main(["--select", "ANN001", fixture("ann008_good.py")]) == 2
        err = capsys.readouterr().err
        assert "per-file rules" in err
        assert "repro.tools.lint" in err

    def test_unknown_codes_are_rejected(self, capsys):
        assert main(["--select", "ANN999", fixture("ann008_good.py")]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_update_baseline_requires_a_baseline_path(self, capsys):
        assert main(["--update-baseline", fixture("ann008_good.py")]) == 2

    def test_no_files_is_a_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2

    def test_list_rules_names_every_interprocedural_code(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("ANN007", "ANN008", "ANN009", "ANN010"):
            assert code in out

    def test_head_is_clean_with_an_empty_baseline(self):
        # The acceptance gate CI runs: no findings (and no baseline
        # entries needed) over the shipped source tree.
        assert main([
            str(REPO_ROOT / "src" / "repro"),
            "--baseline", str(REPO_ROOT / ".flow-baseline.json"),
        ]) == 0
