"""Fixture-driven tests for the ANN lint rules and the engine.

Every rule code has a bad fixture that must fire (so the test fails if
the rule is deleted or stops matching) and a good fixture that must
stay silent (so the rule cannot over-reach).
"""

from pathlib import Path

import pytest

from repro.tools.lint import (
    META_SYNTAX_ERROR,
    META_UNKNOWN_SUPPRESSION,
    REGISTRY,
    SourceModule,
    lint_file,
    lint_paths,
    lint_texts,
    resolve_codes,
)
from repro.tools.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture_path(name: str) -> str:
    return str(FIXTURES / name)


def lint_fixture(name: str, code: str):
    findings = lint_file(fixture_path(name), select={code})
    assert all(finding.code == code for finding in findings)
    return findings


class TestRulePairs:
    """One good/bad fixture pair per registered rule code."""

    @pytest.mark.parametrize(
        "code,expected_bad_lines",
        [
            ("ANN001", {5, 6, 7, 8}),
            ("ANN002", {7, 10, 13, 16}),
            ("ANN003", {11, 15, 19, 23, 27, 31}),
            ("ANN004", {9, 13, 17}),
            ("ANN005", {11}),
            ("ANN006", {8, 9, 14, 15, 19}),
        ],
    )
    def test_bad_fixture_fires(self, code, expected_bad_lines):
        findings = lint_fixture(f"{code.lower()}_bad.py", code)
        assert findings, f"{code} bad fixture produced no findings"
        assert {finding.line for finding in findings} == expected_bad_lines

    @pytest.mark.parametrize(
        "code",
        ["ANN001", "ANN002", "ANN003", "ANN004", "ANN005", "ANN006"],
    )
    def test_good_fixture_is_clean(self, code):
        assert lint_fixture(f"{code.lower()}_good.py", code) == []

    def test_every_registered_rule_has_a_fixture_pair(self):
        for code in REGISTRY:
            assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
            assert (FIXTURES / f"{code.lower()}_good.py").is_file()


class TestCrossFileCounterRule:
    def _lint_pair(self, counters_fixture: str):
        sources = []
        for name in (counters_fixture, "ann005_counters_stats.py"):
            path = fixture_path(name)
            sources.append((path, Path(path).read_text(encoding="utf-8")))
        return [
            finding
            for finding in lint_texts(sources, select={"ANN005"})
            if finding.code == "ANN005"
        ]

    def test_unfolded_counter_key_fires(self):
        findings = self._lint_pair("ann005_counters_bad.py")
        assert len(findings) == 1
        assert "mystery_counter" in findings[0].message

    def test_folded_counter_keys_are_clean(self):
        assert self._lint_pair("ann005_counters_good.py") == []


class TestRegisteredMetricsRule:
    """ANN005's metrics-registry extension: a counter registered via
    ``METRICS.register(...)`` must be attached to some span."""

    def test_unattached_metric_fires(self):
        findings = lint_fixture("ann005_metrics_bad.py", "ANN005")
        assert len(findings) == 1
        assert findings[0].line == 15
        assert "ghost_metric" in findings[0].message

    def test_attached_metrics_are_clean(self):
        assert lint_fixture("ann005_metrics_good.py", "ANN005") == []

    def test_attachment_in_another_module_counts(self):
        """The attach site may live anywhere in the linted project."""
        path = fixture_path("ann005_metrics_bad.py")
        sources = [
            (path, Path(path).read_text(encoding="utf-8")),
            (
                "attach.py",
                'def f(span):\n    span.incr("ghost_metric", 1)\n',
            ),
        ]
        assert lint_texts(sources, select={"ANN005"}) == []

    def test_attached_but_unregistered_counter_fires(self):
        """The reverse direction: a counter attached inside a repro
        module must be declared in some metrics registry."""
        findings = lint_fixture("ann005_attach_bad.py", "ANN005")
        assert len(findings) == 1
        assert findings[0].line == 20
        assert "phantom_counter" in findings[0].message
        assert "not registered" in findings[0].message

    def test_registered_and_attached_counters_are_clean(self):
        assert lint_fixture("ann005_attach_good.py", "ANN005") == []

    def test_attachment_outside_repro_modules_is_not_checked(self):
        """Test helpers and fixtures attach ad-hoc counter names; only
        repro modules must keep the registry authoritative."""
        path = fixture_path("ann005_metrics_good.py")
        sources = [
            (path, Path(path).read_text(encoding="utf-8")),
            (
                "helper.py",
                'def f(span):\n    span.incr("adhoc_counter", 1)\n',
            ),
        ]
        assert lint_texts(sources, select={"ANN005"}) == []

    def test_non_registry_register_calls_are_ignored(self):
        """``.register`` on something that is not a MetricsRegistry
        (e.g. a wrapper registrar) must not trip the rule."""
        text = (
            "mediator = Mediator()\n"
            'mediator.register("not_a_metric")\n'
        )
        assert lint_texts([("x.py", text)], select={"ANN005"}) == []


class TestSuppressions:
    def test_noqa_suppresses_the_named_code(self):
        assert lint_file(fixture_path("suppressed.py")) == []

    def test_violation_returns_when_noqa_removed(self):
        path = fixture_path("suppressed.py")
        text = Path(path).read_text(encoding="utf-8")
        stripped = text.replace(
            "  # annoda: noqa=ANN001 -- exercising the shim on purpose", ""
        )
        assert stripped != text
        findings = lint_texts([(path, stripped)], select={"ANN001"})
        assert [finding.code for finding in findings] == ["ANN001"]

    def test_suppression_reason_is_recorded(self):
        path = fixture_path("suppressed.py")
        module = SourceModule(path, Path(path).read_text(encoding="utf-8"))
        assert module.suppression_reasons == {
            5: "exercising the shim on purpose"
        }

    def test_unknown_suppressed_code_is_reported(self):
        findings = lint_file(fixture_path("unknown_code.py"))
        assert [finding.code for finding in findings] == [
            META_UNKNOWN_SUPPRESSION
        ]
        assert "ANN777" in findings[0].message


class TestEngine:
    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="ANN999"):
            resolve_codes(["ANN999"])

    def test_cli_rejects_unknown_select_code(self, capsys):
        assert main(["--select", "ANN999", "src"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_syntax_error_becomes_diagnostic(self):
        findings = lint_texts([("broken.py", "def f(:\n")])
        assert [finding.code for finding in findings] == [META_SYNTAX_ERROR]

    def test_module_directive_controls_scoped_rules(self):
        text = (
            "# annoda: module=repro.mediator.fake\n"
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert lint_texts([("x.py", text)], select={"ANN003"})
        unscoped = text.replace(
            "# annoda: module=repro.mediator.fake\n", ""
        )
        assert lint_texts([("x.py", unscoped)], select={"ANN003"}) == []

    def test_fixture_corpus_is_excluded_from_path_walks(self):
        findings = lint_paths([str(FIXTURES.parent)])
        assert [f for f in findings if "fixtures" in f.path] == []


class TestProjectGate:
    def test_repo_tree_is_lint_clean(self, capsys):
        paths = [
            str(REPO_ROOT / name)
            for name in ("src", "tests", "benchmarks")
        ]
        exit_code = main(paths)
        output = capsys.readouterr()
        assert exit_code == 0, output.out
