"""Tests for the concurrency sanitizer and its pytest plugin."""

import os
import subprocess
import sys
import threading
from pathlib import Path

from repro.tools.racecheck import (
    AuditedCounters,
    InstrumentedLock,
    RaceMonitor,
)
from repro.util import locks as lockseam

REPO_ROOT = Path(__file__).resolve().parents[2]


def subprocess_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


class TestLockOrderGraph:
    def test_consistent_order_has_no_cycle(self):
        monitor = RaceMonitor()
        outer = InstrumentedLock("outer", monitor)
        inner = InstrumentedLock("inner", monitor)
        for _ in range(3):
            with outer:
                with inner:
                    pass
        assert monitor.lock_cycles() == []
        assert monitor.clean

    def test_inverted_order_is_a_cycle(self):
        monitor = RaceMonitor()
        lock_a = InstrumentedLock("lock_a", monitor)
        lock_b = InstrumentedLock("lock_b", monitor)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        cycles = monitor.lock_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"lock_a", "lock_b"}
        assert not monitor.clean

    def test_cycle_across_threads_is_detected(self):
        monitor = RaceMonitor()
        lock_a = InstrumentedLock("lock_a", monitor)
        lock_b = InstrumentedLock("lock_b", monitor)

        def forward():
            with lock_a:
                with lock_b:
                    pass

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()
        with lock_b:
            with lock_a:
                pass
        assert monitor.lock_cycles()

    def test_report_names_the_cycle_with_stacks(self):
        monitor = RaceMonitor()
        lock_a = InstrumentedLock("lock_a", monitor)
        lock_b = InstrumentedLock("lock_b", monitor)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        report = monitor.report()
        assert "lock-order cycles: 1" in report
        assert "lock_a -> lock_b" in report or "lock_b -> lock_a" in report
        assert "first taken at:" in report
        assert "test_racecheck.py" in report

    def test_three_lock_cycle(self):
        monitor = RaceMonitor()
        locks = [
            InstrumentedLock(f"lock_{name}", monitor) for name in "abc"
        ]
        for first, second in ((0, 1), (1, 2), (2, 0)):
            with locks[first]:
                with locks[second]:
                    pass
        cycles = monitor.lock_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"lock_a", "lock_b", "lock_c"}


class TestCounterAudit:
    def _hammer(self, counters, threads=4, locked_via=None):
        def worker():
            for _ in range(50):
                if locked_via is not None:
                    with locked_via:
                        counters["hits"] += 1
                else:
                    counters["hits"] += 1

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

    def test_locked_multithreaded_writes_are_clean(self):
        monitor = RaceMonitor()
        lock = InstrumentedLock("counter_lock", monitor)
        counters = AuditedCounters({"hits": 0}, lock, "Store(x)", monitor)
        self._hammer(counters, locked_via=lock)
        assert monitor.counter_violations() == []
        assert monitor.clean

    def test_unlocked_multithreaded_writes_are_flagged(self):
        monitor = RaceMonitor()
        lock = InstrumentedLock("counter_lock", monitor)
        counters = AuditedCounters({"hits": 0}, lock, "Store(x)", monitor)
        self._hammer(counters)
        violations = monitor.counter_violations()
        assert len(violations) == 1
        assert violations[0]["owner"] == "Store(x)"
        assert violations[0]["unlocked"] > 0
        report = monitor.report()
        assert "unsynchronized counter writes: 1" in report
        assert "first unlocked write" in report

    def test_single_thread_unlocked_writes_are_tolerated(self):
        # Construction-time initialisation from one thread is not a
        # race; only multi-thread mutation demands the lock.
        monitor = RaceMonitor()
        lock = InstrumentedLock("counter_lock", monitor)
        counters = AuditedCounters({"hits": 0}, lock, "Store(x)", monitor)
        counters["hits"] += 1
        assert monitor.counter_violations() == []


class TestSeamInstallation:
    def test_install_swaps_factories_and_uninstall_restores(self):
        monitor = RaceMonitor()
        monitor.install()
        try:
            lock = lockseam.new_lock("seam_lock")
            counters = lockseam.make_counters(
                {"hits": 0}, lock=lock, owner="seam"
            )
            assert isinstance(lock, InstrumentedLock)
            assert isinstance(counters, AuditedCounters)
        finally:
            monitor.uninstall()
        assert isinstance(
            lockseam.new_lock("plain"), type(threading.Lock())
        )
        assert type(lockseam.make_counters({}, None, "x")) is dict

    def test_double_install_is_rejected(self):
        monitor = RaceMonitor()
        monitor.install()
        try:
            try:
                monitor.install()
            except RuntimeError as exc:
                assert "already installed" in str(exc)
            else:  # pragma: no cover
                raise AssertionError("second install() did not raise")
        finally:
            monitor.uninstall()


class TestPluginEndToEnd:
    def _run_pytest(self, *args, cwd=None):
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-p",
                "repro.tools.racecheck.plugin",
                "-p",
                "no:cacheprovider",
                "--racecheck",
                *args,
            ],
            capture_output=True,
            text=True,
            env=subprocess_env(),
            cwd=str(cwd or REPO_ROOT),
            timeout=300,
        )

    def test_clean_concurrency_suite_passes_with_summary(self):
        result = self._run_pytest(
            str(REPO_ROOT / "tests" / "sources" / "test_index_snapshots.py")
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "racecheck" in result.stdout
        assert "lock-order cycles: none" in result.stdout
        assert "unsynchronized counter writes: none" in result.stdout

    def test_lock_order_cycle_forces_failure_exit(self, tmp_path):
        (tmp_path / "test_cycle.py").write_text(
            "from repro.util.locks import new_lock\n"
            "\n"
            "def test_inverted_acquisition_order():\n"
            "    lock_a = new_lock('lock_a')\n"
            "    lock_b = new_lock('lock_b')\n"
            "    with lock_a:\n"
            "        with lock_b:\n"
            "            pass\n"
            "    with lock_b:\n"
            "        with lock_a:\n"
            "            pass\n",
            encoding="utf-8",
        )
        result = self._run_pytest(str(tmp_path), cwd=tmp_path)
        assert result.returncode == 3, result.stdout + result.stderr
        assert "lock-order cycles: 1" in result.stdout
        assert "racecheck: FAILED" in result.stdout
