"""ANN005 corpus: a metric registered but never attached to a span."""


class MetricsRegistry:
    def __init__(self):
        self._metrics = {}

    def register(self, name, stage, description=""):
        self._metrics[name] = (stage, description)
        return name


METRICS = MetricsRegistry()
METRICS.register("rows", stage="fetch", description="records per reply")
METRICS.register("ghost_metric", stage="fetch")  # no span ever carries it


def instrument(span, reply):
    span.incr("rows", len(reply.records))
