"""Suppression corpus: a real ANN001 violation, waived with a reason."""


def deliberate_legacy_call(wrapper):
    return wrapper.fetch(())  # annoda: noqa=ANN001 -- exercising the shim on purpose
