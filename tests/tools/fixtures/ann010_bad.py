"""ANN010 bad: manually opened spans that can leak on an exception."""
# annoda: module=repro.trace.session


def leaky(recorder, work):
    span = recorder.open_span("work")
    work()
    recorder.close_span(span)


def swallowed(recorder, work):
    span = recorder.open_span("work")
    try:
        work()
    except ValueError:
        pass
    recorder.close_span(span)
