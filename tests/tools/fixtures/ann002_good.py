# annoda: module=repro.sources.fake
"""ANN002 corpus: synchronized store-state writes (none may fire)."""


class FakeStore(DataSource):  # noqa: F821 (fixture, never imported)
    def rebuild(self, records):
        with self._fetch_mutex():
            self._records = list(records)  # under the lock

    def add(self, record):
        self._records.append(record)  # ok: method bumps version
        self._version += 1

    def _adopt_locked(self, index):
        self._indexes.append(index)  # _locked: caller holds the mutex

    def touch_public(self, value):
        self.public_field = value  # public attr: not indexed state
