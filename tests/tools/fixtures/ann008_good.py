"""ANN008 good: seam routing, allowed stdlib, and thread spawning."""
# annoda: module=repro.service.worker

import threading
import time

from repro.util.clock import default_clock
from repro.util.locks import new_lock

_GUARD = new_lock("ann008 fixture")


def pause(seconds):
    default_clock().sleep(seconds)


def timed(fn):
    # perf_counter is the seam's own backend and stays allowed.
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def spawn(fn):
    # Thread construction is not a seam bypass; only Lock/RLock are.
    worker = threading.Thread(target=fn)
    worker.start()
    return worker
