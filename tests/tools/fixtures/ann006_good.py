"""ANN006 corpus: frozen plan nodes built and rewritten correctly."""

from dataclasses import replace

from repro.mediator.plan import Scan


def build():
    return Scan(source_name="LocusLink", purpose="anchor")


def annotate(scan):
    # Rewrites go through dataclasses.replace, never in-place writes.
    return replace(scan, estimated_rows=42)


class EstimateRule:
    """Optimizer rule classes are the sanctioned escape hatch."""

    def apply(self, scan):
        patched = Scan(
            source_name=scan.source_name, purpose=scan.purpose
        )
        object.__setattr__(patched, "estimated_rows", 1)
        return patched
