"""ANN004 corpus: I/O kept outside the lock (none may fire)."""

import time


class Holder:
    def stall(self):
        time.sleep(0.5)  # no lock held
        with self._lock:
            self.counter += 1

    def load(self, path):
        payload = open(path).read()  # read first...
        with self._fetch_mutex():
            self.cache = payload  # ...publish under the lock

    def closure_is_deferred(self):
        with self._lock:
            def later():
                time.sleep(0.1)  # runs after release, not under lock
            self.callback = later
