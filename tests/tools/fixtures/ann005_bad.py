"""ANN005 corpus: a stats counter never folded into the report."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class ExecutionStats:
    rows_fetched: int = 0
    retries: int = 0
    orphaned_counter: int = 0  # written by the executor, shown nowhere
    _scratch: int = 0  # private: exempt

    def total_rows_fetched(self) -> int:
        return self.rows_fetched


@dataclass
class ExecutionReport:
    stats: "ExecutionStats" = field(default_factory=lambda: ExecutionStats())

    def describe(self) -> str:
        return (
            f"rows {self.stats.total_rows_fetched()} / "
            f"retries {self.stats.retries}"
        )
