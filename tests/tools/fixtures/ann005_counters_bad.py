"""ANN005 cross-file corpus: a fetch-path counter key no stats
module mentions (lint together with ann005_counters_stats.py)."""


class FakeStore:
    def _fetchpath_counters(self):
        return {
            "index_hits": 0,
            "mystery_counter": 0,  # no ExecutionStats module names it
        }
