"""ANN004 corpus: blocking calls under a lock (all must fire)."""

import time


class Holder:
    def stall(self):
        with self._lock:
            time.sleep(0.5)  # sleep while holding the lock

    def load(self, path):
        with self._fetch_mutex():
            return open(path).read()  # file I/O under the mutex

    def snapshot(self, path, payload):
        with self.state_lock:
            path.write_text(payload)  # pathlib write under the lock
