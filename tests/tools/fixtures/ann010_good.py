"""ANN010 good: every manual open_span is provably closed."""
# annoda: module=repro.trace.session


def finally_closed(recorder, work):
    span = recorder.open_span("work")
    try:
        return work()
    finally:
        recorder.close_span(span)


def fetcher_idiom(recorder, work):
    span = recorder.open_span("work")
    try:
        result = work()
    except BaseException:
        recorder.close_span(span)
        raise
    recorder.close_span(span)
    return result


class SpanContext:
    """The __enter__/__exit__ pair: close lives in __exit__."""

    def __init__(self, recorder):
        self._recorder = recorder
        self._span = None

    def __enter__(self):
        self._span = self._recorder.open_span("context")
        return self

    def __exit__(self, exc_type, exc, tb):
        self._recorder.close_span(self._span)
        return False
