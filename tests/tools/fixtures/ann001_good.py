"""ANN001 corpus: FetchRequest-path fetches (none may fire)."""

from repro.mediator.fetch import FetchRequest


def request_calls(wrapper, request):
    wrapper.fetch(FetchRequest((("Organism", "=", "Homo sapiens"),)))
    wrapper.fetch(FetchRequest())
    wrapper.fetch(request)  # a name: cannot be proven raw, passes
    wrapper.fetch(request=FetchRequest())
