"""ANN009 good: every access holds the lock (or is exempt)."""
# annoda: module=repro.service.metrics

from repro.util.locks import new_lock


class Counter:
    def __init__(self):
        self._lock = new_lock("Counter")
        self._total = 0

    def add(self, amount):
        with self._lock:
            self._total += amount

    def snapshot(self):
        with self._lock:
            return self._total

    def drain_locked(self):
        # The _locked suffix is the caller-holds-the-lock convention.
        value = self._total
        self._total = 0
        return value


class Plain:
    """No lock attribute at all: nothing to be inconsistent with."""

    def __init__(self):
        self.total = 0

    def add(self, amount):
        self.total += amount
