"""ANN006 corpus: post-hoc mutation of frozen plan nodes (all fire)."""

from repro.mediator.plan import FetchStage, Scan


def mutate_attribute():
    scan = Scan(source_name="LocusLink", purpose="anchor")
    scan.pruned = True
    scan.estimated_rows += 10


def mutate_via_setattr():
    stage = FetchStage(source_name="GO", purpose="link")
    setattr(stage, "pruned", True)
    object.__setattr__(stage, "estimated_rows", 5)


def mutate_fresh_construction():
    Scan(source_name="OMIM", purpose="link").pruned = True
