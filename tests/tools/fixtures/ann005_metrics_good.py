"""ANN005 corpus: every registered metric is attached to a span."""


class MetricsRegistry:
    def __init__(self):
        self._metrics = {}

    def register(self, name, stage, description=""):
        self._metrics[name] = (stage, description)
        return name


METRICS = MetricsRegistry()
METRICS.register("rows", stage="fetch", description="records per reply")
METRICS.register("anchors_considered", stage="reconcile")
METRICS.register("conflicts", stage="reconcile")


def _delta_counter(span, name, delta):
    if delta:
        span.set_counter(name, delta)


def instrument(span, reply, report):
    span.incr("rows", len(reply.records))
    span.set_counter("anchors_considered", report.considered)
    _delta_counter(span, "conflicts", report.count())
