"""ANN008 bad: direct stdlib calls outside the construction seams."""
# annoda: module=repro.service.worker

import random
import threading
import time

_GUARD = threading.Lock()


def pause():
    time.sleep(0.1)


def now():
    return time.monotonic()


def wall():
    return time.time()


def jitter():
    return random.random()
