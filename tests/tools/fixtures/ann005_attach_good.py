# annoda: module=repro.trace.fake_attach
"""ANN005 corpus: every attached counter is declared in the registry."""


class MetricsRegistry:
    def __init__(self):
        self._metrics = {}

    def register(self, name, stage, description=""):
        self._metrics[name] = (stage, description)
        return name


METRICS = MetricsRegistry()
METRICS.register("rows", stage="fetch", description="records per reply")
METRICS.register("batch_rows", stage="fetch", description="columnar rows")


def instrument(span, reply):
    span.incr("rows", len(reply.records))
    span.incr("batch_rows", len(reply.records))
