# annoda: module=repro.trace.fake_attach
"""ANN005 corpus: a counter attached to a span but never registered."""


class MetricsRegistry:
    def __init__(self):
        self._metrics = {}

    def register(self, name, stage, description=""):
        self._metrics[name] = (stage, description)
        return name


METRICS = MetricsRegistry()
METRICS.register("rows", stage="fetch", description="records per reply")


def instrument(span, reply):
    span.incr("rows", len(reply.records))
    span.incr("phantom_counter", 1)  # never declared in any registry
