"""ANN005 corpus: every stats counter is folded into the report."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class ExecutionStats:
    rows_fetched: int = 0
    retries: int = 0
    wall_seconds: float = 0.0

    def total_rows_fetched(self) -> int:
        return self.rows_fetched


@dataclass
class ExecutionReport:
    stats: "ExecutionStats" = field(default_factory=lambda: ExecutionStats())

    def describe(self) -> str:
        return (
            f"rows {self.stats.total_rows_fetched()} / "
            f"retries {self.stats.retries} in {self.stats.wall_seconds}s"
        )
