# annoda: module=repro.sources.fake
"""ANN002 corpus: unsynchronized store-state writes (all must fire)."""


class FakeStore(DataSource):  # noqa: F821 (fixture, never imported)
    def rebuild(self, records):
        self._records = list(records)  # plain assignment, no lock

    def add(self, record):
        self._records.append(record)  # mutating call, no lock

    def index(self, key, value):
        self._by_id[key] = value  # subscript store, no lock

    def chain(self, key, value):
        self._by_symbol.setdefault(key, []).append(value)  # chained
