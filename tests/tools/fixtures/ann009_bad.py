"""ANN009 bad: a guarded attribute touched without its lock."""
# annoda: module=repro.service.metrics

from repro.util.locks import new_lock


class Counter:
    def __init__(self):
        self._lock = new_lock("Counter")
        self._total = 0

    def add(self, amount):
        with self._lock:
            self._total += amount

    def snapshot(self):
        # Lock-free read of an attribute add() writes under the lock.
        return self._total

    def reset(self):
        # Lock-free write of the same attribute.
        self._total = 0
