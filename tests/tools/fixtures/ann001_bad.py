"""ANN001 corpus: raw-conditions fetch shim uses (all must fire)."""


def legacy_calls(wrapper):
    wrapper.fetch([("Organism", "=", "Homo sapiens")])  # list literal
    wrapper.fetch((("GoID", "=", "GO:1"),))  # tuple literal
    wrapper.fetch()  # the shim's empty default
    wrapper.fetch(list(condition for condition in ()))  # list() call
