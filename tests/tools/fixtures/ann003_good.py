# annoda: module=repro.mediator.fake
"""ANN003 corpus: deterministic equivalents (none may fire)."""

import time
from random import Random


def elapsed(start):
    return time.perf_counter() - start


def rng(seed):
    return Random(seed)  # seeded: reproducible


def rng_fixed():
    return Random(1729)
