"""ANN007 bad: budget-bearing callers dropping the budget."""
# annoda: module=repro.core.annoda


class Mediator:
    def query(self, question, budget=None):
        return question


class Annoda:
    def __init__(self):
        self.mediator = Mediator()

    def ask(self, question, budget=None):
        # The root holds a budget but the federation call drops it.
        return self.mediator.query(question)


class Session:
    def __init__(self, budget):
        self._budget = budget

    def run(self, mediator):
        # Bearing via the stored self._budget; still not forwarded.
        return mediator.query("session question")
