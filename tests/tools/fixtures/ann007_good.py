"""ANN007 good: the budget is threaded through every layer."""
# annoda: module=repro.core.annoda


class Mediator:
    def query(self, question, budget=None):
        return question


class Annoda:
    def __init__(self):
        self.mediator = Mediator()

    def ask(self, question, budget=None):
        return self.mediator.query(question, budget=budget)


class Session:
    def __init__(self, budget):
        self._budget = budget

    def run(self, mediator):
        return mediator.query("session question", budget=self._budget)


def describe(mediator):
    # Not budget-bearing: a caller that has no budget in hand cannot
    # drop one, so a budget-accepting callee alone is not a finding.
    return mediator.query("describe")
