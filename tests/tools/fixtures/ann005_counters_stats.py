"""ANN005 cross-file corpus: the stats side folding both keys."""

from dataclasses import dataclass


@dataclass
class ExecutionStats:
    index_hits: int = 0
    scan_fetches: int = 0

    def fold(self, counters) -> None:
        self.index_hits += counters.get("index_hits", 0)
        self.scan_fetches += counters.get("scan_queries", 0)


class ExecutionReport:
    def __init__(self, stats) -> None:
        self.stats = stats

    def describe(self) -> str:
        return f"{self.stats.index_hits} / {self.stats.scan_fetches}"
