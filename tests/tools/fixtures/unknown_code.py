"""Suppression corpus: naming a code the registry does not know."""


def fine_code():
    return 1  # annoda: noqa=ANN777 -- typo'd code must be reported
