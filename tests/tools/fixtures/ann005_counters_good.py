"""ANN005 cross-file corpus: counter keys a stats module folds in
(lint together with ann005_counters_stats.py)."""


class FakeStore:
    def _fetchpath_counters(self):
        return {
            "index_hits": 0,
            "scan_queries": 0,
        }
