# annoda: module=repro.mediator.fake
"""ANN003 corpus: nondeterminism in answer-affecting code (all fire)."""

import random
import time
from datetime import datetime
from random import Random


def stamp():
    return time.time()


def stamp_ns():
    return time.time_ns()


def today():
    return datetime.now()


def draw():
    return random.random()


def pick(items):
    return random.choice(items)


def rng():
    return Random()  # unseeded
