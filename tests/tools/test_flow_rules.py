"""Fixture-driven tests for the interprocedural rules ANN007-ANN010."""

import textwrap
from pathlib import Path

import pytest

from repro.tools.flow import analyze_paths, analyze_texts
from repro.tools.lint import lint_texts

FIXTURES = Path(__file__).parent / "fixtures"

FLOW_CODES = ("ANN007", "ANN008", "ANN009", "ANN010")


def analyze_fixture(name, code):
    findings = analyze_paths(
        [str(FIXTURES / name)],
        select={code},
        include_fixtures=True,
    )
    assert all(finding.code == code for finding in findings)
    return findings


def analyze_sources(code, *texts):
    sources = [
        (f"inline_{index}.py", textwrap.dedent(text))
        for index, text in enumerate(texts)
    ]
    return analyze_texts(sources, select={code})


class TestRulePairs:
    @pytest.mark.parametrize(
        "code,expected_bad_lines",
        [
            ("ANN007", {16, 25}),
            ("ANN008", {8, 12, 16, 20, 24}),
            ("ANN009", {18, 22}),
            ("ANN010", {6, 12}),
        ],
    )
    def test_bad_fixture_fires(self, code, expected_bad_lines):
        findings = analyze_fixture(f"{code.lower()}_bad.py", code)
        assert findings, f"{code} bad fixture produced no findings"
        assert {finding.line for finding in findings} == expected_bad_lines

    @pytest.mark.parametrize("code", FLOW_CODES)
    def test_good_fixture_is_clean(self, code):
        assert analyze_fixture(f"{code.lower()}_good.py", code) == []


class TestBudgetThreading:
    def test_drop_diagnostic_quotes_the_call_path(self):
        findings = analyze_fixture("ann007_bad.py", "ANN007")
        by_line = {finding.line: finding.message for finding in findings}
        assert "path Annoda.ask" in by_line[16]
        assert "in Session.run" in by_line[25]

    def test_fetch_request_hole_fires_on_a_root_reachable_path(self):
        findings = analyze_sources(
            "ANN007",
            """\
            # annoda: module=repro.mediator.fetch
            class FetchRequest:
                def __init__(self, purpose="fetch", budget=None):
                    self.purpose = purpose
                    self.budget = budget
            """,
            """\
            # annoda: module=repro.core.annoda
            from repro.mediator.fetch import FetchRequest


            class Annoda:
                def ask(self, question, budget=None):
                    return _fetch_detail(question)


            def _fetch_detail(question):
                # No budget parameter at all: the path has a hole no
                # forwarding fix at this call site could close.
                return FetchRequest(purpose=question)
            """,
        )
        (finding,) = findings
        assert "FetchRequest issued without a budget" in finding.message
        assert "Annoda.ask -> annoda._fetch_detail" in finding.message

    def test_star_kwargs_count_as_forwarding(self):
        findings = analyze_sources(
            "ANN007",
            """\
            # annoda: module=repro.core.annoda
            class Mediator:
                def query(self, question, budget=None):
                    return question


            class Annoda:
                def __init__(self):
                    self.mediator = Mediator()

                def ask(self, question, budget=None, **options):
                    return self.mediator.query(
                        question, budget=budget, **options
                    )
            """,
        )
        assert findings == []


class TestSeamBypass:
    def test_seam_modules_are_exempt(self):
        findings = analyze_sources(
            "ANN008",
            """\
            # annoda: module=repro.util.clock
            import time


            def read():
                return time.monotonic()
            """,
        )
        assert findings == []

    def test_noqa_suppresses_a_single_line(self):
        findings = analyze_sources(
            "ANN008",
            """\
            # annoda: module=repro.service.worker
            import threading

            _A = threading.Lock()  # annoda: noqa=ANN008 -- fixture
            _B = threading.Lock()
            """,
        )
        assert [finding.line for finding in findings] == [5]


class TestLockGuardConsistency:
    def test_call_form_guards_are_recognised(self):
        findings = analyze_sources(
            "ANN009",
            """\
            # annoda: module=repro.service.metrics
            class Store:
                def __init__(self, mutex):
                    self._mutex = mutex
                    self._items = []

                def add(self, item):
                    with self._mutex():
                        self._items.append(item)

                def drain(self):
                    with self._mutex():
                        items = list(self._items)
                        self._items = []
                    return items
            """,
        )
        assert findings == []

    def test_nested_functions_do_not_inherit_the_held_lock(self):
        findings = analyze_sources(
            "ANN009",
            """\
            # annoda: module=repro.service.metrics
            from repro.util.locks import new_lock


            class Store:
                def __init__(self):
                    self._lock = new_lock("Store")
                    self._items = ()

                def add(self, item):
                    with self._lock:
                        self._items = self._items + (item,)

                def deferred(self):
                    with self._lock:
                        def flush():
                            # Runs later, possibly on another thread:
                            # the enclosing with does not protect it.
                            self._items = ()
                        return flush
            """,
        )
        assert [finding.line for finding in findings] == [19]


class TestSpanExceptionSafety:
    def test_with_statement_spans_are_silent(self):
        findings = analyze_sources(
            "ANN010",
            """\
            # annoda: module=repro.trace.session
            def traced(recorder, work):
                with recorder.span("work"):
                    return work()
            """,
        )
        assert findings == []

    def test_open_span_definition_itself_is_exempt(self):
        findings = analyze_sources(
            "ANN010",
            """\
            # annoda: module=repro.trace.recorder
            class Recorder:
                def open_span(self, name):
                    span = self.open_span(name)
                    return span
            """,
        )
        assert findings == []


class TestEngineIntegration:
    def test_syntax_errors_become_ann901(self):
        findings = analyze_texts([("broken.py", "def broken(:\n")])
        (finding,) = findings
        assert finding.code == "ANN901"

    def test_flow_rules_stay_silent_under_the_per_file_lint(self):
        # The same rules are registered with the per-file engine, but
        # their check/finish hooks are no-ops: only the whole-program
        # analyzer produces ANN007-ANN010 findings.
        source = (
            "# annoda: module=repro.service.worker\n"
            "import time\n\n\n"
            "def pause():\n"
            "    time.sleep(1)\n"
        )
        assert lint_texts([("worker.py", source)]) == []
        flow = analyze_texts([("worker.py", source)])
        assert [finding.code for finding in flow] == ["ANN008"]
