"""Unit tests for the flow analyzer's symbol table and call graph."""

import textwrap

from repro.tools.flow.graph import FlowProject
from repro.tools.lint.engine import SourceModule


def project(*sources):
    """A FlowProject from ``(path, text)`` pairs (texts dedented)."""
    return FlowProject(
        SourceModule(path, textwrap.dedent(text))
        for path, text in sources
    )


def edges(proj, caller):
    return proj.out_edges.get(caller, [])


class TestSymbolTable:
    def test_classes_methods_and_module_functions_are_indexed(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            def helper():
                return 1


            class Widget:
                limit: int = 3

                def render(self):
                    return helper()
            """,
        ))
        assert "repro.pkg.mod.helper" in proj.functions
        widget = proj.classes["repro.pkg.mod.Widget"]
        assert "render" in widget.methods
        assert widget.fields == ("limit",)
        assert proj.functions["repro.pkg.mod.Widget.render"].owner == (
            "repro.pkg.mod.Widget"
        )

    def test_decorated_defs_keep_their_decorators(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            import functools


            class Service:
                @functools.lru_cache
                def cached(self):
                    return 1

                @property
                def size(self):
                    return 2
            """,
        ))
        service = proj.classes["repro.pkg.mod.Service"]
        assert service.methods["cached"].decorators == (
            "functools.lru_cache",
        )
        assert service.methods["size"].decorators == ("property",)

    def test_module_directive_sets_the_logical_name(self):
        proj = project(
            ("a.py", "# annoda: module=repro.alpha\nX = 1\n"),
        )
        assert proj.module_names == {"repro.alpha"}


class TestCallResolution:
    def test_self_method_resolves_through_the_owner(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            class Widget:
                def render(self):
                    return self.paint()

                def paint(self):
                    return 1
            """,
        ))
        (site,) = edges(proj, "repro.pkg.mod.Widget.render")
        assert site.callee == "repro.pkg.mod.Widget.paint"
        assert site.kind == "call"
        assert not site.fallback

    def test_self_method_walks_project_base_classes(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            class Base:
                def paint(self):
                    return 1


            class Widget(Base):
                def render(self):
                    return self.paint()
            """,
        ))
        (site,) = edges(proj, "repro.pkg.mod.Widget.render")
        assert site.callee == "repro.pkg.mod.Base.paint"

    def test_attribute_types_inferred_from_init_assignments(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            class Engine:
                def start(self):
                    return 1


            class Car:
                def __init__(self):
                    self._engine = Engine()

                def drive(self):
                    return self._engine.start()
            """,
        ))
        car = proj.classes["repro.pkg.mod.Car"]
        assert car.attr_types["_engine"] == "repro.pkg.mod.Engine"
        (call, construct) = sorted(
            edges(proj, "repro.pkg.mod.Car.__init__")
            + edges(proj, "repro.pkg.mod.Car.drive"),
            key=lambda site: site.kind,
        )
        assert call.callee == "repro.pkg.mod.Engine.start"
        assert construct.kind == "construct"
        assert construct.callee == "repro.pkg.mod.Engine"

    def test_local_variable_types_inferred_from_constructor_calls(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            class Engine:
                def start(self):
                    return 1


            def run():
                engine = Engine()
                return engine.start()
            """,
        ))
        callees = {
            site.callee for site in edges(proj, "repro.pkg.mod.run")
        }
        assert "repro.pkg.mod.Engine.start" in callees

    def test_cross_module_calls_resolve_through_imports(self):
        proj = project(
            (
                "a.py",
                """\
                # annoda: module=repro.alpha
                def helper():
                    return 1
                """,
            ),
            (
                "b.py",
                """\
                # annoda: module=repro.beta
                from repro.alpha import helper


                def caller():
                    return helper()
                """,
            ),
        )
        (site,) = edges(proj, "repro.beta.caller")
        assert site.callee == "repro.alpha.helper"

    def test_function_local_imports_are_honoured(self):
        proj = project(
            (
                "a.py",
                """\
                # annoda: module=repro.alpha
                def helper():
                    return 1
                """,
            ),
            (
                "b.py",
                """\
                # annoda: module=repro.beta
                def caller():
                    from repro.alpha import helper
                    return helper()
                """,
            ),
        )
        (site,) = edges(proj, "repro.beta.caller")
        assert site.callee == "repro.alpha.helper"

    def test_name_only_fallback_records_its_candidate_arity(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            class A:
                def fetch(self):
                    return 1


            class B:
                def fetch(self):
                    return 2


            def run(source):
                return source.fetch()
            """,
        ))
        sites = edges(proj, "repro.pkg.mod.run")
        assert {site.callee for site in sites} == {
            "repro.pkg.mod.A.fetch",
            "repro.pkg.mod.B.fetch",
        }
        assert all(site.fallback and site.arity == 2 for site in sites)

    def test_keywords_and_star_kwargs_are_recorded(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            def callee(budget=None):
                return budget


            def direct():
                return callee(budget=1)


            def starred(options):
                return callee(**options)
            """,
        ))
        (direct,) = edges(proj, "repro.pkg.mod.direct")
        assert direct.keywords == ("budget",)
        (starred,) = edges(proj, "repro.pkg.mod.starred")
        assert starred.has_star_kwargs


class TestThreadTargets:
    def test_thread_target_produces_a_target_edge(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            import threading


            class Pool:
                def start(self):
                    worker = threading.Thread(target=self._loop)
                    worker.start()

                def _loop(self):
                    return 1
            """,
        ))
        sites = edges(proj, "repro.pkg.mod.Pool.start")
        target = [site for site in sites if site.kind == "target"]
        assert [site.callee for site in target] == [
            "repro.pkg.mod.Pool._loop"
        ]

    def test_executor_submit_produces_a_target_edge(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            class Pool:
                def __init__(self, executor):
                    self._executor = executor

                def start(self):
                    return self._executor.submit(self._work, 1)

                def _work(self, item):
                    return item
            """,
        ))
        sites = edges(proj, "repro.pkg.mod.Pool.start")
        assert ("repro.pkg.mod.Pool._work", "target") in {
            (site.callee, site.kind) for site in sites
        }


class TestExternalCalls:
    def test_stdlib_calls_are_collected_everywhere(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            import threading
            import time

            _LOCK = threading.Lock()


            def pause():
                time.sleep(1)
            """,
        ))
        dotted = {call.dotted for call in proj.external_calls}
        assert dotted == {"threading.Lock", "time.sleep"}

    def test_import_aliases_resolve_to_the_external_root(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            from time import sleep


            def pause():
                sleep(1)
            """,
        ))
        assert [call.dotted for call in proj.external_calls] == [
            "time.sleep"
        ]


class TestReachability:
    SOURCE = (
        "m.py",
        """\
        # annoda: module=repro.pkg.mod
        class Executor:
            def execute(self):
                return self._fetch()

            def _fetch(self):
                return 1


        class Mediator:
            def query(self):
                executor = Executor()
                return executor


        def root():
            mediator = Mediator()
            return mediator.query()


        def unrelated():
            return 2
        """,
    )

    def test_construct_edges_reach_every_method(self):
        proj = project(self.SOURCE)
        parents = proj.reachable(["repro.pkg.mod.root"])
        assert "repro.pkg.mod.Mediator.query" in parents
        # Holding an Executor instance makes all its methods runnable,
        # even when no call through the variable resolves.
        assert "repro.pkg.mod.Executor.execute" in parents
        assert "repro.pkg.mod.Executor._fetch" in parents
        assert "repro.pkg.mod.unrelated" not in parents

    def test_render_path_walks_the_parent_chain(self):
        proj = project(self.SOURCE)
        parents = proj.reachable(["repro.pkg.mod.root"])
        path = proj.render_path(
            parents, "repro.pkg.mod.Executor._fetch"
        )
        assert path.startswith("mod.root -> ")
        assert path.endswith("Executor._fetch")

    def test_fallback_edges_respect_the_arity_budget(self):
        proj = project((
            "m.py",
            """\
            # annoda: module=repro.pkg.mod
            class A:
                def fetch(self):
                    return 1


            class B:
                def fetch(self):
                    return 2


            def root(source):
                return source.fetch()
            """,
        ))
        loose = proj.reachable(
            ["repro.pkg.mod.root"], max_fallback_arity=2
        )
        assert "repro.pkg.mod.A.fetch" in loose
        strict = proj.reachable(
            ["repro.pkg.mod.root"], max_fallback_arity=0
        )
        assert "repro.pkg.mod.A.fetch" not in strict
        assert "repro.pkg.mod.B.fetch" not in strict
