"""Tests for the biological-question model, builder, parser, catalog."""

import pytest

from repro.mediator.decompose import Condition
from repro.questions import (
    BiologicalQuestion,
    QuestionBuilder,
    QuestionCatalog,
    QuestionParser,
)
from repro.util.errors import QueryError


class TestBuilder:
    def test_figure5b_shape(self):
        question = (
            QuestionBuilder("genes with GO but no OMIM")
            .include("GO")
            .exclude("OMIM")
            .build()
        )
        go_link, omim_link = question.links
        assert go_link.mode == "include"
        assert go_link.via == "AnnotationID"
        assert not go_link.symbol_join
        assert omim_link.mode == "exclude"
        assert omim_link.via == "DiseaseID"
        assert omim_link.symbol_join  # OMIM joins through symbols

    def test_anchor_and_conditions(self):
        question = (
            QuestionBuilder("human kinase genes")
            .anchor("LocusLink")
            .where("Species", "=", "Homo sapiens")
            .include("GO")
            .where_linked("Title", "contains", "kinase")
            .build()
        )
        assert question.anchor_conditions[0].attribute == "Species"
        assert question.links[0].conditions[0].value == "kinase"

    def test_where_linked_requires_link(self):
        with pytest.raises(QueryError):
            QuestionBuilder("bad").where_linked("Title", "contains", "x")

    def test_unknown_source_needs_via(self):
        with pytest.raises(QueryError):
            QuestionBuilder("q").include("Ensembl")

    def test_explicit_via(self):
        question = (
            QuestionBuilder("q").include("Ensembl", via="GeneID").build()
        )
        assert question.links[0].via == "GeneID"

    def test_select(self):
        question = (
            QuestionBuilder("q").select("GeneSymbol", "Species").build()
        )
        assert question.select == ("GeneSymbol", "Species")


class TestModel:
    def test_combination_must_be_and(self):
        with pytest.raises(QueryError):
            BiologicalQuestion(text="q", combination="or")

    def test_to_global_query(self):
        question = QuestionCatalog.figure5b()
        query = question.to_global_query()
        assert query.anchor_source == "LocusLink"
        assert len(query.links) == 2

    def test_include_exclude_views(self):
        question = QuestionCatalog.figure5b()
        assert [l.source_name for l in question.include_links()] == ["GO"]
        assert [l.source_name for l in question.exclude_links()] == ["OMIM"]

    def test_to_lorel_mentions_constraints(self):
        text = QuestionCatalog.figure5b().to_lorel()
        assert text.startswith("select G from ANNODA-GML")
        assert "exists G.AnnotationID" in text
        assert "not (exists G.DiseaseID)" in text

    def test_condition_descriptions(self):
        question = QuestionCatalog.genes_by_annotation_keyword(
            "kinase", aspect="molecular_function"
        )
        lines = question.condition_descriptions()
        assert any("kinase" in line for line in lines)
        assert any("molecular_function" in line for line in lines)


class TestParser:
    def test_paper_figure5b_sentence(self):
        question = QuestionParser().parse(
            "Find a set of LocusLink genes, which are annotated with some "
            "GO functions, but not associated with some OMIM disease"
        )
        modes = {
            link.source_name: link.mode for link in question.links
        }
        assert modes == {"GO": "include", "OMIM": "exclude"}

    def test_organism_qualifier(self):
        question = QuestionParser().parse(
            "find human genes annotated with some GO function"
        )
        assert question.anchor_conditions[0].value == "Homo sapiens"

    def test_mouse_qualifier(self):
        question = QuestionParser().parse(
            "mouse genes associated with some disease"
        )
        assert question.anchor_conditions[0].value == "Mus musculus"
        assert question.links[0].source_name == "OMIM"

    def test_symbol_condition(self):
        question = QuestionParser().parse(
            "find genes with symbol FOSB annotated with some GO term"
        )
        assert any(
            condition.attribute == "GeneSymbol"
            and condition.value == "FOSB"
            for condition in question.anchor_conditions
        )

    def test_containing_keyword(self):
        question = QuestionParser().parse(
            "genes annotated with GO functions containing 'kinase'"
        )
        link = question.links[0]
        assert link.conditions[0].attribute == "Title"
        assert link.conditions[0].value == "kinase"

    def test_pubmed_phrase(self):
        question = QuestionParser().parse(
            "genes cited in some PubMed article"
        )
        assert question.links[0].source_name == "PubMed"

    def test_not_annotated(self):
        question = QuestionParser().parse(
            "genes not annotated with any GO function"
        )
        assert question.links[0].mode == "exclude"

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            QuestionParser().parse("   ")

    def test_non_gene_question_rejected(self):
        with pytest.raises(QueryError):
            QuestionParser().parse("find proteins that fold quickly")

    def test_unconstrained_question_rejected(self):
        with pytest.raises(QueryError) as excinfo:
            QuestionParser().parse("find all genes")
        assert "supported phrases" in str(excinfo.value)

    def test_specific_term(self):
        question = QuestionParser().parse(
            "find genes annotated with the GO term GO:0000123"
        )
        assert len(question.links) == 1
        link = question.links[0]
        assert link.source_name == "GO"
        assert link.conditions == (
            Condition("AnnotationID", "=", "GO:0000123"),
        )

    def test_specific_term_with_closure(self):
        question = QuestionParser().parse(
            "genes annotated with term GO:0000042 or below"
        )
        link = question.links[0]
        assert link.conditions[0].op == "under"
        assert link.conditions[0].value == "GO:0000042"

    def test_specific_term_negated(self):
        question = QuestionParser().parse(
            "genes not annotated with term GO:0000042"
        )
        assert question.links[0].mode == "exclude"

    def test_specific_term_combines_with_other_sources(self):
        question = QuestionParser().parse(
            "human genes annotated with term GO:0000042 or below, "
            "but not associated with some OMIM disease"
        )
        sources = {link.source_name: link.mode for link in question.links}
        assert sources == {"GO": "include", "OMIM": "exclude"}
        assert question.anchor_conditions[0].value == "Homo sapiens"


class TestCatalog:
    def test_all_names_resolve(self):
        catalog = QuestionCatalog()
        assert catalog.figure5b().links
        assert catalog.disease_genes("Homo sapiens").anchor_conditions
        assert len(catalog.unannotated_genes().exclude_links()) == 2
        assert catalog.cited_disease_genes().links[1].source_name == "PubMed"
        assert "figure5b" in QuestionCatalog.all_names()
