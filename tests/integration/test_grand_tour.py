"""The grand tour: every subsystem in one workflow.

Builds a conflicted five-source federation, persists it, reloads it,
answers a compound question, navigates, reorganizes, runs enrichment,
and checks every step against ground truth — the closest thing to a
user's full day with the tool.
"""

import pytest

from repro import Annoda
from repro.mediator import GlobalQuery, LinkConstraint
from repro.questions import QuestionBuilder
from repro.sources.corpus import CorpusParameters
from repro.util.errors import IntegrationError
from repro.wrappers import PubmedLikeWrapper, SwissProtLikeWrapper


@pytest.fixture(scope="module")
def federation(tmp_path_factory):
    original = Annoda.with_default_sources(
        seed=97,
        parameters=CorpusParameters(
            loci=250, go_terms=140, omim_entries=80, conflict_rate=0.25
        ),
    )
    citations = original.corpus.make_citation_store(count=120)
    proteins = original.corpus.make_protein_store()
    original.add_source(PubmedLikeWrapper(citations))
    original.add_source(SwissProtLikeWrapper(proteins))

    directory = tmp_path_factory.mktemp("federation")
    original.save(directory)
    reloaded = Annoda.from_directory(directory)
    return original, reloaded


class TestPersistenceFidelity:
    def test_all_five_sources_reload(self, federation):
        original, reloaded = federation
        assert reloaded.sources() == original.sources()

    def test_reloaded_answers_match(self, federation):
        original, reloaded = federation
        question = (
            QuestionBuilder("disease genes with literature support")
            .include("OMIM")
            .include("PubMed")
            .build()
        )
        assert set(
            reloaded.ask(question, enrich_links=False).gene_ids()
        ) == set(original.ask(question, enrich_links=False).gene_ids())


class TestCompoundWorkflow:
    def test_four_constraint_question(self, federation):
        original, _ = federation
        question = (
            QuestionBuilder(
                "annotated disease genes with protein evidence, uncited"
            )
            .include("GO")
            .include("OMIM")
            .include("SwissProt")
            .exclude("PubMed")
            .build()
        )
        result = original.ask(question)
        for gene in result.genes:
            assert gene["_links"]["GO"]
            assert gene["_links"]["OMIM"]
            assert gene["_links"]["SwissProt"]
            assert not gene["_links"]["PubMed"]

    def test_navigate_reorganize_enrich(self, federation):
        original, _ = federation
        result = original.ask(
            GlobalQuery(
                anchor_source="LocusLink",
                links=(
                    LinkConstraint("GO", "include", via="AnnotationID"),
                    LinkConstraint(
                        "OMIM", "include", via="DiseaseID",
                        symbol_join=True,
                    ),
                ),
            )
        )
        assert len(result) > 5

        # Navigate: the first gene's first link resolves.
        gene = result.graph.children(result.root, "Gene")[0]
        link = original.navigator.links_of(result.graph, gene)[0]
        view = original.navigator.follow(link)
        assert view.target_id == link.target_id

        # Reorganize: groups cover every matched annotation pair.
        reorganizer = original.reorganize(result)
        summary = reorganizer.summary()
        assert summary["genes"] == len(result)

        # Enrich: the disease-gene set is analyzable.
        hits = original.enrichment_analyzer().enrich_result(result)
        assert hits
        assert hits[0].p_value <= hits[-1].p_value

    def test_reconciliation_kept_answers_exact(self, federation):
        original, _ = federation
        result = original.ask(
            original.catalog.figure5b(), enrich_links=False
        )
        assert set(result.gene_ids()) == (
            original.corpus.ground_truth.figure5b_expected()
        )


class TestAnchorValidation:
    def test_non_gene_anchor_rejected_early(self, federation):
        original, _ = federation
        # GO maps no element to GeneID, so it cannot anchor.
        with pytest.raises(IntegrationError) as excinfo:
            original.ask(GlobalQuery(anchor_source="GO"))
        assert "cannot anchor" in str(excinfo.value)
