"""End-to-end integration: question -> mediator -> answer -> navigation,
verified against corpus ground truth across seeds and conflict rates."""

import pytest

from repro import Annoda
from repro.mediator import GlobalQuery, LinkConstraint
from repro.mediator.decompose import Condition
from repro.sources.corpus import CorpusParameters


@pytest.mark.parametrize("seed", [1, 2, 3, 5, 8])
def test_figure5b_exact_across_seeds(seed):
    annoda = Annoda.with_default_sources(
        seed=seed,
        parameters=CorpusParameters(loci=120, go_terms=80, omim_entries=40),
    )
    result = annoda.ask(annoda.catalog.figure5b(), enrich_links=False)
    assert set(result.gene_ids()) == (
        annoda.corpus.ground_truth.figure5b_expected()
    )


@pytest.mark.parametrize("conflict_rate", [0.2, 0.5])
def test_figure5b_exact_under_conflicts(conflict_rate):
    """Reconciliation keeps the flagship answer exact even when the
    sources disagree on symbols and reference stale/dangling entries."""
    annoda = Annoda.with_default_sources(
        seed=4,
        parameters=CorpusParameters(
            loci=200,
            go_terms=120,
            omim_entries=60,
            conflict_rate=conflict_rate,
        ),
    )
    result = annoda.ask(annoda.catalog.figure5b(), enrich_links=False)
    assert set(result.gene_ids()) == (
        annoda.corpus.ground_truth.figure5b_expected()
    )
    assert result.reconciliation.count() > 0


class TestCompoundQueries:
    """Mediator answers checked against direct store computation."""

    @pytest.fixture(scope="class")
    def annoda(self):
        return Annoda.with_default_sources(
            seed=6,
            parameters=CorpusParameters(
                loci=180, go_terms=100, omim_entries=50
            ),
        )

    def test_aspect_filtered_annotation(self, annoda):
        corpus = annoda.corpus
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("Species", "=", "Homo sapiens"),),
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        Condition("Aspect", "=", "biological_process"),
                    ),
                ),
            ),
        )
        result = annoda.ask(query, enrich_links=False)
        expected = set()
        for record in corpus.locuslink.all_records():
            if record.organism != "Homo sapiens":
                continue
            if any(
                corpus.go.get(go_id) is not None
                and corpus.go.get(go_id).namespace == "biological_process"
                and not corpus.go.get(go_id).obsolete
                for go_id in record.go_ids
            ):
                expected.add(record.locus_id)
        assert set(result.gene_ids()) == expected

    def test_double_exclusion(self, annoda):
        corpus = annoda.corpus
        result = annoda.ask(
            annoda.catalog.unannotated_genes(), enrich_links=False
        )
        truth = corpus.ground_truth
        expected = {
            record.locus_id
            for record in corpus.locuslink.all_records()
            if not truth.go_by_locus[record.locus_id]
            and not truth.omim_by_locus[record.locus_id]
        }
        assert set(result.gene_ids()) == expected

    def test_keyword_narrowing(self, annoda):
        corpus = annoda.corpus
        question = annoda.catalog.genes_by_annotation_keyword("kinase")
        result = annoda.ask(question, enrich_links=False)
        kinase_terms = {
            term.go_id
            for term in corpus.go.all_terms()
            if "kinase" in term.name.lower() and not term.obsolete
        }
        expected = {
            record.locus_id
            for record in corpus.locuslink.all_records()
            if set(record.go_ids) & kinase_terms
        }
        assert set(result.gene_ids()) == expected


class TestLorelMediatorConsistency:
    def test_gml_reflects_registered_sources(self):
        annoda = Annoda.with_default_sources(
            seed=9,
            parameters=CorpusParameters(
                loci=50, go_terms=30, omim_entries=15
            ),
        )
        result = annoda.lorel("select X.Name from ANNODA-GML.Source X")
        assert sorted(result.values()) == sorted(annoda.sources())

    def test_entry_counts_match_sources(self):
        annoda = Annoda.with_default_sources(
            seed=9,
            parameters=CorpusParameters(
                loci=50, go_terms=30, omim_entries=15
            ),
        )
        result = annoda.lorel(
            "select X.Content.EntryCount from ANNODA-GML.Source X"
        )
        assert sorted(result.values()) == sorted(
            [50, 30, 15]
        )


class TestDeterminism:
    def test_identical_runs_render_identically(self):
        def render_once():
            annoda = Annoda.with_default_sources(
                seed=12,
                parameters=CorpusParameters(
                    loci=80, go_terms=50, omim_entries=25
                ),
            )
            result = annoda.ask(annoda.catalog.figure5b())
            return annoda.render_integrated_view(result)

        assert render_once() == render_once()


class TestNavigationFromAnswers:
    def test_every_answer_link_resolves(self):
        """No dangling web-links in integrated answers (reconciliation
        dropped the dangling references before rendering)."""
        annoda = Annoda.with_default_sources(
            seed=14,
            parameters=CorpusParameters(
                loci=100, go_terms=60, omim_entries=30, conflict_rate=0.4
            ),
        )
        result = annoda.ask(
            "find genes associated with some OMIM disease"
        )
        genes = result.graph.children(result.root, "Gene")[:10]
        for gene in genes:
            for link in annoda.navigator.links_of(result.graph, gene):
                if link.target_source == "OMIM":
                    view = annoda.navigator.follow(link)
                    assert view.target_id == link.target_id
