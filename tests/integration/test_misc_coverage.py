"""Targeted tests for small public APIs not covered elsewhere."""

import pytest

from repro.matching import Correspondence, CorrespondenceSet
from repro.navigation.links import make_web_link
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.errors import QueryError
from repro.wrappers import SwissProtLikeWrapper


@pytest.fixture(scope="module")
def corpus():
    return AnnotationCorpus.generate(
        seed=91,
        parameters=CorpusParameters(loci=50, go_terms=30, omim_entries=15),
    )


class TestMakeWebLink:
    def test_resolves_target_eagerly(self):
        link = make_web_link(
            "GO", "http://godatabase.org/cgi-bin/go.cgi?query=GO:0000002"
        )
        assert link.target_source == "GO"
        assert link.target_id == "GO:0000002"

    def test_unresolvable_rejected(self):
        with pytest.raises(QueryError):
            make_web_link("Homepage", "http://www.geneontology.org/")


class TestCorrespondenceSetExtras:
    def test_covered_global_names(self):
        cs = CorrespondenceSet(
            "S",
            [
                Correspondence("A", "GA", 0.9),
                Correspondence("B", "GB", 0.8),
            ],
        )
        assert cs.covered_global_names() == {"GA", "GB"}
        assert len(cs) == 2
        assert [c.local_name for c in cs] == ["A", "B"]


class TestSwissProtWrapperExtras:
    def test_proteins_for_locus(self, corpus):
        store = corpus.make_protein_store()
        wrapper = SwissProtLikeWrapper(store)
        curated = next(
            record
            for record in store.all_records()
            if record.locus_id
        )
        hits = wrapper.proteins_for_locus(curated.locus_id)
        assert any(
            hit["Accession"] == curated.accession for hit in hits
        )
        assert wrapper.proteins_for_locus(999999999) == []


class TestEngineWorkspaceGrowth:
    def test_many_answers_get_distinct_names(self, corpus):
        from repro.wrappers import LocusLinkWrapper
        from repro.lorel import LorelEngine

        wrapper = LocusLinkWrapper(corpus.locuslink)
        graph, root = wrapper.build_local_model(limit=5)
        engine = LorelEngine()
        engine.register("LocusLink", graph, root)
        names = set()
        for _ in range(12):
            result = engine.query(
                "select X.Symbol from LocusLink.Locus X"
            )
            names.add(result.answer_name)
        assert len(names) == 12
        assert "answer" in names and "answer12" in names
