"""Golden-trace conformance: the flight recorder's contract, pinned.

For every question in :class:`repro.questions.catalog.QuestionCatalog`
this suite runs a fresh, seeded five-source federation with the
recorder on and compares two things against a checked-in golden JSON
document:

- the *integrated answer* (the sorted gene ids), and
- the *span-tree shape* (names, nesting, statuses, attributes and
  counters — :func:`repro.trace.trace_shape`, which excludes all
  timings),

so any change to decomposition, planning, fetch batching, caching,
reconciliation or combination shows up as a reviewable golden diff.
Each question gets its own freshly built federation: traces never
depend on what an earlier test warmed up.

Run ``pytest --regen-golden tests/integration/test_golden_traces.py``
to rewrite the goldens after an intentional behaviour change.
"""

import json
from pathlib import Path

import pytest

from repro import Annoda
from repro.questions.catalog import QuestionCatalog
from repro.sources.corpus import CorpusParameters
from repro.trace import trace_shape
from repro.wrappers import PubmedLikeWrapper, SwissProtLikeWrapper

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The corpus every golden runs against — small enough to build per
#: test, rich enough that every question returns a non-trivial answer.
SEED = 13
PARAMETERS = dict(loci=120, go_terms=80, omim_entries=50,
                  conflict_rate=0.2)

#: Question name -> factory over the catalog.  Parameterized questions
#: get concrete, corpus-stable arguments: ``GO:0000002`` has
#: descendants in every corpus (ids are assigned in generation order)
#: and ``binding`` occurs in the synthetic GO vocabulary.
QUESTIONS = {
    "figure5b": lambda catalog: catalog.figure5b(),
    "disease_genes": lambda catalog: catalog.disease_genes(),
    "unannotated_genes": lambda catalog: catalog.unannotated_genes(),
    "genes_by_annotation_keyword": lambda catalog: (
        catalog.genes_by_annotation_keyword("binding")
    ),
    "genes_under_term": lambda catalog: (
        catalog.genes_under_term("GO:0000002")
    ),
    "cited_disease_genes": lambda catalog: catalog.cited_disease_genes(),
}

#: Stages the acceptance contract requires every catalog question's
#: trace to cover.
REQUIRED_STAGES = ("decompose", "optimize", "reconcile", "navigate")


def build_federation():
    """A fresh five-source federation (three defaults + PubMed-like +
    SwissProt-like), fully deterministic from ``SEED``."""
    annoda = Annoda.with_default_sources(
        seed=SEED, parameters=CorpusParameters(**PARAMETERS)
    )
    annoda.add_source(
        PubmedLikeWrapper(annoda.corpus.make_citation_store(count=60))
    )
    annoda.add_source(
        SwissProtLikeWrapper(annoda.corpus.make_protein_store())
    )
    return annoda


def run_traced(name):
    """(result, golden-document) for one catalog question on a fresh
    federation."""
    annoda = build_federation()
    question = QUESTIONS[name](annoda.catalog)
    result = annoda.trace(question)
    document = {
        "question": name,
        "gene_ids": sorted(result.gene_ids()),
        "trace": trace_shape(result.trace),
    }
    return result, document


def golden_path(name):
    return GOLDEN_DIR / f"trace_{name}.json"


@pytest.mark.parametrize("name", sorted(QUESTIONS))
def test_golden_trace(name, regen_golden):
    result, document = run_traced(name)

    # The acceptance contract, independent of the golden file: the
    # trace covers every pipeline stage and at least one per-source
    # fetch, for every catalog question.
    trace = result.trace
    assert trace is not None and trace.name == "query"
    for stage in REQUIRED_STAGES:
        assert trace.find(stage) is not None, f"trace misses {stage!r}"
    fetch_spans = [
        span for span in trace.walk() if span.name.startswith("fetch:")
    ]
    assert fetch_spans, "trace carries no per-source fetch span"
    for span in trace.walk():
        assert span.closed

    path = golden_path(name)
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        return
    assert path.exists(), (
        f"golden file {path} is missing; run pytest --regen-golden "
        "tests/integration/test_golden_traces.py"
    )
    expected = json.loads(path.read_text())
    assert document["gene_ids"] == expected["gene_ids"]
    assert document["trace"] == expected["trace"]


def test_golden_traces_deterministic_across_runs():
    """Two fresh federations produce byte-identical golden documents
    (sequence-ordered siblings make the concurrent fetches stable)."""
    _, first = run_traced("figure5b")
    _, second = run_traced("figure5b")
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_every_catalog_question_is_covered():
    """New catalog questions must come with a golden trace."""
    catalog_names = set(QuestionCatalog.all_names())
    covered = set(QUESTIONS)
    assert catalog_names <= covered, (
        f"catalog questions without a golden trace: "
        f"{sorted(catalog_names - covered)}"
    )
