"""Unit tests for the flight recorder's span model."""

import threading

import pytest

from repro.trace import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    TraceError,
    TraceRecorder,
)
from repro.util.clock import FakeClock


class TestSpanTree:
    def test_nested_context_managers_build_a_tree(self):
        recorder = TraceRecorder(clock=FakeClock(tick=1.0))
        with recorder.span("query") as query:
            with recorder.span("decompose"):
                pass
            with recorder.span("execute") as execute:
                with recorder.span("fetch"):
                    pass
        assert recorder.root is query
        assert [child.name for child in query.children] == [
            "decompose", "execute",
        ]
        assert [child.name for child in execute.children] == ["fetch"]

    def test_fake_clock_makes_timings_exact(self):
        recorder = TraceRecorder(clock=FakeClock(start=10.0, tick=1.0))
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                pass
        # Reads: outer open (10), inner open (11), inner close (12),
        # outer close (13).
        assert outer.start == 10.0
        assert inner.start == 11.0
        assert inner.end == 12.0
        assert outer.end == 13.0
        assert outer.duration == 3.0
        assert inner.duration == 1.0

    def test_attributes_and_counters(self):
        recorder = TraceRecorder(clock=FakeClock())
        with recorder.span("fetch", attributes={"source": "GO"}) as span:
            span.set("purpose", "link")
            span.incr("rows", 5)
            span.incr("rows", 2)
            span.set_counter("scan_fetches", 3)
        assert span.attributes == {"source": "GO", "purpose": "link"}
        assert span.counters == {"rows": 7, "scan_fetches": 3}

    def test_walk_and_find(self):
        recorder = TraceRecorder(clock=FakeClock())
        with recorder.span("query"):
            with recorder.span("execute"):
                with recorder.span("fetch:GO"):
                    pass
                with recorder.span("fetch:OMIM"):
                    pass
        root = recorder.root
        assert [span.name for span in root.walk()] == [
            "query", "execute", "fetch:GO", "fetch:OMIM",
        ]
        assert root.find("fetch:OMIM").name == "fetch:OMIM"
        assert root.find("missing") is None
        assert len(root.find_all("fetch:GO")) == 1


class TestWellFormedness:
    def test_error_in_span_marks_status_and_closes(self):
        recorder = TraceRecorder(clock=FakeClock())
        with pytest.raises(ValueError):
            with recorder.span("boom") as span:
                raise ValueError("broken source")
        assert span.closed
        assert span.status == "error"
        assert span.error == "broken source"

    def test_double_close_raises(self):
        recorder = TraceRecorder(clock=FakeClock())
        span = recorder.open_span("once")
        recorder.close_span(span)
        with pytest.raises(TraceError):
            recorder.close_span(span)

    def test_context_cannot_be_reentered(self):
        recorder = TraceRecorder(clock=FakeClock())
        context = recorder.span("stage")
        with context:
            pass
        with pytest.raises(TraceError):
            context.__enter__()

    def test_second_root_raises(self):
        recorder = TraceRecorder(clock=FakeClock())
        with recorder.span("first"):
            pass
        with pytest.raises(TraceError):
            recorder.open_span("second")

    def test_duration_is_none_while_open(self):
        recorder = TraceRecorder(clock=FakeClock())
        span = recorder.open_span("open")
        assert span.duration is None
        assert not span.closed
        recorder.close_span(span)
        assert span.closed


class TestSequenceOrdering:
    def test_children_sorted_by_reserved_sequence(self):
        """Siblings order by reservation, not by completion."""
        recorder = TraceRecorder(clock=FakeClock())
        with recorder.span("parent") as parent:
            first = recorder.next_sequence()
            second = recorder.next_sequence()
            # Open in reverse reservation order (a late worker winning
            # the race), close out of order too.
            span_b = recorder.open_span(
                "b", parent=parent, sequence=second
            )
            span_a = recorder.open_span(
                "a", parent=parent, sequence=first
            )
            recorder.close_span(span_b)
            recorder.close_span(span_a)
        assert [child.name for child in parent.children] == ["a", "b"]

    def test_cross_thread_parent_attachment(self):
        recorder = TraceRecorder(clock=FakeClock())
        with recorder.span("dispatch") as parent:
            sequences = [recorder.next_sequence() for _ in range(4)]

            def worker(index):
                span = recorder.open_span(
                    f"job:{index}", parent=parent,
                    sequence=sequences[index],
                )
                recorder.close_span(span)

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in reversed(range(4))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert [child.name for child in parent.children] == [
            "job:0", "job:1", "job:2", "job:3",
        ]

    def test_worker_stack_is_thread_local(self):
        recorder = TraceRecorder(clock=FakeClock())
        seen = {}
        with recorder.span("main") as parent:
            def worker():
                # The dispatching thread's current span is invisible
                # here; the parent must be passed explicitly.
                seen["current"] = recorder.current()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert recorder.current() is parent
        assert seen["current"] is None


class TestNullRecorder:
    def test_null_recorder_is_disabled_and_rootless(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.root is None
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_every_operation_is_a_shared_noop(self):
        with NULL_RECORDER.span("anything") as span:
            span.set("key", "value")
            span.incr("rows")
            span.set_counter("rows", 10)
        assert span is NULL_SPAN
        assert span.attributes == {}
        assert span.counters == {}
        assert NULL_RECORDER.open_span("x") is NULL_SPAN
        assert NULL_RECORDER.close_span(NULL_SPAN) is NULL_SPAN
        assert NULL_RECORDER.current() is None
        assert NULL_RECORDER.next_sequence() == 0
        assert list(NULL_SPAN.walk()) == []
        assert NULL_SPAN.find("x") is None
        assert NULL_SPAN.find_all("x") == []
