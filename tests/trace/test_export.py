"""Unit tests for trace export: dicts, JSON, golden shapes, trees."""

import json

from repro.trace import (
    TraceRecorder,
    render_trace,
    trace_shape,
    trace_to_dict,
    trace_to_json,
)
from repro.util.clock import FakeClock


def build_trace():
    recorder = TraceRecorder(clock=FakeClock(tick=1.0))
    with recorder.span("query", attributes={"anchor": "LocusLink"}):
        with recorder.span("fetch", attributes={"jobs": 2}) as fetch:
            fetch.incr("rows", 7)
        try:
            with recorder.span("reconcile"):
                raise ConnectionError("simulated outage")
        except ConnectionError:
            pass
    return recorder.root


class TestTraceToDict:
    def test_structure_with_timings(self):
        document = trace_to_dict(build_trace())
        assert document["name"] == "query"
        assert document["attributes"] == {"anchor": "LocusLink"}
        assert document["start"] == 0.0
        assert document["duration"] == 5.0
        fetch, reconcile = document["children"]
        assert fetch["counters"] == {"rows": 7}
        assert reconcile["status"] == "error"
        assert reconcile["error"] == "simulated outage"

    def test_timings_can_be_excluded(self):
        document = trace_to_dict(build_trace(), timings=False)
        assert "start" not in document
        assert "duration" not in document

    def test_non_scalar_attributes_become_repr(self):
        recorder = TraceRecorder(clock=FakeClock())
        with recorder.span("stage") as span:
            span.set("degraded", ["GO", "OMIM"])
            span.set("policy", object())
        document = trace_to_dict(recorder.root)
        assert document["attributes"]["degraded"] == ["GO", "OMIM"]
        assert document["attributes"]["policy"].startswith("<object")


class TestTraceToJson:
    def test_round_trips_and_sorts_keys(self):
        text = trace_to_json(build_trace())
        document = json.loads(text)
        assert document["name"] == "query"
        # sort_keys makes the export byte-deterministic.
        assert text == trace_to_json(build_trace())


class TestTraceShape:
    def test_shape_excludes_timings_and_error_text(self):
        shape = trace_shape(build_trace())
        assert "start" not in shape and "duration" not in shape
        reconcile = shape["children"][1]
        assert reconcile["status"] == "error"
        assert "error" not in reconcile

    def test_shape_is_deterministic(self):
        assert trace_shape(build_trace()) == trace_shape(build_trace())


class TestRenderTrace:
    def test_tree_lines(self):
        text = render_trace(build_trace())
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "anchor=LocusLink" in lines[0]
        assert any(
            line.startswith("├─ fetch") and "[rows=7]" in line
            for line in lines
        )
        assert any(
            "status=error" in line and "simulated outage" in line
            for line in lines
        )

    def test_none_renders_a_hint(self):
        assert "no trace recorded" in render_trace(None)
