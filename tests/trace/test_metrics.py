"""Unit tests for the metrics registry and counter reconciliation."""

import pytest

from repro.trace import METRICS, MetricsRegistry, TraceRecorder, counter_totals
from repro.util.clock import FakeClock


class TestMetricsRegistry:
    def test_register_and_lookup(self):
        registry = MetricsRegistry()
        metric = registry.register("rows", stage="fetch", description="x")
        assert registry.get("rows") is metric
        assert registry.stage_of("rows") == "fetch"
        assert "rows" in registry
        assert registry.names() == ["rows"]
        assert len(registry) == 1

    def test_duplicate_registration_rejected(self):
        registry = MetricsRegistry()
        registry.register("rows", stage="fetch")
        with pytest.raises(ValueError):
            registry.register("rows", stage="other")

    def test_unknown_lookups(self):
        registry = MetricsRegistry()
        assert registry.get("missing") is None
        assert registry.stage_of("missing") is None
        assert "missing" not in registry

    def test_render_lists_every_metric(self):
        lines = METRICS.render().splitlines()
        assert len(lines) == len(METRICS)
        assert any(line.startswith("rows ") for line in lines)


class TestGlobalRegistry:
    #: Every ExecutionStats work counter must be declared as a span
    #: metric (wall_seconds is the span duration itself; rows_fetched
    #: per source folds into the fetch spans' ``rows``; degraded
    #: sources and per-source reports are attributes, not counters).
    EXPECTED = {
        "rows", "attempts", "retries", "timeouts",
        "residual_evaluations", "concurrent_batches", "batched_fetches",
        "enrichment_cache_hits", "anchors_considered", "anchors_returned",
        "conflicts", "repaired", "index_hits", "scan_fetches",
        "indexes_rebuilt", "indexes_adopted",
        "batch_rows", "artifact_hits", "artifact_misses", "artifact_bytes",
        "shard_fans", "replica_failovers",
    }

    def test_registry_covers_every_execution_counter(self):
        assert set(METRICS.names()) == self.EXPECTED

    def test_every_metric_has_a_stage_and_description(self):
        for metric in METRICS:
            assert metric.stage
            assert metric.description


class TestCounterTotals:
    def test_sums_across_the_tree(self):
        recorder = TraceRecorder(clock=FakeClock())
        with recorder.span("query"):
            with recorder.span("fetch:GO") as go:
                go.incr("rows", 5)
            with recorder.span("fetch:OMIM") as omim:
                omim.incr("rows", 3)
                omim.incr("retries", 1)
        assert counter_totals(recorder.root) == {"rows": 8, "retries": 1}

    def test_none_totals_to_empty(self):
        assert counter_totals(None) == {}
