"""The shard scheduler's trace contract, pinned.

Every traced execution carries a ``schedule:place`` span describing
the (shard, replica) grid; sharded fetches open ``fetch:shard`` spans
whose attributes identify the partition, the grid width and the
placed replica; and the ``shard_fans`` / ``replica_failovers``
counters attached to the execute span reconcile with both
:func:`counter_totals` over the trace and the flat execution report.
"""

import pytest

from repro.core.annoda import Annoda, AnnodaConfig
from repro.mediator import (
    FederationPolicy,
    FlakyWrapper,
    GlobalQuery,
    LinkConstraint,
    Mediator,
)
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.corpus import CorpusParameters as Parameters
from repro.sources.shard import ShardedSource
from repro.trace import TraceRecorder, counter_totals
from repro.wrappers import GoWrapper, LocusLinkWrapper, OmimWrapper

QUERY = GlobalQuery(
    anchor_source="LocusLink",
    links=(
        LinkConstraint("GO", "include", via="AnnotationID"),
        LinkConstraint("OMIM", "exclude", via="DiseaseID"),
    ),
)


def traced(shards=1, replicas=1):
    annoda = Annoda.with_default_sources(
        seed=11,
        parameters=Parameters(loci=60, go_terms=40, omim_entries=20),
        config=AnnodaConfig(shards=shards, replicas=replicas),
    )
    result = annoda.ask(QUERY, recorder=TraceRecorder())
    return result


class TestSchedulePlaceSpan:
    def test_always_present_with_pinned_shape(self):
        result = traced()
        place = result.trace.find("schedule:place")
        assert place is not None
        assert place.attributes["stages"] == 3
        assert place.attributes["grid"] == [
            "anchor@LocusLink: 1 shard(s) x 1 replica(s)",
            "link@GO: 1 shard(s) x 1 replica(s)",
            "link@OMIM: 1 shard(s) x 1 replica(s)",
        ]
        assert place.counters == {}

    def test_grid_reflects_the_configured_shape(self):
        result = traced(shards=4, replicas=2)
        place = result.trace.find("schedule:place")
        assert place.attributes["grid"] == [
            "anchor@LocusLink: 4 shard(s) x 2 replica(s)",
            "link@GO: 4 shard(s) x 2 replica(s)",
            "link@OMIM: 4 shard(s) x 2 replica(s)",
        ]

    def test_placement_matches_explain(self):
        annoda = Annoda.with_default_sources(
            seed=11,
            parameters=Parameters(loci=60, go_terms=40, omim_entries=20),
            config=AnnodaConfig(shards=4),
        )
        result = annoda.ask(QUERY, recorder=TraceRecorder())
        place = result.trace.find("schedule:place")
        explained = annoda.explain(QUERY)
        for line in place.attributes["grid"]:
            assert line in explained


class TestFetchShardSpans:
    def test_shard_pinned_fetches_carry_grid_attributes(self):
        result = traced(shards=4, replicas=2)
        shard_spans = [
            span
            for span in result.trace.walk()
            if span.name == "fetch:shard"
        ]
        assert shard_spans, "sharded run opened no fetch:shard span"
        by_source = {}
        for span in shard_spans:
            assert span.attributes["shard_count"] == 4
            assert 0 <= span.attributes["shard"] < 4
            # Placement is deterministic: shard index modulo replicas.
            assert span.attributes["replica"] == (
                span.attributes["shard"] % 2
            )
            assert "source" in span.attributes
            by_source.setdefault(
                span.attributes["source"], set()
            ).add(span.attributes["shard"])
        # At least one source fanned over its whole grid.
        assert any(
            shards == {0, 1, 2, 3} for shards in by_source.values()
        )

    def test_unsharded_runs_open_no_shard_spans(self):
        result = traced()
        assert all(
            span.name != "fetch:shard" for span in result.trace.walk()
        )


class TestCounterReconciliation:
    def test_shard_fans_reconcile_through_counter_totals(self):
        result = traced(shards=4)
        totals = counter_totals(result.trace)
        assert result.stats.shard_fans > 0
        assert totals["shard_fans"] == result.stats.shard_fans
        assert totals.get("replica_failovers", 0) == 0
        assert result.stats.replica_failovers == 0

    def test_unsharded_runs_attach_no_grid_counters(self):
        result = traced()
        totals = counter_totals(result.trace)
        assert "shard_fans" not in totals
        assert "replica_failovers" not in totals

    def test_replica_failovers_reconcile_after_failover(self):
        corpus = AnnotationCorpus.generate(
            seed=11,
            parameters=CorpusParameters(
                loci=60, go_terms=40, omim_entries=20
            ),
        )
        mediator = Mediator(federation=FederationPolicy())
        mediator.register_wrapper(LocusLinkWrapper(corpus.locuslink))
        mediator.register_replicas(
            [
                FlakyWrapper(
                    GoWrapper(ShardedSource(corpus.go, 2)),
                    blackout=True,
                ),
                GoWrapper(ShardedSource(corpus.go, 2)),
            ]
        )
        mediator.register_wrapper(OmimWrapper(corpus.omim))
        recorder = TraceRecorder()
        # A conditioned GO link: the fetch actually runs (an
        # unconditioned include is pruned and would never fail over).
        from repro.mediator.decompose import Condition

        conditioned = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        Condition("Aspect", "=", "molecular_function"),
                    ),
                ),
            ),
        )
        result = mediator.query(
            conditioned, enrich_links=False, recorder=recorder
        )
        totals = counter_totals(result.trace)
        assert result.stats.replica_failovers > 0
        assert (
            totals["replica_failovers"] == result.stats.replica_failovers
        )
        assert totals["shard_fans"] == result.stats.shard_fans
        assert result.report.ok
