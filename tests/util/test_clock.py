"""Unit tests for the clock-construction seam."""

import pytest

from repro.util import clock as clock_module
from repro.util.clock import (
    MONOTONIC_CLOCK,
    FakeClock,
    MonotonicClock,
    default_clock,
)


class TestMonotonicClock:
    def test_moves_forward(self):
        clock = MonotonicClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_base_class_is_abstract_in_spirit(self):
        with pytest.raises(NotImplementedError):
            clock_module.Clock().now()
        with pytest.raises(NotImplementedError):
            clock_module.Clock().sleep(0.1)

    def test_zero_and_negative_sleep_return_immediately(self):
        # No real time.sleep call at all for non-positive durations.
        MonotonicClock().sleep(0.0)
        MonotonicClock().sleep(-1.0)


class TestFakeClock:
    def test_tick_advances_every_read(self):
        clock = FakeClock(start=5.0, tick=0.5)
        assert clock.now() == 5.0
        assert clock.now() == 5.5
        assert clock.now() == 6.0

    def test_advance_jumps_forward(self):
        clock = FakeClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            FakeClock(tick=-1.0)

    def test_negative_advance_rejected(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_sleep_is_instant_and_advances_the_clock(self):
        clock = FakeClock(start=1.0)
        clock.sleep(0.5)
        assert clock.now() == 1.5

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            FakeClock().sleep(-0.1)


class TestDefaultClockSeam:
    def test_default_is_the_production_clock(self):
        clock_module.reset()
        assert default_clock() is MONOTONIC_CLOCK

    def test_install_and_restore(self):
        fake = FakeClock(start=1.0)
        previous = clock_module.install(fake)
        try:
            assert default_clock() is fake
        finally:
            clock_module.restore(previous)
        assert default_clock() is previous

    def test_restore_none_falls_back_to_production(self):
        fake = FakeClock()
        clock_module.install(fake)
        clock_module.restore(None)
        assert default_clock() is MONOTONIC_CLOCK

    def test_reset(self):
        clock_module.install(FakeClock())
        clock_module.reset()
        assert default_clock() is MONOTONIC_CLOCK
