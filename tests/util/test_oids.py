"""Tests for oid allocation and the &N notation."""

import pytest

from repro.util.errors import ConfigurationError
from repro.util.oids import OidAllocator


class TestAllocation:
    def test_starts_at_one_like_figure_3(self):
        allocator = OidAllocator()
        assert allocator.allocate() == 1
        assert allocator.allocate() == 2

    def test_custom_start(self):
        allocator = OidAllocator(start=442)
        assert allocator.allocate() == 442

    def test_start_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            OidAllocator(start=0)

    def test_reserve_skips_taken_range(self):
        allocator = OidAllocator()
        allocator.reserve(10)
        assert allocator.allocate() == 11

    def test_reserve_below_next_is_noop(self):
        allocator = OidAllocator(start=100)
        allocator.reserve(5)
        assert allocator.allocate() == 100

    def test_next_oid_does_not_consume(self):
        allocator = OidAllocator()
        assert allocator.next_oid == 1
        assert allocator.next_oid == 1
        assert allocator.allocate() == 1


class TestNotation:
    def test_render(self):
        assert OidAllocator.render(442) == "&442"

    def test_parse(self):
        assert OidAllocator.parse("&442") == 442

    def test_parse_tolerates_whitespace(self):
        assert OidAllocator.parse("  &7 ") == 7

    @pytest.mark.parametrize("bad", ["442", "&", "&x1", "& 2", "&-3"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            OidAllocator.parse(bad)

    def test_round_trip(self):
        for oid in (1, 2, 99, 442, 10**9):
            assert OidAllocator.parse(OidAllocator.render(oid)) == oid
