"""Tests for the text-rendering helpers."""

from repro.util.text import box, indent_block, table


class TestIndentBlock:
    def test_indents_each_line(self):
        assert indent_block("a\nb", 2) == "  a\n  b"

    def test_leaves_blank_lines_bare(self):
        assert indent_block("a\n\nb", 2) == "  a\n\n  b"


class TestBox:
    def test_contains_title_and_body(self):
        rendered = box("Query interface", ["Sources: LocusLink, GO"])
        assert "Query interface" in rendered
        assert "Sources: LocusLink, GO" in rendered

    def test_all_lines_same_width(self):
        rendered = box("T", ["short", "x" * 200], width=40)
        widths = {len(line) for line in rendered.splitlines()}
        assert widths == {40}

    def test_long_word_is_hard_wrapped(self):
        rendered = box("T", ["y" * 150], width=30)
        assert "y" * 26 in rendered


class TestTable:
    def test_alignment(self):
        rendered = table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        # Columns align: 'value' header starts where values start.
        header_col = lines[0].index("value")
        assert lines[2][header_col] == "1"

    def test_short_rows_padded(self):
        rendered = table(["a", "b"], [["only"]])
        assert "only" in rendered
