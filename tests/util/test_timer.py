"""Tests for the wall-clock timer."""

import time

from repro.util import FakeClock, Timer
from repro.util import clock as clock_module


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_does_not_swallow_exceptions(self):
        try:
            with Timer() as timer:
                raise ValueError("boom")
        except ValueError:
            pass
        assert timer.elapsed >= 0.0


class TestTimerClockSeam:
    def test_injected_fake_clock_makes_elapsed_exact(self):
        clock = FakeClock(start=100.0)
        with Timer(clock=clock) as timer:
            clock.advance(2.5)
        assert timer.elapsed == 2.5

    def test_tick_clock_counts_the_two_reads(self):
        with Timer(clock=FakeClock(tick=1.0)) as timer:
            pass
        assert timer.elapsed == 1.0

    def test_timer_uses_the_installed_default_clock(self):
        fake = FakeClock(start=0.0)
        previous = clock_module.install(fake)
        try:
            with Timer() as timer:
                fake.advance(7.0)
        finally:
            clock_module.restore(previous)
        assert timer.elapsed == 7.0
