"""Tests for the wall-clock timer."""

import time

from repro.util import Timer


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_does_not_swallow_exceptions(self):
        try:
            with Timer() as timer:
                raise ValueError("boom")
        except ValueError:
            pass
        assert timer.elapsed >= 0.0
