"""Tests for the deterministic random streams behind synthetic corpora."""

from repro.util.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**6) for _ in range(5)] != [
            b.randint(0, 10**6) for _ in range(5)
        ]

    def test_substream_is_order_independent(self):
        first = DeterministicRng(3)
        locus_stream = first.substream("locuslink")
        go_stream = first.substream("go")

        second = DeterministicRng(3)
        go_stream_again = second.substream("go")
        locus_stream_again = second.substream("locuslink")

        assert locus_stream.randint(0, 10**6) == locus_stream_again.randint(
            0, 10**6
        )
        assert go_stream.randint(0, 10**6) == go_stream_again.randint(
            0, 10**6
        )

    def test_substreams_are_independent_of_each_other(self):
        root = DeterministicRng(3)
        a = root.substream("a")
        b = root.substream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestDomainDraws:
    def test_gene_symbol_shape(self):
        rng = DeterministicRng(11)
        for _ in range(100):
            symbol = rng.gene_symbol()
            assert symbol[0].isalpha() and symbol[0].isupper()
            assert any(ch.isdigit() for ch in symbol)
            assert 3 <= len(symbol) <= 8

    def test_map_position_shape(self):
        rng = DeterministicRng(11)
        for _ in range(100):
            position = rng.map_position()
            assert "p" in position or "q" in position

    def test_sentence_uses_word_pool(self):
        rng = DeterministicRng(5)
        words = ["kinase", "binding", "protein"]
        sentence = rng.sentence(words)
        for word in sentence.lower().split():
            assert word in words

    def test_bernoulli_extremes(self):
        rng = DeterministicRng(0)
        assert all(rng.bernoulli(1.0) for _ in range(20))
        assert not any(rng.bernoulli(0.0) for _ in range(20))
