"""Property-based tests of the Hungarian solver, cross-checked against
scipy's reference implementation."""

import numpy as np
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.matching import solve_assignment, solve_max_assignment

costs = st.integers(min_value=-100, max_value=100)


@st.composite
def matrices(draw, min_side=1, max_side=8):
    rows = draw(st.integers(min_value=min_side, max_value=max_side))
    cols = draw(st.integers(min_value=min_side, max_value=max_side))
    return [
        [draw(costs) for _ in range(cols)] for _ in range(rows)
    ]


class TestOptimality:
    @given(matrices())
    @settings(max_examples=150, deadline=None)
    def test_matches_scipy_optimum(self, matrix):
        _assignment, total = solve_assignment(matrix)
        array = np.array(matrix, dtype=float)
        row_indices, col_indices = linear_sum_assignment(array)
        reference = float(array[row_indices, col_indices].sum())
        assert abs(total - reference) < 1e-9

    @given(matrices())
    @settings(max_examples=100, deadline=None)
    def test_max_assignment_matches_scipy(self, matrix):
        _assignment, total = solve_max_assignment(matrix)
        array = np.array(matrix, dtype=float)
        row_indices, col_indices = linear_sum_assignment(
            array, maximize=True
        )
        reference = float(array[row_indices, col_indices].sum())
        assert abs(total - reference) < 1e-9


class TestAssignmentValidity:
    @given(matrices())
    @settings(max_examples=100, deadline=None)
    def test_one_to_one_and_complete(self, matrix):
        assignment, total = solve_assignment(matrix)
        rows = [row for row, _col in assignment]
        cols = [col for _row, col in assignment]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)
        assert len(assignment) == min(len(matrix), len(matrix[0]))
        assert abs(
            total - sum(matrix[row][col] for row, col in assignment)
        ) < 1e-9

    @given(matrices())
    @settings(max_examples=60, deadline=None)
    def test_cost_shift_invariance(self, matrix):
        """Adding a constant to every cell shifts the optimum by
        k * assignment size but never changes which total is optimal
        relative to scipy."""
        shifted = [[value + 1000 for value in row] for row in matrix]
        _, total = solve_assignment(matrix)
        _, shifted_total = solve_assignment(shifted)
        size = min(len(matrix), len(matrix[0]))
        assert abs(shifted_total - (total + 1000 * size)) < 1e-9
