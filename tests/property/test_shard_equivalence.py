"""Property test: sharding and replication never change an answer.

The tentpole guarantee of the shard grid — key-range partitions are
contiguous ranges of each store's canonical record order, so shard-
order concatenation reproduces the unsharded answer byte for byte,
and every replica serves the same extent, so failover placement never
matters either.  Two suites pin it down:

- every catalog question, on a fixed five-source federation, for
  every grid shape (shards in {1, 2, 4, 8}, replicas 2) — genes,
  gene ids and the rendered integrated view must be byte-identical,
  and the shard-independent execution stats must reconcile;
- random global queries over random small corpora (Hypothesis),
  sharded vs unsharded.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Annoda
from repro.core.annoda import AnnodaConfig
from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.shard import ShardedSource
from repro.wrappers import (
    GoWrapper,
    LocusLinkWrapper,
    OmimWrapper,
    PubmedLikeWrapper,
    SwissProtLikeWrapper,
)

SEED = 13
PARAMETERS = dict(loci=120, go_terms=80, omim_entries=50,
                  conflict_rate=0.2)

QUESTIONS = {
    "figure5b": lambda catalog: catalog.figure5b(),
    "disease_genes": lambda catalog: catalog.disease_genes(),
    "unannotated_genes": lambda catalog: catalog.unannotated_genes(),
    "genes_by_annotation_keyword": lambda catalog: (
        catalog.genes_by_annotation_keyword("binding")
    ),
    "genes_under_term": lambda catalog: (
        catalog.genes_under_term("GO:0000002")
    ),
    "cited_disease_genes": lambda catalog: catalog.cited_disease_genes(),
}

#: Execution-stats counters that must be identical on every grid shape
#: (everything except shard-local accounting: per-source fetch counts,
#: index/scan hits, shard_fans and replica_failovers legitimately vary
#: with the grid).
GRID_INDEPENDENT_STATS = (
    "rows_fetched",
    "residual_evaluations",
    "anchors_considered",
    "anchors_returned",
    "batched_fetches",
    "enrichment_cache_hits",
    "retries",
    "timeouts",
    "batch_rows",
    "degraded_sources",
)


def build_federation(shards=1, replicas=1):
    annoda = Annoda.with_default_sources(
        seed=SEED,
        parameters=CorpusParameters(**PARAMETERS),
        config=AnnodaConfig(shards=shards, replicas=replicas),
    )
    annoda.add_source(
        PubmedLikeWrapper(annoda.corpus.make_citation_store(count=60))
    )
    annoda.add_source(
        SwissProtLikeWrapper(annoda.corpus.make_protein_store())
    )
    return annoda


@pytest.fixture(scope="module")
def baseline():
    """Unsharded answers, computed once — on a *fresh* federation per
    question, exactly like each grid run below, so per-execution cache
    stats compare like for like."""
    answers = {}
    for name, build in QUESTIONS.items():
        annoda = build_federation()
        result = annoda.ask(build(annoda.catalog))
        answers[name] = {
            "genes": result.genes,
            "gene_ids": result.gene_ids(),
            "view": annoda.render_integrated_view(result),
            "stats": {
                key: getattr(result.stats, key)
                for key in GRID_INDEPENDENT_STATS
            },
        }
    return answers


class TestCatalogEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("name", sorted(QUESTIONS))
    def test_sharded_replicated_answers_are_byte_identical(
        self, baseline, name, shards
    ):
        annoda = build_federation(shards=shards, replicas=2)
        result = annoda.ask(QUESTIONS[name](annoda.catalog))
        expected = baseline[name]
        assert result.gene_ids() == expected["gene_ids"]
        assert result.genes == expected["genes"]
        assert (
            annoda.render_integrated_view(result) == expected["view"]
        )
        for key in GRID_INDEPENDENT_STATS:
            assert getattr(result.stats, key) == expected["stats"][key], (
                f"stat {key!r} diverged on {name} at {shards} shard(s)"
            )
        assert result.report.ok
        if shards > 1:
            assert result.stats.shard_fans > 0


# -- random queries over random corpora (Hypothesis) ----------------------

anchor_conditions = st.lists(
    st.sampled_from(
        [
            Condition("Species", "=", "Homo sapiens"),
            Condition("Species", "=", "Mus musculus"),
            Condition("GeneID", ">", 1200),
            Condition("Definition", "contains", "kinase"),
        ]
    ),
    max_size=2,
    unique=True,
)

go_conditions = st.lists(
    st.sampled_from(
        [
            Condition("Aspect", "=", "molecular_function"),
            Condition("Title", "contains", "binding"),
        ]
    ),
    max_size=1,
)

modes = st.sampled_from(["include", "exclude"])


@st.composite
def queries(draw):
    links = []
    if draw(st.booleans()):
        links.append(
            LinkConstraint(
                "GO",
                draw(modes),
                via="AnnotationID",
                conditions=tuple(draw(go_conditions)),
            )
        )
    if draw(st.booleans()):
        links.append(
            LinkConstraint(
                "OMIM",
                draw(modes),
                via="DiseaseID",
                symbol_join=draw(st.booleans()),
            )
        )
    return GlobalQuery(
        anchor_source="LocusLink",
        conditions=tuple(draw(anchor_conditions)),
        links=tuple(links),
    )


@pytest.fixture(scope="module")
def random_corpora():
    return [
        AnnotationCorpus.generate(
            seed=seed,
            parameters=CorpusParameters(
                loci=60, go_terms=40, omim_entries=20, conflict_rate=0.3
            ),
        )
        for seed in (3, 17)
    ]


def _mediator(corpus, shards):
    mediator = Mediator()
    stores = [corpus.locuslink, corpus.go, corpus.omim]
    if shards > 1:
        stores = [ShardedSource(store, shards) for store in stores]
    mediator.register_wrapper(LocusLinkWrapper(stores[0]))
    mediator.register_wrapper(GoWrapper(stores[1]))
    mediator.register_wrapper(OmimWrapper(stores[2]))
    return mediator


class TestRandomQueryEquivalence:
    @given(
        query=queries(),
        corpus_index=st.integers(min_value=0, max_value=1),
        shards=st.sampled_from([2, 3, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_sharded_matches_unsharded(self, random_corpora, query,
                                       corpus_index, shards):
        corpus = random_corpora[corpus_index]
        flat = _mediator(corpus, 1).query(query, enrich_links=False)
        sharded = _mediator(corpus, shards).query(
            query, enrich_links=False
        )
        assert sharded.genes == flat.genes
        assert sharded.gene_ids() == flat.gene_ids()
