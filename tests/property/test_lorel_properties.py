"""Property-based tests of the Lorel language layer."""

from hypothesis import given, settings, strategies as st

from repro.lorel import parse
from repro.lorel.coerce import comparable_pair, compare, like
from repro.lorel.lexer import KEYWORDS

names = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
    lambda name: name.lower() not in KEYWORDS
)
string_literals = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"), blacklist_characters='"'
    ),
    max_size=15,
)
scalars = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    string_literals,
    st.booleans(),
)


@st.composite
def queries(draw):
    """Generate simple but varied select-from-where query text."""
    database = draw(names)
    variable = draw(names)
    select_path = f"{variable}.{draw(names)}"
    text = f"select {select_path} from {database}.{draw(names)} {variable}"
    if draw(st.booleans()):
        attribute = draw(names)
        literal = draw(st.integers(min_value=0, max_value=999))
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        text += f" where {variable}.{attribute} {op} {literal}"
    return text


class TestParserProperties:
    @given(queries())
    @settings(max_examples=150, deadline=None)
    def test_unparse_is_fixpoint(self, text):
        once = parse(text).unparse()
        assert parse(once).unparse() == once

    @given(queries())
    @settings(max_examples=100, deadline=None)
    def test_parse_is_deterministic(self, text):
        assert parse(text) == parse(text)


class TestCoercionProperties:
    @given(scalars, scalars)
    @settings(max_examples=200, deadline=None)
    def test_equality_is_symmetric(self, a, b):
        assert compare("=", a, b) == compare("=", b, a)

    @given(scalars, scalars)
    @settings(max_examples=200, deadline=None)
    def test_inequality_negates_equality_when_coercible(self, a, b):
        if comparable_pair(a, b) is not None:
            assert compare("!=", a, b) == (not compare("=", a, b))

    @given(scalars)
    @settings(max_examples=100, deadline=None)
    def test_equality_is_reflexive(self, a):
        assert compare("=", a, a)

    @given(scalars, scalars)
    @settings(max_examples=200, deadline=None)
    def test_ordering_is_antisymmetric(self, a, b):
        if compare("<", a, b):
            assert not compare(">", a, b)
            assert not compare("=", a, b)

    @given(string_literals)
    @settings(max_examples=100, deadline=None)
    def test_like_without_wildcards_is_equality(self, text):
        if "%" not in text and "_" not in text:
            assert like(text, text)

    @given(string_literals)
    @settings(max_examples=100, deadline=None)
    def test_percent_matches_everything(self, text):
        assert like(text, "%")
