"""Property test: concurrency never changes a service answer.

Hypothesis draws small mixed workloads of catalog requests; each
workload runs twice against equivalent federations — once serially on
a single worker, once submitted all at once to a multi-worker service.
For every request the serialized ``result`` payload (gene count, the
sorted gene ids, degraded sources) must be byte-identical between the
two runs: worker scheduling, queue order and shared-federation locking
are invisible in the answers.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.service import ServiceConfig, AnnodaService, ServiceRequest

from tests.service.conftest import build_annoda

REQUEST_POOL = [
    ServiceRequest(question="figure5b"),
    ServiceRequest(question="disease_genes"),
    ServiceRequest(question="unannotated_genes"),
    ServiceRequest(
        question="genes_by_annotation_keyword",
        params={"keyword": "binding"},
    ),
    ServiceRequest(question="genes_under_term", params={"go_id": "GO:0000002"}),
]

workloads = st.lists(
    st.sampled_from(range(len(REQUEST_POOL))), min_size=1, max_size=6
)


def run_workload(workload, workers):
    """Answer the workload on a fresh federation; returns the list of
    serialized ``result`` payloads in submission order."""
    service = AnnodaService(
        build_annoda(),
        ServiceConfig(queue_capacity=len(workload), workers=workers),
    ).start()
    try:
        if workers == 1:
            # Serial reference: one at a time, in order.
            responses = [
                service.ask(REQUEST_POOL[index], timeout=60)
                for index in workload
            ]
        else:
            # Concurrent run: submit everything, then collect.
            tickets = [
                service.submit(REQUEST_POOL[index]) for index in workload
            ]
            responses = [ticket.result(timeout=60) for ticket in tickets]
    finally:
        service.shutdown(drain=True, timeout=60)
    for response in responses:
        assert response.status == 200, response.body
    return [
        json.dumps(response.body["result"], sort_keys=True)
        for response in responses
    ]


@given(workload=workloads)
@settings(max_examples=8, deadline=None)
def test_concurrent_answers_are_byte_identical_to_serial(workload):
    serial = run_workload(workload, workers=1)
    concurrent = run_workload(workload, workers=4)
    assert serial == concurrent
