"""Property tests: the indexed/batched fetch path is invisible.

Two layers, mirroring ``test_executor_equivalence``:

1. **Source level** — for random native condition lists (equality,
   batched ``in`` with mixed-type candidates, range/substring
   residuals), ``native_query`` answers identically with the equality
   index on and off, *including order* (both paths return ``records()``
   order).
2. **Mediator level** — for random semijoin-shaped queries, the
   batched ``in`` anchor fetch and the per-id (N+1) equality loop
   produce the same integrated answer, enriched links included.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    Mediator,
    OptimizerOptions,
)
from repro.mediator.decompose import Condition
from repro.mediator.executor import Executor
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.base import NativeCondition
from repro.wrappers import default_wrappers

CORPUS = AnnotationCorpus.generate(
    seed=67,
    parameters=CorpusParameters(loci=70, go_terms=45, omim_entries=25),
)
STORE = CORPUS.locuslink
LOCUS_IDS = STORE.locus_ids()
SYMBOLS = sorted(
    {record.symbol for record in STORE.all_records()}
)[:20] + ["NO-SUCH-SYMBOL"]
GO_IDS = sorted(
    {go_id for record in STORE.all_records() for go_id in record.go_ids}
)[:20] + ["GO:9999999"]
OMIM_IDS = sorted(
    {mim for record in STORE.all_records() for mim in record.omim_ids}
)[:20] + [999999]

#: Probe values for the integer LocusID key: present ids, their string
#: spellings (coerced equality must keep working through the index),
#: zero-padded spellings, and misses.
locus_values = st.one_of(
    st.sampled_from(LOCUS_IDS),
    st.sampled_from([str(locus_id) for locus_id in LOCUS_IDS]),
    st.sampled_from(["0" + str(locus_id) for locus_id in LOCUS_IDS]),
    st.integers(min_value=0, max_value=3000),
    st.booleans(),
)

omim_values = st.one_of(
    st.sampled_from(OMIM_IDS),
    st.sampled_from([str(mim) for mim in OMIM_IDS]),
)

equality_conditions = st.one_of(
    st.builds(lambda v: NativeCondition("LocusID", "=", v), locus_values),
    st.builds(
        lambda v: NativeCondition("Symbol", "=", v),
        st.sampled_from(SYMBOLS),
    ),
    st.builds(
        lambda v: NativeCondition("Organism", "=", v),
        st.sampled_from(
            ["Homo sapiens", "Mus musculus", "homo sapiens", ""]
        ),
    ),
    st.builds(
        lambda v: NativeCondition("GoIDs", "=", v), st.sampled_from(GO_IDS)
    ),
    st.builds(lambda v: NativeCondition("OmimIDs", "=", v), omim_values),
)

in_conditions = st.builds(
    lambda values: NativeCondition("LocusID", "in", tuple(values)),
    st.lists(locus_values, max_size=6),
)

#: Conditions the index cannot drive; they ride along as secondary
#: filters over index hits (or as the whole scan predicate).
residual_conditions = st.sampled_from(
    [
        NativeCondition("LocusID", ">", 1200),
        NativeCondition("LocusID", "<=", 1500),
        NativeCondition("Description", "contains", "kinase"),
        NativeCondition("Description", "contains", "protein"),
        NativeCondition("Symbol", "like", "A%"),
    ]
)


@st.composite
def condition_lists(draw):
    conditions = [
        draw(st.one_of(equality_conditions, in_conditions))
    ]
    conditions.extend(draw(st.lists(residual_conditions, max_size=2)))
    draw(st.randoms(use_true_random=False)).shuffle(conditions)
    return conditions


class TestIndexedScanEquivalence:
    @given(condition_lists())
    @settings(max_examples=150, deadline=None)
    def test_index_on_equals_index_off(self, conditions):
        indexed = STORE.native_query(conditions, use_index=True)
        scan = STORE.native_query(conditions, use_index=False)
        # Full list equality: same records, same (records()) order.
        assert indexed == scan

    @given(st.lists(locus_values, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_in_equals_union_of_equals(self, values):
        batched = STORE.native_query(
            [NativeCondition("LocusID", "in", tuple(values))],
            use_index=True,
        )
        singly = []
        seen = set()
        for value in values:
            for record in STORE.native_query(
                [NativeCondition("LocusID", "=", value)], use_index=False
            ):
                if record["LocusID"] not in seen:
                    seen.add(record["LocusID"])
                    singly.append(record)
        singly.sort(key=lambda record: record["LocusID"])
        assert batched == singly


@pytest.fixture(scope="module")
def semijoin_mediator():
    mediator = Mediator(
        optimizer_options=OptimizerOptions(enable_semijoin=True)
    )
    for wrapper in default_wrappers(CORPUS):
        mediator.register_wrapper(wrapper)
    return mediator


go_needles = st.sampled_from(
    ["kinase", "binding", "transport", "receptor", "zz-nothing"]
)
anchor_condition_lists = st.lists(
    st.sampled_from(
        [
            Condition("Species", "=", "Homo sapiens"),
            Condition("GeneID", ">", 1200),
            Condition("Definition", "contains", "protein"),
        ]
    ),
    max_size=1,
)


class TestBatchedFetchEquivalence:
    @given(needle=go_needles, anchor_conditions=anchor_condition_lists)
    @settings(max_examples=30, deadline=None)
    def test_batched_equals_per_id(
        self, semijoin_mediator, needle, anchor_conditions
    ):
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=tuple(anchor_conditions),
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(Condition("Title", "contains", needle),),
                ),
            ),
        )
        plan = semijoin_mediator.plan(query)
        runs = {}
        for batch_fetch in (True, False):
            executor = Executor(
                semijoin_mediator._wrappers,
                semijoin_mediator.mapping_module,
                semijoin_mediator.reconciler,
                enrichment_cache={},
                batch_fetch=batch_fetch,
            )
            runs[batch_fetch] = executor.execute(
                plan, query, enrich_links=True
            )
        # Whole translated answer, matched link ids included.
        assert runs[True].genes == runs[False].genes
