"""Property tests: RecordBatch is a lossless columnar pivot.

``to_records(from_records(rs)) == rs`` for arbitrary ragged record
lists — including records that miss fields other records carry, and
fields explicitly stored as ``None`` (absence and ``None`` are
different facts and both survive the pivot).  The positional
operators and the payload snapshot must preserve the same content.
"""

from hypothesis import given, settings, strategies as st

from repro.sources.batch import RecordBatch

FIELD_NAMES = st.sampled_from(
    ["LocusID", "Symbol", "Organism", "GoIDs", "OmimIDs", "x", "y"]
)

CELLS = st.one_of(
    st.none(),
    st.integers(),
    st.text(max_size=8),
    st.booleans(),
    st.lists(st.integers(), max_size=3),
)

RECORDS = st.lists(
    st.dictionaries(FIELD_NAMES, CELLS, max_size=5), max_size=12
)


class TestRoundTrip:
    @given(RECORDS)
    @settings(max_examples=200, deadline=None)
    def test_ragged_round_trip(self, records):
        assert RecordBatch.from_records(records).to_records() == records

    @given(RECORDS)
    @settings(max_examples=100, deadline=None)
    def test_payload_round_trip(self, records):
        batch = RecordBatch.from_records(records)
        assert RecordBatch.from_payload(batch.to_payload()) == batch

    @given(RECORDS)
    @settings(max_examples=100, deadline=None)
    def test_take_identity_permutation(self, records):
        batch = RecordBatch.from_records(records)
        assert batch.take(range(len(batch))).to_records() == records

    @given(RECORDS, st.data())
    @settings(max_examples=100, deadline=None)
    def test_filter_matches_list_comprehension(self, records, data):
        mask = data.draw(
            st.lists(
                st.booleans(),
                min_size=len(records),
                max_size=len(records),
            )
        )
        batch = RecordBatch.from_records(records)
        assert batch.filter(mask).to_records() == [
            record for record, keep in zip(records, mask) if keep
        ]

    @given(RECORDS)
    @settings(max_examples=100, deadline=None)
    def test_cell_matches_record_get(self, records):
        batch = RecordBatch.from_records(records)
        for row, record in enumerate(records):
            for field in batch.fields:
                assert batch.cell(field, row, default="?") == (
                    record.get(field, "?")
                )
