"""Property tests: corpus invariants across random generation parameters."""

from hypothesis import given, settings, strategies as st

from repro.sources import AnnotationCorpus, CorpusParameters


@st.composite
def parameter_sets(draw):
    return CorpusParameters(
        loci=draw(st.integers(min_value=10, max_value=120)),
        go_terms=draw(st.integers(min_value=5, max_value=80)),
        omim_entries=draw(st.integers(min_value=3, max_value=40)),
        go_annotation_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        omim_link_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        omim_only_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        conflict_rate=draw(st.floats(min_value=0.0, max_value=0.8)),
    )


seeds = st.integers(min_value=0, max_value=10**6)


class TestCorpusInvariants:
    @given(seeds, parameter_sets())
    @settings(max_examples=25, deadline=None)
    def test_ontology_always_valid(self, seed, parameters):
        corpus = AnnotationCorpus.generate(seed=seed, parameters=parameters)
        assert corpus.go.validate() == []

    @given(seeds, parameter_sets())
    @settings(max_examples=25, deadline=None)
    def test_truth_covers_locus_side_links(self, seed, parameters):
        """Locus-side references never exceed ground truth, except the
        dangling ones conflict injection planted (and recorded)."""
        corpus = AnnotationCorpus.generate(seed=seed, parameters=parameters)
        truth = corpus.ground_truth
        dangling_loci = {
            conflict.locus_id
            for conflict in truth.conflicts
            if conflict.kind == "dangling_omim"
        }
        stale_loci = {
            conflict.locus_id
            for conflict in truth.conflicts
            if conflict.kind == "stale_go"
        }
        for record in corpus.locuslink.all_records():
            extra_omim = set(record.omim_ids) - truth.omim_by_locus[
                record.locus_id
            ]
            if extra_omim:
                assert record.locus_id in dangling_loci
            extra_go = set(record.go_ids) - truth.go_by_locus[
                record.locus_id
            ]
            if extra_go:
                assert record.locus_id in stale_loci

    @given(seeds, parameter_sets())
    @settings(max_examples=20, deadline=None)
    def test_true_associations_reachable_some_way(self, seed, parameters):
        """Every ground-truth association is reachable by id or by
        (possibly mangled) symbol — conflicts hide, never delete."""
        corpus = AnnotationCorpus.generate(seed=seed, parameters=parameters)
        truth = corpus.ground_truth
        for record in corpus.locuslink.all_records():
            for mim in truth.omim_by_locus[record.locus_id]:
                entry = corpus.omim.get(mim)
                assert entry is not None
                by_id = mim in record.omim_ids
                candidates = {record.symbol, record.symbol.lower()}
                candidates.update(record.aliases)
                candidates.update(
                    alias.lower() for alias in record.aliases
                )
                by_symbol = bool(candidates & set(entry.gene_symbols))
                assert by_id or by_symbol

    @given(seeds, parameter_sets())
    @settings(max_examples=15, deadline=None)
    def test_integrity_audit_accounts_for_every_injection(
        self, seed, parameters
    ):
        """The cross-source auditor finds at least every conflict the
        corpus injected, under the right finding kind."""
        from repro.sources.integrity import IntegrityAuditor

        corpus = AnnotationCorpus.generate(seed=seed, parameters=parameters)
        report = IntegrityAuditor(
            {
                "LocusLink": corpus.locuslink,
                "GO": corpus.go,
                "OMIM": corpus.omim,
            }
        ).audit()
        injected = {}
        for conflict in corpus.ground_truth.conflicts:
            injected[conflict.kind] = injected.get(conflict.kind, 0) + 1
        kind_map = {
            "stale_go": "obsolete_go_annotation",
            "dangling_omim": "dangling_omim_reference",
            "symbol_case": "case_variant_symbol",
            "symbol_alias": "alias_symbol",
        }
        for conflict_kind, finding_kind in kind_map.items():
            assert report.count(finding_kind) >= injected.get(
                conflict_kind, 0
            )

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_corpus(self, seed):
        parameters = CorpusParameters(
            loci=30, go_terms=15, omim_entries=8, conflict_rate=0.3
        )
        a = AnnotationCorpus.generate(seed=seed, parameters=parameters)
        b = AnnotationCorpus.generate(seed=seed, parameters=parameters)
        assert a.locuslink.dump() == b.locuslink.dump()
        assert a.omim.dump() == b.omim.dump()
        assert a.ground_truth.conflicts == b.ground_truth.conflicts
