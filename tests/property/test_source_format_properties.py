"""Property-based round-trip tests of every source flat-file format."""

from hypothesis import given, settings, strategies as st

from repro.sources.go import GoTerm, parse_obo, write_obo
from repro.sources.go.term import NAMESPACES, make_go_id
from repro.sources.locuslink import LocusRecord, parse_ll_tmpl, write_ll_tmpl
from repro.sources.omim import OmimRecord, parse_omim_txt, write_omim_txt
from repro.sources.pubmedlike import Citation, parse_medline, write_medline

# Field text: printable, single-line, no leading/trailing whitespace
# (every studied format is line-oriented and strips field values).
field_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
        blacklist_characters="\n\r",
    ),
    min_size=1,
    max_size=25,
).map(str.strip).filter(bool)

symbols = st.from_regex(r"[A-Z][A-Z0-9]{1,6}", fullmatch=True)


@st.composite
def locus_records(draw):
    return LocusRecord(
        locus_id=draw(st.integers(min_value=1, max_value=10**7)),
        organism=draw(field_text),
        symbol=draw(symbols),
        description=draw(st.one_of(st.just(""), field_text)),
        position=draw(st.one_of(st.just(""), field_text)),
        aliases=draw(st.lists(symbols, max_size=3)),
        go_ids=draw(
            st.lists(
                st.integers(min_value=1, max_value=9999999).map(make_go_id),
                max_size=3,
            )
        ),
        omim_ids=draw(
            st.lists(
                st.integers(min_value=100000, max_value=999999), max_size=3
            )
        ),
        pubmed_ids=draw(
            st.lists(st.integers(min_value=1, max_value=10**7), max_size=3)
        ),
    )


@st.composite
def go_terms(draw):
    return GoTerm(
        go_id=make_go_id(draw(st.integers(min_value=1, max_value=9999999))),
        name=draw(field_text),
        namespace=draw(st.sampled_from(NAMESPACES)),
        definition=draw(st.one_of(st.just(""), field_text)),
        is_a=draw(
            st.lists(
                st.integers(min_value=1, max_value=9999999).map(make_go_id),
                max_size=2,
            )
        ),
        synonyms=draw(st.lists(field_text, max_size=2)),
        obsolete=draw(st.booleans()),
    )


@st.composite
def omim_records(draw):
    return OmimRecord(
        mim_number=draw(st.integers(min_value=100000, max_value=999999)),
        title=draw(field_text),
        gene_symbols=draw(st.lists(symbols, max_size=3)),
        text=draw(st.one_of(st.just(""), field_text)),
        inheritance=draw(st.one_of(st.just(""), field_text)),
    )


@st.composite
def citations(draw):
    return Citation(
        pmid=draw(st.integers(min_value=1, max_value=10**8)),
        title=draw(field_text),
        journal=draw(field_text),
        year=draw(st.integers(min_value=1950, max_value=2010)),
        locus_ids=draw(
            st.lists(st.integers(min_value=1, max_value=10**6), max_size=3)
        ),
    )


class TestLlTmplRoundTrip:
    @given(st.lists(locus_records(), max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, records):
        # Distinct LocusIDs (store-level constraint, not format-level,
        # but duplicate separators make record identity ambiguous).
        seen = set()
        unique = []
        for record in records:
            if record.locus_id not in seen:
                seen.add(record.locus_id)
                unique.append(record)
        assert parse_ll_tmpl(write_ll_tmpl(unique)) == unique


class TestOboRoundTrip:
    @given(st.lists(go_terms(), max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, terms):
        assert parse_obo(write_obo(terms)) == terms


class TestOmimRoundTrip:
    @given(st.lists(omim_records(), max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, records):
        assert parse_omim_txt(write_omim_txt(records)) == records


class TestMedlineRoundTrip:
    @given(st.lists(citations(), max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, records):
        assert parse_medline(write_medline(records)) == records
