"""Property tests for the query flight recorder.

Three invariants, pinned under randomized inputs:

1. *Nesting*: under a deterministic fake clock, every child span's
   interval lies strictly inside its parent's, for arbitrary tree
   shapes.
2. *Well-formedness under failure*: every span a traced query opens is
   closed exactly once — even when a fault-injected wrapper raises or
   the federation degrades mid-query.
3. *Reconciliation with the report*: summing span counters over the
   trace reproduces the execution's :class:`ExecutionStats`, for
   random queries over a five-source federation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mediator import (
    FederationPolicy,
    FlakyWrapper,
    GlobalQuery,
    LinkConstraint,
    Mediator,
)
from repro.mediator.decompose import Condition
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.trace import TraceError, TraceRecorder, counter_totals
from repro.util.clock import FakeClock
from repro.util.errors import IntegrationError
from repro.wrappers import SwissProtLikeWrapper, default_wrappers

# -- 1. nesting ---------------------------------------------------------------

tree_shapes = st.recursive(
    st.just([]),
    lambda children: st.lists(children, max_size=3),
    max_leaves=12,
)


class TestNesting:
    @given(tree_shapes)
    @settings(max_examples=60, deadline=None)
    def test_children_nest_strictly_within_parents(self, shape):
        recorder = TraceRecorder(clock=FakeClock(tick=1.0))

        def build(children):
            with recorder.span("node"):
                for grandchildren in children:
                    build(grandchildren)

        build(shape)
        root = recorder.root
        assert root is not None
        for parent in root.walk():
            for child in parent.children:
                assert parent.start < child.start
                assert child.end < parent.end
        # The tick clock also makes sibling intervals disjoint and
        # ordered by sequence.
        for parent in root.walk():
            siblings = parent.children
            for earlier, later in zip(siblings, siblings[1:]):
                assert earlier.end < later.start


# -- 2. exactly-once closing under failure ------------------------------------


@pytest.fixture(scope="module")
def small_corpus():
    return AnnotationCorpus.generate(
        seed=47,
        parameters=CorpusParameters(
            loci=60, go_terms=40, omim_entries=20, conflict_rate=0.2
        ),
    )


FAILING_QUERY = GlobalQuery(
    anchor_source="LocusLink",
    links=(
        LinkConstraint(
            "GO",
            "include",
            via="AnnotationID",
            # Conditioned link: the GO fetch actually runs (and fails).
            conditions=(Condition("Aspect", "=", "molecular_function"),),
        ),
        LinkConstraint("OMIM", "exclude", via="DiseaseID"),
    ),
)


class TestExactlyOnceClosing:
    @given(
        error_rate=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
        degrade=st.booleans(),
        fault_seed=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=16, deadline=None)
    def test_every_span_closes_exactly_once(
        self, small_corpus, error_rate, degrade, fault_seed
    ):
        policy = FederationPolicy(
            max_workers=4,
            on_failure="degrade" if degrade else "raise",
        )
        mediator = Mediator(federation=policy)
        locuslink, go, omim = default_wrappers(small_corpus)
        mediator.register_wrapper(locuslink)
        mediator.register_wrapper(
            FlakyWrapper(go, error_rate=error_rate, seed=fault_seed)
        )
        mediator.register_wrapper(omim)

        recorder = TraceRecorder(clock=FakeClock(tick=1.0))
        try:
            mediator.query(
                FAILING_QUERY, use_cache=False, recorder=recorder
            )
        except IntegrationError:
            assert not degrade
        root = recorder.root
        assert root is not None
        for span in root.walk():
            assert span.closed, f"span {span.name!r} never closed"
            with pytest.raises(TraceError):
                recorder.close_span(span)
            if span.status == "error":
                assert span.error


# -- 3. span counters reconcile with ExecutionStats ---------------------------


@pytest.fixture(scope="module")
def federation():
    corpus = AnnotationCorpus.generate(
        seed=61,
        parameters=CorpusParameters(
            loci=80, go_terms=50, omim_entries=25, conflict_rate=0.3
        ),
    )
    mediator = Mediator()
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    mediator.register_wrapper(
        SwissProtLikeWrapper(corpus.make_protein_store(coverage=0.5))
    )
    return mediator


go_conditions = st.lists(
    st.sampled_from(
        [
            Condition("Aspect", "=", "molecular_function"),
            Condition("Title", "contains", "binding"),
        ]
    ),
    max_size=1,
)


@st.composite
def queries(draw):
    links = []
    if draw(st.booleans()):
        links.append(
            LinkConstraint(
                "GO",
                draw(st.sampled_from(["include", "exclude"])),
                via="AnnotationID",
                conditions=tuple(draw(go_conditions)),
            )
        )
    if draw(st.booleans()):
        links.append(
            LinkConstraint(
                "OMIM",
                draw(st.sampled_from(["include", "exclude"])),
                via="DiseaseID",
                symbol_join=draw(st.booleans()),
            )
        )
    if draw(st.booleans()):
        links.append(
            LinkConstraint(
                "SwissProt",
                "include",
                via="ProteinID",
                reverse_join=True,
            )
        )
    return GlobalQuery(
        anchor_source="LocusLink",
        conditions=tuple(
            draw(
                st.lists(
                    st.sampled_from(
                        [
                            Condition("Species", "=", "Homo sapiens"),
                            Condition(
                                "Definition", "contains", "protein"
                            ),
                        ]
                    ),
                    max_size=1,
                )
            )
        ),
        links=tuple(links),
    )


class TestCountersReconcile:
    @given(queries(), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_span_counter_totals_equal_execution_stats(
        self, federation, query, enrich
    ):
        result = federation.query(
            query,
            enrich_links=enrich,
            use_cache=False,
            recorder=TraceRecorder(clock=FakeClock(tick=1.0)),
        )
        totals = counter_totals(result.trace)
        stats = result.stats
        expected = {
            "rows": stats.total_rows_fetched(),
            "residual_evaluations": stats.residual_evaluations,
            "anchors_considered": stats.anchors_considered,
            "anchors_returned": stats.anchors_returned,
            "index_hits": stats.index_hits,
            "scan_fetches": stats.scan_fetches,
            "indexes_rebuilt": stats.indexes_rebuilt,
            "indexes_adopted": stats.indexes_adopted,
            "batched_fetches": stats.batched_fetches,
            "enrichment_cache_hits": stats.enrichment_cache_hits,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "concurrent_batches": stats.concurrent_batches,
            "conflicts": result.reconciliation.count(),
            "repaired": result.reconciliation.repaired_count(),
            "batch_rows": stats.batch_rows,
            "artifact_hits": stats.artifact_hits,
            "artifact_misses": stats.artifact_misses,
            "artifact_bytes": stats.artifact_bytes,
        }
        for name, value in expected.items():
            assert totals.get(name, 0) == value, (
                f"counter {name!r}: trace total {totals.get(name, 0)} "
                f"!= stats {value} for\n{query.render()}"
            )
