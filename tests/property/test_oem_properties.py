"""Property-based tests of the OEM substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.oem import (
    OEMGraph,
    from_json_table,
    graph_signature,
    read_figure3,
    to_json_table,
    to_python,
    write_figure3,
)

# Labels: identifier-ish, no whitespace (labels are space-delimited in
# the Figure-3 line format).
labels = st.from_regex(r"[A-Za-z][A-Za-z0-9_-]{0,10}", fullmatch=True)

# Atomic values across every inferable type; text may contain quotes
# and unicode but no newlines (values are line-scoped in Figure 3).
atoms = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=30,
    ),
    st.booleans(),
    st.binary(max_size=12),
)

trees = st.recursive(
    atoms,
    lambda children: st.dictionaries(
        labels,
        st.one_of(children, st.lists(children, min_size=1, max_size=3)),
        min_size=1,
        max_size=4,
    ),
    max_leaves=12,
)


def build_graph(tree):
    graph = OEMGraph()
    root = graph.build(tree if isinstance(tree, dict) else {"value": tree})
    graph.set_root("Root", root)
    return graph, root


class TestFigure3RoundTrip:
    @given(trees)
    @settings(max_examples=120, deadline=None)
    def test_write_read_write_is_identity(self, tree):
        graph, root = build_graph(tree)
        text = write_figure3(graph, "Root", root)
        parsed, label, parsed_root = read_figure3(text)
        assert label == "Root"
        assert write_figure3(parsed, label, parsed_root) == text

    @given(trees)
    @settings(max_examples=80, deadline=None)
    def test_round_trip_preserves_structure(self, tree):
        graph, root = build_graph(tree)
        text = write_figure3(graph, "Root", root)
        parsed, _, parsed_root = read_figure3(text)
        assert graph_signature(graph, root) == graph_signature(
            parsed, parsed_root
        )


class TestJsonRoundTrip:
    @given(trees)
    @settings(max_examples=80, deadline=None)
    def test_json_table_round_trip(self, tree):
        graph, root = build_graph(tree)
        rebuilt = from_json_table(to_json_table(graph))
        assert graph_signature(graph, root) == graph_signature(
            rebuilt, rebuilt.root("Root")
        )

    @given(trees)
    @settings(max_examples=60, deadline=None)
    def test_rebuilt_graph_validates(self, tree):
        graph, _ = build_graph(tree)
        rebuilt = from_json_table(to_json_table(graph))
        assert rebuilt.validate() == []


class TestImportSubgraph:
    @given(trees)
    @settings(max_examples=80, deadline=None)
    def test_import_preserves_signature(self, tree):
        graph, root = build_graph(tree)
        target = OEMGraph("target")
        target.new_atomic(0)  # shift oids so remapping is exercised
        copied = target.import_subgraph(graph, root)
        assert graph_signature(graph, root) == graph_signature(
            target, copied
        )

    @given(trees)
    @settings(max_examples=60, deadline=None)
    def test_imported_graph_validates(self, tree):
        graph, root = build_graph(tree)
        target = OEMGraph("target")
        target.import_subgraph(graph, root)
        assert target.validate() == []


class TestGraphInvariants:
    @given(trees)
    @settings(max_examples=60, deadline=None)
    def test_reachability_covers_walk(self, tree):
        graph, root = build_graph(tree)
        walked = {obj.oid for _path, obj in graph.walk(root)}
        assert walked == graph.reachable(root)

    @given(trees)
    @settings(max_examples=60, deadline=None)
    def test_built_graph_validates(self, tree):
        graph, _ = build_graph(tree)
        assert graph.validate() == []

    @given(trees)
    @settings(max_examples=60, deadline=None)
    def test_to_python_round_trips_through_build(self, tree):
        # build(to_python(build(tree))) has the same OEM signature.
        graph, root = build_graph(tree)
        data = to_python(graph, root)
        second = OEMGraph()
        second_root = second.build(data)
        assert graph_signature(graph, root) == graph_signature(
            second, second_root
        )
