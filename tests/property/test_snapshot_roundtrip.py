"""Property: a save -> load round trip of a whole federation answers
every indexed equality and ``in`` probe oid-for-oid identically to the
in-memory original, with **zero** index rebuilds on the loaded side —
the persisted snapshot really is adopted, not quietly rebuilt.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.base import NativeCondition
from repro.sources.persistence import load_stores, save_corpus


def _probes(store, per_field=2):
    probes = []
    for field in store.indexed_fields():
        values = []
        for record in store.records():
            value = record.get(field)
            items = value if isinstance(value, (list, tuple)) else [value]
            for item in items:
                if item is not None and item not in values:
                    values.append(item)
            if len(values) >= per_field:
                break
        for value in values:
            probes.append(NativeCondition(field, "=", value))
        if values:
            probes.append(NativeCondition(field, "in", tuple(values)))
    return probes


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loci=st.integers(min_value=5, max_value=40),
    go_terms=st.integers(min_value=6, max_value=30),
    omim_entries=st.integers(min_value=3, max_value=15),
)
@settings(max_examples=10, deadline=None)
def test_roundtrip_answers_identical_with_zero_rebuilds(
    seed, loci, go_terms, omim_entries
):
    corpus = AnnotationCorpus.generate(
        seed=seed,
        parameters=CorpusParameters(
            loci=loci, go_terms=go_terms, omim_entries=omim_entries
        ),
    )
    citations = corpus.make_citation_store(count=min(30, loci * 2))
    proteins = corpus.make_protein_store()
    originals = {
        store.name: store
        for store in list(corpus.sources()) + [citations, proteins]
    }
    with tempfile.TemporaryDirectory() as directory:
        save_corpus(
            corpus, directory, citations=citations, proteins=proteins
        )
        loaded = load_stores(directory)
    assert set(loaded) == set(originals)
    for name, original in originals.items():
        fresh = loaded[name]
        for probe in _probes(original):
            assert fresh.native_query([probe]) == original.native_query(
                [probe]
            ), f"{name}: {probe.render()}"
        stats = fresh.fetch_stats()
        assert stats["index_builds"] == 0, name
        assert stats["index_adoptions"] > 0, name
