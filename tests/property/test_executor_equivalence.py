"""Property test: every optimizer configuration answers every query
identically.

Random global queries (conditions, link modes, symbol/reverse joins)
run against five differently-configured mediators over the same
five-source federation; the answer sets must always agree.  This is
the strongest guard on the executor: pushdown, pruning, ordering and
semijoin are pure optimizations.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    Mediator,
    OptimizerOptions,
)
from repro.mediator.decompose import Condition
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.wrappers import SwissProtLikeWrapper, default_wrappers

CONFIGS = {
    "default": OptimizerOptions(),
    "no-pushdown": OptimizerOptions(enable_pushdown=False),
    "no-pruning": OptimizerOptions(enable_pruning=False),
    "bare": OptimizerOptions(
        enable_pushdown=False,
        enable_pruning=False,
        enable_ordering=False,
    ),
    "semijoin": OptimizerOptions(enable_semijoin=True),
}


@pytest.fixture(scope="module")
def mediators():
    corpus = AnnotationCorpus.generate(
        seed=61,
        parameters=CorpusParameters(
            loci=80, go_terms=50, omim_entries=25, conflict_rate=0.3
        ),
    )
    proteins = corpus.make_protein_store(coverage=0.5)
    built = {}
    for name, options in CONFIGS.items():
        mediator = Mediator(optimizer_options=options)
        for wrapper in default_wrappers(corpus):
            mediator.register_wrapper(wrapper)
        mediator.register_wrapper(SwissProtLikeWrapper(proteins))
        built[name] = mediator
    return built


anchor_conditions = st.lists(
    st.sampled_from(
        [
            Condition("Species", "=", "Homo sapiens"),
            Condition("Species", "=", "Mus musculus"),
            Condition("GeneID", ">", 1200),
            Condition("GeneID", "<=", 1500),
            Condition("Definition", "contains", "kinase"),
            Condition("Definition", "contains", "protein"),
        ]
    ),
    max_size=2,
    unique=True,
)

go_conditions = st.lists(
    st.sampled_from(
        [
            Condition("Aspect", "=", "molecular_function"),
            Condition("Title", "contains", "kinase"),
            Condition("Title", "contains", "binding"),
            Condition("Obsolete", "=", False),
        ]
    ),
    max_size=2,
    unique=True,
)

omim_conditions = st.lists(
    st.sampled_from(
        [
            Condition("Inheritance", "=", "autosomal dominant"),
            Condition("Title", "contains", "A"),
        ]
    ),
    max_size=1,
)

protein_conditions = st.lists(
    st.sampled_from(
        [
            Condition("Keyword", "=", "Kinase"),
            Condition("SequenceLength", ">=", 500),
        ]
    ),
    max_size=1,
)

modes = st.sampled_from(["include", "exclude"])


@st.composite
def queries(draw):
    links = []
    if draw(st.booleans()):
        links.append(
            LinkConstraint(
                "GO",
                draw(modes),
                via="AnnotationID",
                conditions=tuple(draw(go_conditions)),
            )
        )
    if draw(st.booleans()):
        links.append(
            LinkConstraint(
                "OMIM",
                draw(modes),
                via="DiseaseID",
                conditions=tuple(draw(omim_conditions)),
                symbol_join=draw(st.booleans()),
            )
        )
    if draw(st.booleans()):
        links.append(
            LinkConstraint(
                "SwissProt",
                draw(modes),
                via="ProteinID",
                conditions=tuple(draw(protein_conditions)),
                symbol_join=draw(st.booleans()),
                reverse_join=True,
            )
        )
    return GlobalQuery(
        anchor_source="LocusLink",
        conditions=tuple(draw(anchor_conditions)),
        links=tuple(links),
    )


class TestOptimizerEquivalence:
    @given(queries())
    @settings(max_examples=40, deadline=None)
    def test_all_configs_agree(self, mediators, query):
        answers = {
            name: frozenset(
                mediator.query(query, enrich_links=False).gene_ids()
            )
            for name, mediator in mediators.items()
        }
        reference = answers["bare"]
        for name, answer in answers.items():
            assert answer == reference, (
                f"config {name!r} diverged on:\n{query.render()}"
            )

    @given(queries())
    @settings(max_examples=25, deadline=None)
    def test_optimized_never_fetches_more(self, mediators, query):
        optimized = mediators["default"].query(query, enrich_links=False)
        bare = mediators["bare"].query(query, enrich_links=False)
        assert (
            optimized.stats.total_rows_fetched()
            <= bare.stats.total_rows_fetched()
        )
