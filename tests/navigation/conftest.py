"""Shared navigation test fixtures."""

import pytest

from repro.core import Annoda
from repro.sources.corpus import CorpusParameters


@pytest.fixture(scope="module")
def annoda():
    return Annoda.with_default_sources(
        seed=17,
        parameters=CorpusParameters(loci=100, go_terms=60, omim_entries=30),
    )


@pytest.fixture(scope="module")
def figure5b_result(annoda):
    return annoda.ask(annoda.catalog.figure5b())
