"""Tests for the navigator and browsing sessions (Figure 5c behaviour)."""

import pytest

from repro.util.errors import IntegrationError, QueryError


class TestFollow:
    def test_follow_locus_url(self, annoda):
        locus_id = annoda.corpus.locuslink.locus_ids()[0]
        url = f"http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_id}"
        view = annoda.navigate(url)
        assert view.source_name == "LocusLink"
        assert view.target_id == locus_id
        fields = dict(view.field_items())
        assert fields["LocusID"] == locus_id

    def test_follow_from_integrated_view(self, annoda, figure5b_result):
        graph = figure5b_result.graph
        gene = graph.children(figure5b_result.root, "Gene")[0]
        links = annoda.navigator.links_of(graph, gene)
        go_links = [l for l in links if l.target_source == "GO"]
        assert go_links
        view = annoda.navigator.follow(go_links[0])
        assert view.source_name == "GO"
        fields = dict(view.field_items())
        assert fields["GoID"] == go_links[0].target_id

    def test_onward_links_present(self, annoda, figure5b_result):
        graph = figure5b_result.graph
        gene = graph.children(figure5b_result.root, "Gene")[0]
        self_link = next(
            l
            for l in annoda.navigator.links_of(graph, gene)
            if l.label == "Self"
        )
        view = annoda.navigator.follow(self_link)
        # The locus view links onward to its GO annotations.
        assert any(l.target_source == "GO" for l in view.links)

    def test_dangling_link_reported(self, annoda):
        url = "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l=999999999"
        with pytest.raises(IntegrationError):
            annoda.navigate(url)

    def test_unregistered_source_reported(self, annoda):
        annoda_local = annoda  # PubMed is not registered on this fixture
        url = (
            "http://www.ncbi.nlm.nih.gov/entrez/query.fcgi"
            "?cmd=Retrieve&db=PubMed&list_uids=1"
        )
        with pytest.raises(IntegrationError):
            annoda_local.navigate(url)


class TestSession:
    def test_history_and_back(self, annoda):
        locus_ids = annoda.corpus.locuslink.locus_ids()
        session = annoda.navigation_session()
        first = session.visit_url(
            f"http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_ids[0]}"
        )
        session.visit_url(
            f"http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_ids[1]}"
        )
        assert session.trail() == [
            ("LocusLink", locus_ids[0]),
            ("LocusLink", locus_ids[1]),
        ]
        assert session.back() is first

    def test_forward_after_back(self, annoda):
        locus_ids = annoda.corpus.locuslink.locus_ids()
        session = annoda.navigation_session()
        session.visit_url(
            f"http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_ids[0]}"
        )
        second = session.visit_url(
            f"http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_ids[1]}"
        )
        session.back()
        assert session.forward() is second

    def test_visit_truncates_forward_history(self, annoda):
        locus_ids = annoda.corpus.locuslink.locus_ids()

        def url(index):
            return (
                "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l="
                f"{locus_ids[index]}"
            )

        session = annoda.navigation_session()
        session.visit_url(url(0))
        session.visit_url(url(1))
        session.back()
        session.visit_url(url(2))
        with pytest.raises(QueryError):
            session.forward()
        assert session.trail() == [
            ("LocusLink", locus_ids[0]),
            ("LocusLink", locus_ids[2]),
        ]

    def test_back_at_start_rejected(self, annoda):
        session = annoda.navigation_session()
        with pytest.raises(QueryError):
            session.back()

    def test_empty_session_has_no_current(self, annoda):
        session = annoda.navigation_session()
        assert session.current is None
