"""Tests for URL resolution and link extraction."""

import pytest

from repro.navigation import WebLink, extract_links, resolve_url
from repro.oem import OEMGraph, OEMType
from repro.util.errors import QueryError


class TestResolveUrl:
    @pytest.mark.parametrize(
        "url, expected",
        [
            (
                "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l=2354",
                ("LocusLink", 2354),
            ),
            (
                "http://godatabase.org/cgi-bin/go.cgi?query=GO:0003700",
                ("GO", "GO:0003700"),
            ),
            (
                "http://www.ncbi.nlm.nih.gov/entrez/dispomim.cgi?id=164772",
                ("OMIM", 164772),
            ),
            (
                "http://www.ncbi.nlm.nih.gov/entrez/query.fcgi"
                "?cmd=Retrieve&db=PubMed&list_uids=8889548",
                ("PubMed", 8889548),
            ),
        ],
    )
    def test_known_schemes(self, url, expected):
        assert resolve_url(url) == expected

    def test_unknown_url_rejected(self):
        with pytest.raises(QueryError):
            resolve_url("http://www.geneontology.org/")

    def test_malformed_go_id_rejected(self):
        with pytest.raises(QueryError):
            resolve_url("http://godatabase.org/cgi-bin/go.cgi?query=GO:42")


class TestExtractLinks:
    def test_links_extracted_with_targets(self):
        graph = OEMGraph()
        entry = graph.new_complex()
        links = graph.new_complex()
        graph.add_edge(entry, "Links", links)
        graph.add_edge(
            links,
            "Self",
            graph.new_atomic(
                "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l=7",
                OEMType.URL,
            ),
        )
        graph.add_edge(
            links,
            "GO",
            graph.new_atomic(
                "http://godatabase.org/cgi-bin/go.cgi?query=GO:0000002",
                OEMType.URL,
            ),
        )
        extracted = extract_links(graph, entry)
        assert [link.target_source for link in extracted] == [
            "LocusLink",
            "GO",
        ]
        assert extracted[0].target_id == 7

    def test_unresolvable_urls_skipped(self):
        graph = OEMGraph()
        entry = graph.new_complex()
        links = graph.new_complex()
        graph.add_edge(entry, "Links", links)
        graph.add_edge(
            links,
            "Homepage",
            graph.new_atomic("http://www.geneontology.org/", OEMType.URL),
        )
        assert extract_links(graph, entry) == []

    def test_no_links_object(self):
        graph = OEMGraph()
        entry = graph.new_complex()
        assert extract_links(graph, entry) == []

    def test_render(self):
        link = WebLink("GO", "http://x", "GO", "GO:0000002")
        assert "GO:GO:0000002" in link.render()
