"""Tests for the Figure-5 renderers."""

from repro.navigation import (
    render_integrated_view,
    render_integrated_view_html,
    render_object_view,
    render_query_form,
)


class TestQueryForm:
    def test_figure5a_content(self, annoda):
        question = annoda.catalog.figure5b()
        form = annoda.render_query_form(question)
        assert "ANNODA query interface" in form
        assert "[anchor] LocusLink" in form
        assert "[include] GO" in form
        assert "[exclude] OMIM" in form
        assert "combination method: and" in form

    def test_conditions_listed(self, annoda):
        question = annoda.catalog.genes_by_annotation_keyword("kinase")
        form = annoda.render_query_form(question)
        assert "kinase" in form

    def test_no_conditions_placeholder(self, annoda):
        form = annoda.render_query_form(annoda.catalog.figure5b())
        assert "(none)" in form


class TestIntegratedView:
    def test_figure5b_table(self, annoda, figure5b_result):
        view = render_integrated_view(figure5b_result)
        assert "Annotation integrated view" in view
        assert "GeneID" in view and "Annotations" in view
        # Every answer row shows at least one GO accession.
        assert "GO:" in view

    def test_limit_shows_remainder(self, figure5b_result):
        view = render_integrated_view(figure5b_result, limit=2)
        assert "more" in view

    def test_html_has_anchor_tags(self, figure5b_result):
        html_view = render_integrated_view_html(figure5b_result, limit=5)
        assert html_view.startswith("<html>")
        assert "<a href='http://www.ncbi.nlm.nih.gov" in html_view

    def test_gene_count_in_header(self, figure5b_result):
        view = render_integrated_view(figure5b_result)
        assert str(len(figure5b_result.genes)) in view

    def test_extra_sources_get_columns(self, annoda):
        from repro.mediator import GlobalQuery, LinkConstraint
        from repro.wrappers import SwissProtLikeWrapper

        proteins = annoda.corpus.make_protein_store()
        annoda.add_source(SwissProtLikeWrapper(proteins))
        try:
            result = annoda.ask(
                GlobalQuery(
                    anchor_source="LocusLink",
                    links=(
                        LinkConstraint(
                            "SwissProt",
                            "include",
                            via="ProteinID",
                            reverse_join=True,
                        ),
                    ),
                )
            )
            view = render_integrated_view(result, limit=5)
            assert "SwissProt" in view.splitlines()[1]
        finally:
            annoda.remove_source("SwissProt")

    def test_no_extra_columns_without_matches(self, figure5b_result):
        header = render_integrated_view(figure5b_result).splitlines()[1]
        assert "SwissProt" not in header
        assert "PubMed" not in header


class TestObjectView:
    def test_figure5c_content(self, annoda):
        locus_id = annoda.corpus.locuslink.locus_ids()[0]
        view = annoda.navigate(
            f"http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_id}"
        )
        rendered = render_object_view(view)
        assert f"LocusLink object {locus_id}" in rendered
        assert "Organism" in rendered
        assert "Web links" in rendered
