"""Repository hygiene: no bytecode ever gets tracked.

Pins the cleanup rule from the service PR: ``.gitignore`` must cover
``__pycache__`` everywhere (including ``benchmarks/``, which once
risked leaking compiled bytecode into the tree) and the git index must
contain no ``.pyc`` files or ``__pycache__`` directories.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git(*args):
    return subprocess.run(
        ["git", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )


def _require_git():
    if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not running inside a git checkout")


def test_gitignore_covers_pycache():
    text = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__/" in text.split()


def test_no_tracked_bytecode():
    _require_git()
    listing = _git("ls-files")
    assert listing.returncode == 0, listing.stderr
    offenders = [
        line
        for line in listing.stdout.splitlines()
        if line.endswith(".pyc") or "__pycache__" in line
    ]
    assert offenders == [], f"bytecode tracked in git: {offenders}"


@pytest.mark.parametrize(
    "path",
    [
        "benchmarks/__pycache__/",
        "src/repro/__pycache__/",
        "tests/__pycache__/",
        "tests/service/__pycache__/",
        "benchmarks/__pycache__/bench_service.cpython-311.pyc",
    ],
)
def test_pycache_directories_are_ignored(path):
    _require_git()
    check = _git("check-ignore", "-q", path)
    assert check.returncode == 0, (
        f"{path} is not covered by .gitignore"
    )
