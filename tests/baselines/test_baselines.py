"""Tests for the four baseline integration architectures."""

import pytest

from repro.baselines import (
    DiscoveryLinkSystem,
    HypertextNavigationSystem,
    K2KleisliSystem,
    WarehouseSystem,
)
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.wrappers import default_wrappers


@pytest.fixture(scope="module")
def corpus():
    return AnnotationCorpus.generate(
        seed=31,
        parameters=CorpusParameters(loci=80, go_terms=50, omim_entries=25),
    )


@pytest.fixture(scope="module")
def conflicted_corpus():
    return AnnotationCorpus.generate(
        seed=37,
        parameters=CorpusParameters(
            loci=200, go_terms=100, omim_entries=60, conflict_rate=0.4
        ),
    )


class TestHypertext:
    @pytest.fixture(scope="class")
    def system(self, corpus):
        return HypertextNavigationSystem(default_wrappers(corpus))

    def test_keyword_search(self, system, corpus):
        symbol = corpus.locuslink.all_records()[0].symbol
        hits = system.search("LocusLink", symbol)
        assert any(hit["Symbol"] == symbol for hit in hits)

    def test_search_is_per_source(self, system):
        from repro.util.errors import QueryError

        with pytest.raises(QueryError):
            system.search("Everything", "kinase")

    def test_follow_link(self, system, corpus):
        locus_id = corpus.locuslink.locus_ids()[0]
        record = system.follow_link(
            f"http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_id}"
        )
        assert record["LocusID"] == locus_id

    def test_integrated_query_needs_many_user_actions(self, system, corpus):
        answer, effort = system.integrated_gene_disease_query()
        # Correct answer (clean corpus) but at manual cost: at least
        # one action per locus.
        assert answer == corpus.ground_truth.figure5b_expected()
        assert effort["user_actions"] >= corpus.locuslink.count()
        assert effort["automated"] is False


class TestWarehouse:
    @pytest.fixture()
    def system(self, corpus):
        warehouse = WarehouseSystem(default_wrappers(corpus))
        warehouse.etl()
        return warehouse

    def test_etl_loads_all_tables(self, system, corpus):
        counts = system.etl()
        assert counts["LocusLink"] == corpus.locuslink.count()
        assert counts["GO"] == corpus.go.count()
        assert counts["OMIM"] == corpus.omim.count()

    def test_queries_never_touch_sources(self, system, corpus):
        version_before = corpus.locuslink.version
        system.integrated_gene_disease_query()
        assert corpus.locuslink.version == version_before

    def test_correct_on_clean_corpus(self, system, corpus):
        answer, effort = system.integrated_gene_disease_query()
        assert answer == corpus.ground_truth.figure5b_expected()
        assert effort["stale"] is False

    def test_staleness_detection(self, system, corpus):
        from repro.sources.locuslink import LocusRecord

        assert not system.is_stale()
        corpus.locuslink.add(
            LocusRecord(
                locus_id=777777, organism="Homo sapiens", symbol="STALE1"
            )
        )
        try:
            assert system.is_stale()
        finally:
            corpus.locuslink.remove(777777)
        system.etl()
        assert not system.is_stale()

    def test_stale_warehouse_misses_new_data(self, system, corpus):
        from repro.sources.locuslink import LocusRecord

        new_locus = LocusRecord(
            locus_id=777778,
            organism="Homo sapiens",
            symbol="FRESH1",
            go_ids=[corpus.go.term_ids()[5]],
        )
        corpus.locuslink.add(new_locus)
        try:
            answer, _ = system.integrated_gene_disease_query()
            assert 777778 not in answer  # stale copy
            system.etl()
            answer, _ = system.integrated_gene_disease_query()
            assert 777778 in answer  # fresh after reload
        finally:
            corpus.locuslink.remove(777778)
            system.etl()

    def test_cleansing_repairs_case_conflicts(self, conflicted_corpus):
        warehouse = WarehouseSystem(default_wrappers(conflicted_corpus))
        warehouse.etl()
        answer, _ = warehouse.disease_association_query()
        naive = K2KleisliSystem(default_wrappers(conflicted_corpus))
        naive_answer, _ = naive.disease_association_query()
        truth = conflicted_corpus.ground_truth.loci_with_omim()
        assert len(answer & truth) > len(naive_answer & truth)

    def test_query_before_etl_rejected(self, corpus):
        from repro.util.errors import QueryError

        warehouse = WarehouseSystem(default_wrappers(corpus))
        with pytest.raises(QueryError):
            warehouse.integrated_gene_disease_query()

    def test_archival(self, system):
        system.archive_snapshot("release-1")
        system.archive_snapshot("release-2")
        assert system.archived_labels() == ["release-1", "release-2"]


class TestMultidatabase:
    def test_correct_on_clean_corpus(self, corpus):
        system = K2KleisliSystem(default_wrappers(corpus))
        answer, effort = system.integrated_gene_disease_query()
        assert answer == corpus.ground_truth.figure5b_expected()
        assert effort["reconciled"] is False

    def test_wrong_on_conflicted_corpus(self, conflicted_corpus):
        """No reconciliation: the conflicted corpus produces measurable
        errors against ground truth."""
        from repro.evaluation.metrics import answer_quality

        system = K2KleisliSystem(default_wrappers(conflicted_corpus))
        answer, _ = system.disease_association_query()
        quality = answer_quality(
            answer, conflicted_corpus.ground_truth.loci_with_omim()
        )
        assert quality["recall"] < 1.0
        assert quality["errors"] > 0

    def test_query_source_requires_local_labels(self, corpus):
        system = DiscoveryLinkSystem(default_wrappers(corpus))
        hits = system.query_source(
            "LocusLink", [("Organism", "=", "Homo sapiens")]
        )
        assert hits

    def test_flavours_share_behaviour_differ_in_traits(self, corpus):
        k2 = K2KleisliSystem(default_wrappers(corpus))
        dl = DiscoveryLinkSystem(default_wrappers(corpus))
        assert k2.query_language == "OQL"
        assert dl.query_language == "SQL"
        assert (
            k2.integrated_gene_disease_query()[0]
            == dl.integrated_gene_disease_query()[0]
        )


class TestTraitsConsistency:
    def test_reconciliation_traits(self, corpus):
        wrappers = default_wrappers(corpus)
        assert not K2KleisliSystem(wrappers).traits().reconciles_results
        assert WarehouseSystem(wrappers).traits().reconciles_results
        assert not HypertextNavigationSystem(
            wrappers
        ).traits().reconciles_results

    def test_archival_traits(self, corpus):
        wrappers = default_wrappers(corpus)
        assert WarehouseSystem(wrappers).traits().archival_functionality
        assert not K2KleisliSystem(wrappers).traits().archival_functionality
