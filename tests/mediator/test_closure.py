"""Tests for ontology-closure ('under') predicates."""

import pytest

from repro.mediator import GlobalQuery, LinkConstraint
from repro.mediator.decompose import Condition
from repro.questions import QuestionCatalog
from repro.util.errors import ConfigurationError


def term_with_descendants(corpus, minimum=2):
    for term in corpus.go.all_terms():
        if term.is_root:
            continue
        if len(corpus.go.descendants(term.go_id)) >= minimum:
            return term.go_id
    pytest.skip("no mid-level term with descendants at this seed")


def expected_under(corpus, root_term):
    within = {root_term} | corpus.go.descendants(root_term)
    non_obsolete = {
        go_id
        for go_id in within
        if not corpus.go.get(go_id).obsolete
    }
    return {
        record.locus_id
        for record in corpus.locuslink.all_records()
        if set(record.go_ids) & non_obsolete
    }


class TestClosureQueries:
    def test_under_matches_descendant_closure(self, mediator, corpus):
        term = term_with_descendants(corpus)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        Condition("AnnotationID", "under", term),
                    ),
                ),
            ),
        )
        result = mediator.query(query, enrich_links=False)
        assert set(result.gene_ids()) == expected_under(corpus, term)

    def test_under_is_wider_than_equality(self, mediator, corpus):
        term = term_with_descendants(corpus)
        equality = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(Condition("AnnotationID", "=", term),),
                ),
            ),
        )
        closure = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        Condition("AnnotationID", "under", term),
                    ),
                ),
            ),
        )
        narrow = set(mediator.query(equality, enrich_links=False).gene_ids())
        wide = set(mediator.query(closure, enrich_links=False).gene_ids())
        assert narrow <= wide

    def test_matched_ids_stay_within_closure(self, mediator, corpus):
        term = term_with_descendants(corpus)
        result = mediator.query(
            QuestionCatalog.genes_under_term(term).to_global_query(),
            enrich_links=False,
        )
        within = {term} | corpus.go.descendants(term)
        for gene in result.genes:
            matched = set(gene["_links"]["GO"])
            assert matched
            assert matched <= within

    def test_root_term_covers_namespace(self, mediator, corpus):
        # 'under molecular_function root' = any non-obsolete annotation
        # in that namespace.
        root = corpus.go.roots("molecular_function")[0].go_id
        result = mediator.query(
            QuestionCatalog.genes_under_term(root).to_global_query(),
            enrich_links=False,
        )
        assert set(result.gene_ids()) == expected_under(corpus, root)

    def test_under_on_anchor_rejected(self, mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("AnnotationID", "under", "GO:0000001"),),
        )
        with pytest.raises(ConfigurationError):
            mediator.plan(query)

    def test_under_on_non_ontology_source_rejected(self, mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "OMIM",
                    "include",
                    via="DiseaseID",
                    conditions=(
                        Condition("DiseaseID", "under", 100100),
                    ),
                ),
            ),
        )
        with pytest.raises(ConfigurationError):
            mediator.plan(query)

    def test_closure_step_is_not_pruned(self, mediator, corpus):
        term = term_with_descendants(corpus)
        plan = mediator.plan(
            QuestionCatalog.genes_under_term(term).to_global_query()
        )
        assert not plan.link_steps[0].pruned
        assert plan.link_steps[0].closure == (("GoID", "under", term),)
