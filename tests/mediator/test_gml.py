"""Tests for ANNODA-GML construction (Figure 4)."""

from repro.oem import PathExpression, write_figure3
from repro.mediator.gml import ROOT_NAME


class TestGmlShape:
    def test_root_bound_as_annoda_gml(self, mediator):
        graph, root = mediator.gml()
        assert graph.root(ROOT_NAME) is root

    def test_one_source_object_per_wrapper(self, mediator):
        graph, root = mediator.gml()
        assert len(root.refs_with_label("Source")) == 3

    def test_source_ids_match_paper_numbering(self, mediator):
        graph, root = mediator.gml()
        ids = [
            graph.child_value(source, "SourceID")
            for source in graph.children(root, "Source")
        ]
        assert ids == [103, 203, 303]

    def test_source_names(self, mediator):
        graph, root = mediator.gml()
        names = PathExpression.parse("Source.Name").terminals(graph, root)
        assert [obj.value for obj in names] == ["LocusLink", "GO", "OMIM"]

    def test_section41_answer_labels(self, mediator):
        # The section 4.1 answer object shows SourceID, Name, Content,
        # Structure children on a Source.
        graph, root = mediator.gml()
        source = graph.children(root, "Source")[0]
        labels = source.labels()
        for expected in ("SourceID", "Name", "Content", "Structure"):
            assert expected in labels

    def test_content_stays_virtual(self, mediator, corpus):
        graph, root = mediator.gml()
        source = graph.children(root, "Source")[0]
        content = graph.children(source, "Content")[0]
        assert graph.child_value(content, "EntryCount") == (
            corpus.locuslink.count()
        )
        assert graph.child_value(content, "EntryLabel") == "Locus"

    def test_structure_lists_elements_with_correspondences(self, mediator):
        graph, root = mediator.gml()
        source = graph.children(root, "Source")[0]
        structure = graph.children(source, "Structure")[0]
        elements = graph.children(structure, "Element")
        by_name = {
            graph.child_value(element, "Name"): element
            for element in elements
        }
        assert graph.child_value(by_name["Symbol"], "MapsTo") == "GeneSymbol"
        assert graph.child_value(by_name["LocusID"], "Type") == "Integer"

    def test_links_homepage(self, mediator):
        graph, root = mediator.gml()
        urls = PathExpression.parse("Source.Links.Homepage").terminals(
            graph, root
        )
        assert any("geneontology" in obj.value for obj in urls)

    def test_graph_is_valid(self, mediator):
        graph, _ = mediator.gml()
        assert graph.validate() == []

    def test_figure4_renders(self, mediator):
        graph, root = mediator.gml()
        text = write_figure3(graph, ROOT_NAME, root)
        assert text.startswith("ANNODA-GML &1 Complex")
        assert "Source" in text


class TestGmlCaching:
    def test_cached_until_source_changes(self, mediator):
        first, _ = mediator.gml()
        second, _ = mediator.gml()
        assert first is second

    def test_rebuilt_after_source_mutation(self, mediator, corpus):
        from repro.sources.locuslink import LocusRecord

        first, _ = mediator.gml()
        record = LocusRecord(
            locus_id=999999, organism="Homo sapiens", symbol="ZZZZ9"
        )
        corpus.locuslink.add(record)
        try:
            second, root = mediator.gml()
            assert second is not first
            source = second.children(root, "Source")[0]
            content = second.children(source, "Content")[0]
            assert second.child_value(content, "EntryCount") == (
                corpus.locuslink.count()
            )
        finally:
            corpus.locuslink.remove(999999)


class TestSection41Query:
    def test_paper_query_through_lorel(self, mediator):
        engine = mediator.lorel_engine()
        result = engine.query(
            'select X from ANNODA-GML.Source X where X.Name = "LocusLink"'
        )
        assert len(result) == 1
        selected = result.objects("Source")[0]
        assert engine.workspace.child_value(selected, "SourceID") == 103

    def test_answer_rendering_matches_section41_listing(self, mediator):
        engine = mediator.lorel_engine()
        result = engine.query(
            'select X from ANNODA-GML.Source X where X.Name = "LocusLink"'
        )
        rendered = engine.render_answer(result)
        lines = rendered.splitlines()
        assert lines[0].startswith("answer &")
        assert any("SourceID" in line for line in lines)
        assert any("Name" in line for line in lines)
        assert any("Content" in line for line in lines)
        assert any("Structure" in line for line in lines)
