"""Tests for global queries and their decomposition."""

import pytest

from repro.mediator import GlobalQuery, LinkConstraint, QueryDecomposer
from repro.mediator.decompose import Condition
from repro.util.errors import IntegrationError, QueryError


def figure5b_query():
    """The paper's flagship query: LocusLink genes annotated with some
    GO function but not associated with some OMIM disease."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint("GO", "include", via="AnnotationID"),
            LinkConstraint(
                "OMIM", "exclude", via="DiseaseID", symbol_join=True
            ),
        ),
    )


class TestLinkConstraint:
    def test_bad_mode_rejected(self):
        with pytest.raises(QueryError):
            LinkConstraint("GO", "maybe", via="AnnotationID")

    def test_render(self):
        link = LinkConstraint(
            "GO",
            "include",
            via="AnnotationID",
            conditions=(Condition("Aspect", "=", "molecular_function"),),
        )
        rendered = link.render()
        assert "include GO" in rendered
        assert "Aspect" in rendered


class TestDecomposition:
    def test_figure5b_decomposes_into_three_subqueries(self, mediator):
        decomposer = QueryDecomposer(mediator.mapping_module)
        subqueries = decomposer.decompose(figure5b_query())
        assert [sq.source_name for sq in subqueries] == [
            "LocusLink",
            "GO",
            "OMIM",
        ]
        assert [sq.purpose for sq in subqueries] == [
            "anchor",
            "link",
            "link",
        ]

    def test_conditions_translated_to_local_labels(self, mediator):
        decomposer = QueryDecomposer(mediator.mapping_module)
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("Species", "=", "Homo sapiens"),),
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        Condition("Aspect", "=", "molecular_function"),
                    ),
                ),
            ),
        )
        subqueries = decomposer.decompose(query)
        assert subqueries[0].local_conditions == [
            ("Organism", "=", "Homo sapiens")
        ]
        assert subqueries[1].local_conditions == [
            ("Namespace", "=", "molecular_function")
        ]

    def test_unknown_anchor_rejected(self, mediator):
        decomposer = QueryDecomposer(mediator.mapping_module)
        with pytest.raises(IntegrationError):
            decomposer.decompose(GlobalQuery(anchor_source="Ensembl"))

    def test_unknown_link_source_rejected(self, mediator):
        decomposer = QueryDecomposer(mediator.mapping_module)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(LinkConstraint("Ensembl", "include", via="AnnotationID"),),
        )
        with pytest.raises(IntegrationError):
            decomposer.decompose(query)

    def test_anchor_must_carry_link_attribute(self, mediator):
        decomposer = QueryDecomposer(mediator.mapping_module)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(LinkConstraint("GO", "include", via="Journal"),),
        )
        with pytest.raises(IntegrationError):
            decomposer.decompose(query)

    def test_untranslatable_condition_rejected(self, mediator):
        decomposer = QueryDecomposer(mediator.mapping_module)
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("Journal", "=", "Nature"),),
        )
        with pytest.raises(IntegrationError):
            decomposer.decompose(query)

    def test_render(self):
        rendered = figure5b_query().render()
        assert "anchor: LocusLink" in rendered
        assert "include GO" in rendered
        assert "exclude OMIM" in rendered
