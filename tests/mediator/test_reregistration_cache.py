"""Cache freshness across source re-registration.

Result and fetch-path caches are keyed on ``(source name, version)``.
A *different* store re-registered under the same name starts from the
same version counter, so its keys collide with the old store's — the
mediator must purge every cache touching a source when it is
unregistered, or a repeat query silently answers from the replaced
federation (the bug this file pinned down).
"""

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.wrappers import default_wrappers

QUERY = GlobalQuery(
    anchor_source="LocusLink",
    links=(
        LinkConstraint(
            "GO",
            "include",
            via="AnnotationID",
            conditions=(Condition("Aspect", "=", "molecular_function"),),
        ),
    ),
)


def _fresh_corpus(seed):
    """A corpus no other test has touched: its stores' version
    counters are pristine, so two same-shaped corpora genuinely
    collide on ``(name, version)`` cache keys."""
    return AnnotationCorpus.generate(
        seed=seed,
        parameters=CorpusParameters(loci=150, go_terms=90,
                                    omim_entries=45),
    )


def _other_corpus():
    return _fresh_corpus(47)


def _ground_truth(corpus):
    """What a fresh, never-cached federation over ``corpus`` answers."""
    mediator = Mediator()
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator.query(QUERY, use_cache=False)


def _snapshot(result):
    return (
        tuple(result.gene_ids()),
        tuple(
            tuple(sorted(gene.get("Symbol", ""))) for gene in result.genes
        ),
    )


class TestReRegistrationFreshness:
    def test_replacing_a_source_invalidates_cached_results(self):
        corpus = _fresh_corpus(13)
        other = _other_corpus()
        mediator = Mediator()
        for wrapper in default_wrappers(corpus):
            mediator.register_wrapper(wrapper)

        first = mediator.query(QUERY)
        assert mediator.query(QUERY) is first  # cached

        # Swap every source for the other corpus's stores.  The new
        # wrappers start at the same version counters, so without the
        # unregistration purge the old cache keys collide.
        replacements = default_wrappers(other)
        for old, new in zip(list(mediator.sources()), replacements):
            replacement = {w.name: w for w in replacements}[old]
            assert mediator.wrapper(old).version == replacement.version
        for name in list(mediator.sources()):
            mediator.unregister_source(name)
        for wrapper in replacements:
            mediator.register_wrapper(wrapper)

        second = mediator.query(QUERY)
        assert second is not first
        assert _snapshot(second) == _snapshot(_ground_truth(other))

    def test_replacing_one_source_keeps_other_results_evicted_only_if_involved(  # noqa: E501
        self
    ):
        corpus = _fresh_corpus(13)
        other = _other_corpus()
        mediator = Mediator()
        for wrapper in default_wrappers(corpus):
            mediator.register_wrapper(wrapper)
        first = mediator.query(QUERY)

        # Replace only GO; the cached result federates GO, so it must
        # not survive.
        go_replacement = {
            w.name: w for w in default_wrappers(other)
        }["GO"]
        mediator.unregister_source("GO")
        assert not mediator._result_cache
        mediator.register_wrapper(go_replacement)
        second = mediator.query(QUERY)
        assert second is not first

    def test_enrichment_indexes_do_not_leak_across_replacement(
        self
    ):
        corpus = _fresh_corpus(13)
        other = _other_corpus()
        mediator = Mediator()
        for wrapper in default_wrappers(corpus):
            mediator.register_wrapper(wrapper)
        mediator.query(QUERY)  # warms the enrichment/symbol caches
        assert any(
            key[1] == "GO" for key in mediator._fetch_cache
        )
        mediator.unregister_source("GO")
        assert not any(
            key[1] == "GO" for key in mediator._fetch_cache
        )
        mediator.register_wrapper(
            {w.name: w for w in default_wrappers(other)}["GO"]
        )
        result = mediator.query(QUERY)
        # The rebuilt enrichment index serves the *new* ontology.
        go_rows = result.report.sources["GO"].rows
        assert go_rows >= 0  # accounting present for the fresh source
        assert result.report.ok

    def test_reregistering_from_persisted_snapshot_serves_fresh_results(
        self, tmp_path
    ):
        """Regression: swapping a live federation for one reloaded from
        a persisted snapshot (adopted indexes and all) must answer from
        the snapshot's data, not the evicted caches — and the adopted
        indexes mean the swap costs zero rebuilds."""
        from repro.sources.persistence import (
            load_stores,
            save_corpus,
            wrappers_for,
        )

        corpus = _fresh_corpus(13)
        other = _other_corpus()
        mediator = Mediator()
        for wrapper in default_wrappers(corpus):
            mediator.register_wrapper(wrapper)
        first = mediator.query(QUERY)

        save_corpus(other, tmp_path)
        loaded = load_stores(tmp_path)
        for name in list(mediator.sources()):
            mediator.unregister_source(name)
        for wrapper in wrappers_for(loaded):
            mediator.register_wrapper(wrapper)

        second = mediator.query(QUERY)
        assert second is not first
        assert _snapshot(second) == _snapshot(_ground_truth(other))
        # Every equality probe the query ran was served by an adopted
        # index — the cold start rebuilt nothing.
        assert (
            sum(
                store.fetch_stats()["index_builds"]
                for store in loaded.values()
            )
            == 0
        )
