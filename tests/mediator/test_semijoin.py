"""Tests for the semijoin optimization (the future-work optimizer)."""

import pytest

from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    Mediator,
    OptimizerOptions,
)
from repro.mediator.decompose import Condition
from repro.wrappers import default_wrappers


def selective_query():
    """Anchor unconditioned; the GO link is highly selective."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(
                    Condition("Title", "contains", "kinase"),
                ),
            ),
        ),
    )


def build_mediator(corpus, **options):
    mediator = Mediator(
        optimizer_options=OptimizerOptions(**options)
    )
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator


class TestPlanning:
    def test_selective_link_drives_anchor(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        plan = mediator.plan(selective_query())
        assert plan.anchor.semijoin == ("GO", "GoID")

    def test_disabled_by_default(self, corpus):
        mediator = build_mediator(corpus)
        plan = mediator.plan(selective_query())
        assert plan.anchor.semijoin is None

    def test_unselective_link_does_not_drive(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(Condition("Obsolete", "=", False),),
                ),
            ),
        )
        plan = mediator.plan(query)
        # 'Obsolete = False' matches ~everything: not selective enough.
        assert plan.anchor.semijoin is None

    def test_exclude_link_never_drives(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "exclude",
                    via="AnnotationID",
                    conditions=(Condition("Title", "contains", "kinase"),),
                ),
            ),
        )
        plan = mediator.plan(query)
        assert plan.anchor.semijoin is None

    def test_symbol_join_never_drives(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "OMIM",
                    "include",
                    via="DiseaseID",
                    symbol_join=True,
                    conditions=(Condition("Title", "contains", "A"),),
                ),
            ),
        )
        plan = mediator.plan(query)
        assert plan.anchor.semijoin is None

    def test_explain_mentions_semijoin(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        assert "SEMIJOIN" in mediator.plan(selective_query()).explain()


class TestExecution:
    def test_same_answer_as_scan_plan(self, corpus):
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(selective_query(), enrich_links=False)
        slow = scan.query(selective_query(), enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())
        assert len(fast) > 0

    def test_ships_fewer_anchor_rows(self, corpus):
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(selective_query(), enrich_links=False)
        slow = scan.query(selective_query(), enrich_links=False)
        assert (
            fast.stats.rows_fetched["LocusLink"]
            < slow.stats.rows_fetched["LocusLink"]
        )

    def test_respects_anchor_conditions(self, corpus):
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("Species", "=", "Homo sapiens"),),
            links=selective_query().links,
        )
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(query, enrich_links=False)
        slow = scan.query(query, enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())
        for gene in fast.genes:
            assert gene["Species"] == "Homo sapiens"

    def test_respects_residual_conditions(self, corpus):
        sample = corpus.locuslink.all_records()[0]
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(
                # '=' on Description is not native: residual predicate.
                Condition("Definition", "!=", sample.description),
            ),
            links=selective_query().links,
        )
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(query, enrich_links=False)
        slow = scan.query(query, enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())

    def test_multi_link_query_equivalent(self, corpus):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        Condition("Title", "contains", "kinase"),
                    ),
                ),
                LinkConstraint(
                    "OMIM", "exclude", via="DiseaseID", symbol_join=True
                ),
            ),
        )
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(query, enrich_links=False)
        slow = scan.query(query, enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())
