"""Tests for the semijoin optimization (the future-work optimizer)."""

import pytest

from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    Mediator,
    OptimizerOptions,
)
from repro.mediator.decompose import Condition
from repro.mediator.executor import Executor
from repro.wrappers import default_wrappers


def selective_query():
    """Anchor unconditioned; the GO link is highly selective."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(
                    Condition("Title", "contains", "kinase"),
                ),
            ),
        ),
    )


def build_mediator(corpus, **options):
    mediator = Mediator(
        optimizer_options=OptimizerOptions(**options)
    )
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator


class TestPlanning:
    def test_selective_link_drives_anchor(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        plan = mediator.plan(selective_query())
        assert plan.anchor.semijoin == ("GO", "GoID")

    def test_disabled_by_default(self, corpus):
        mediator = build_mediator(corpus)
        plan = mediator.plan(selective_query())
        assert plan.anchor.semijoin is None

    def test_unselective_link_does_not_drive(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(Condition("Obsolete", "=", False),),
                ),
            ),
        )
        plan = mediator.plan(query)
        # 'Obsolete = False' matches ~everything: not selective enough.
        assert plan.anchor.semijoin is None

    def test_exclude_link_never_drives(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "exclude",
                    via="AnnotationID",
                    conditions=(Condition("Title", "contains", "kinase"),),
                ),
            ),
        )
        plan = mediator.plan(query)
        assert plan.anchor.semijoin is None

    def test_symbol_join_never_drives(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "OMIM",
                    "include",
                    via="DiseaseID",
                    symbol_join=True,
                    conditions=(Condition("Title", "contains", "A"),),
                ),
            ),
        )
        plan = mediator.plan(query)
        assert plan.anchor.semijoin is None

    def test_explain_mentions_semijoin(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        assert "SEMIJOIN" in mediator.plan(selective_query()).explain()


class TestExecution:
    def test_same_answer_as_scan_plan(self, corpus):
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(selective_query(), enrich_links=False)
        slow = scan.query(selective_query(), enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())
        assert len(fast) > 0

    def test_ships_fewer_anchor_rows(self, corpus):
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(selective_query(), enrich_links=False)
        slow = scan.query(selective_query(), enrich_links=False)
        assert (
            fast.stats.rows_fetched["LocusLink"]
            < slow.stats.rows_fetched["LocusLink"]
        )

    def test_respects_anchor_conditions(self, corpus):
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("Species", "=", "Homo sapiens"),),
            links=selective_query().links,
        )
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(query, enrich_links=False)
        slow = scan.query(query, enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())
        for gene in fast.genes:
            assert gene["Species"] == "Homo sapiens"

    def test_respects_residual_conditions(self, corpus):
        sample = corpus.locuslink.all_records()[0]
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(
                # '=' on Description is not native: residual predicate.
                Condition("Definition", "!=", sample.description),
            ),
            links=selective_query().links,
        )
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(query, enrich_links=False)
        slow = scan.query(query, enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())

    def test_batched_matches_per_id_loop(self, corpus):
        """The single ``in`` fetch and the N+1 equality loop are the
        same semijoin, differently shipped."""
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = selective_query()
        plan = mediator.plan(query)
        assert plan.anchor.semijoin is not None
        batched = _execute(mediator, plan, query, batch_fetch=True)
        per_id = _execute(mediator, plan, query, batch_fetch=False)
        assert batched.gene_ids() == per_id.gene_ids()
        assert len(batched) > 0
        assert batched.stats.batched_fetches > 0
        assert per_id.stats.batched_fetches == 0
        # The batched fetch never ships more: the per-id loop re-ships
        # an anchor once per matching link id, the batch ships it once.
        assert (
            batched.stats.rows_fetched["LocusLink"]
            <= per_id.stats.rows_fetched["LocusLink"]
        )

    def test_multi_link_query_equivalent(self, corpus):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        Condition("Title", "contains", "kinase"),
                    ),
                ),
                LinkConstraint(
                    "OMIM", "exclude", via="DiseaseID", symbol_join=True
                ),
            ),
        )
        semijoin = build_mediator(corpus, enable_semijoin=True)
        scan = build_mediator(corpus)
        fast = semijoin.query(query, enrich_links=False)
        slow = scan.query(query, enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())


def _execute(mediator, plan, query, batch_fetch):
    executor = Executor(
        mediator._wrappers,
        mediator.mapping_module,
        mediator.reconciler,
        enrichment_cache={},
        batch_fetch=batch_fetch,
    )
    return executor.execute(plan, query, enrich_links=False)


def dead_end_query():
    """A semijoin-shaped query whose driving link matches nothing."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(
                    Condition("Title", "contains", "zz-no-such-term"),
                ),
            ),
        ),
    )


class TestFetchAccounting:
    """Regression: the anchor source must appear in the fetch
    accounting exactly once even when the driving link's allowed set is
    empty and no anchor fetch is issued at all."""

    def test_empty_allowed_set_batched(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = dead_end_query()
        plan = mediator.plan(query)
        assert plan.anchor.semijoin is not None
        result = _execute(mediator, plan, query, batch_fetch=True)
        assert len(result) == 0
        assert result.stats.rows_fetched["LocusLink"] == 0
        assert result.stats.batched_fetches == 0

    def test_empty_allowed_set_per_id(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = dead_end_query()
        plan = mediator.plan(query)
        result = _execute(mediator, plan, query, batch_fetch=False)
        assert len(result) == 0
        assert result.stats.rows_fetched["LocusLink"] == 0

    def test_nonempty_allowed_set_single_entry(self, corpus):
        mediator = build_mediator(corpus, enable_semijoin=True)
        query = selective_query()
        plan = mediator.plan(query)
        result = _execute(mediator, plan, query, batch_fetch=True)
        # One accounting entry per source, anchor included.
        assert set(result.stats.rows_fetched) == {"LocusLink", "GO"}
        assert result.stats.rows_fetched["LocusLink"] > 0
