"""The FetchRequest/FetchReply protocol at the wrapper boundary."""

import pytest

from repro.mediator.fetch import (
    FederatedFetcher,
    FederationPolicy,
    FetchReply,
    FetchRequest,
    FlakyWrapper,
)
from repro.util.errors import IntegrationError
from repro.wrappers import LocusLinkWrapper


@pytest.fixture()
def ll_wrapper(corpus):
    return LocusLinkWrapper(corpus.locuslink)


class TestFetchRequest:
    def test_conditions_normalized_to_plain_triples(self):
        request = FetchRequest([["Symbol", "=", "BRCA1"]])
        assert request.conditions == (("Symbol", "=", "BRCA1"),)

    def test_in_values_frozen_to_tuple(self):
        request = FetchRequest([("LocusID", "in", [3, 1, 2])])
        assert request.conditions[0][2] == (3, 1, 2)

    def test_condition_objects_accepted(self):
        from repro.mediator.decompose import Condition

        request = FetchRequest((Condition("Symbol", "=", "BRCA1"),))
        assert request.conditions == (("Symbol", "=", "BRCA1"),)

    def test_where_sugar(self):
        request = FetchRequest.where(
            ("Organism", "=", "Homo sapiens"), purpose="anchor"
        )
        assert request.purpose == "anchor"
        assert "Organism" in request.render()

    def test_defaults_inherit_from_policy(self):
        request = FetchRequest()
        assert request.timeout is None
        assert request.retries is None
        assert request.deadline is None


class TestWrapperFetchMigration:
    """Satellite: the raw-conditions shim is gone — Wrapper.fetch only
    accepts FetchRequest-shaped arguments."""

    def test_raw_condition_sequence_rejected(self, ll_wrapper):
        conditions = [("Organism", "=", "Homo sapiens")]
        with pytest.raises(TypeError, match="FetchRequest"):
            ll_wrapper.fetch(conditions)  # annoda: noqa=ANN001 -- the hard-TypeError path is exactly what this test covers

    def test_raw_empty_conditions_rejected(self, ll_wrapper):
        with pytest.raises(TypeError, match="no longer accepted"):
            ll_wrapper.fetch(())  # annoda: noqa=ANN001 -- the hard-TypeError path is exactly what this test covers

    def test_request_path_emits_no_warning(self, ll_wrapper, recwarn):
        records = ll_wrapper.fetch(FetchRequest())
        assert len(records) > 0
        assert not [
            warning
            for warning in recwarn.list
            if issubclass(warning.category, DeprecationWarning)
        ]


class TestFetchReply:
    def test_ok_reply_carries_records_and_accounting(self, ll_wrapper):
        fetcher = FederatedFetcher()
        reply = fetcher.fetch(
            ll_wrapper,
            FetchRequest((("Organism", "=", "Homo sapiens"),)),
        )
        assert reply.ok
        assert reply.status == "ok"
        assert len(reply.records) > 0
        assert len(reply.attempts) == 1
        assert reply.attempts[0].outcome == "ok"
        assert reply.retries == 0
        assert reply.elapsed > 0
        # The equality predicate answers from the source index.
        assert reply.index_hits + reply.scan_queries >= 1
        assert reply.raise_if_failed() is reply

    def test_failed_reply_is_a_value_not_an_exception(self, ll_wrapper):
        flaky = FlakyWrapper(ll_wrapper, blackout=True)
        fetcher = FederatedFetcher()
        reply = fetcher.fetch(flaky, FetchRequest())
        assert not reply.ok
        assert reply.status == "error"
        assert reply.records == ()
        assert "injected fault" in reply.error
        with pytest.raises(IntegrationError) as excinfo:
            reply.raise_if_failed()
        assert "'LocusLink'" in str(excinfo.value)

    def test_replies_report_per_attempt_timings(self, ll_wrapper):
        flaky = FlakyWrapper(ll_wrapper, fail_first=2)
        policy = FederationPolicy(retries=3, backoff=0.0)
        reply = FederatedFetcher(policy).fetch(flaky, FetchRequest())
        assert reply.ok
        assert [attempt.outcome for attempt in reply.attempts] == [
            "error", "error", "ok",
        ]
        assert reply.retries == 2
        assert all(attempt.elapsed >= 0 for attempt in reply.attempts)


class TestFederationPolicy:
    def test_rejects_unknown_failure_mode(self):
        with pytest.raises(ValueError):
            FederationPolicy(on_failure="explode")

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            FederationPolicy(max_workers=0)

    def test_degrades_flag(self):
        assert FederationPolicy(on_failure="degrade").degrades
        assert not FederationPolicy().degrades

    def test_policy_is_hashable_for_cache_keys(self):
        assert hash(FederationPolicy()) == hash(FederationPolicy())
