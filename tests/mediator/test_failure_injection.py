"""Failure injection: a member source breaking mid-query."""

import pytest

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.util.errors import IntegrationError
from repro.wrappers import GoWrapper, default_wrappers


class _FlakyOntology:
    """Delegates to a real GO store but fails after N queries."""

    def __init__(self, real, failures_after=0):
        self._real = real
        self._failures_after = failures_after
        self._calls = 0

    def __getattr__(self, name):
        return getattr(self._real, name)

    def native_query(self, conditions=()):
        self._calls += 1
        if self._calls > self._failures_after:
            raise ConnectionError("simulated source outage")
        return self._real.native_query(conditions)


@pytest.fixture()
def flaky_mediator(corpus):
    mediator = Mediator()
    wrappers = default_wrappers(corpus)
    flaky = GoWrapper(_FlakyOntology(corpus.go, failures_after=10**9))
    flaky_source = flaky.source
    # Registration (schema matching) must succeed; arm the failure
    # afterwards.
    mediator.register_wrapper(wrappers[0])  # LocusLink
    mediator.register_wrapper(flaky)
    mediator.register_wrapper(wrappers[2])  # OMIM
    flaky_source._failures_after = 0
    return mediator


class TestSourceOutage:
    def test_outage_reported_with_source_name(self, flaky_mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        # Conditioned link: the GO fetch actually runs.
                        Condition("Aspect", "=", "molecular_function"),
                    ),
                ),
            ),
        )
        with pytest.raises(IntegrationError) as excinfo:
            flaky_mediator.query(query, enrich_links=False)
        assert "'GO'" in str(excinfo.value)
        assert "outage" in str(excinfo.value)

    def test_queries_not_touching_the_broken_source_still_answer(
        self, flaky_mediator, corpus
    ):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint("OMIM", "include", via="DiseaseID"),
            ),
        )
        result = flaky_mediator.query(query, enrich_links=False)
        assert len(result) > 0

    def test_pruned_go_step_avoids_the_outage_but_validation_does_not(
        self, flaky_mediator
    ):
        # An unconditional include is pruned (no GO fetch), and the
        # reconciler's exists/is_obsolete checks read the ontology
        # in-process, so this query still answers.
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(LinkConstraint("GO", "include", via="AnnotationID"),),
        )
        result = flaky_mediator.query(query, enrich_links=False)
        assert len(result) > 0
