"""Shared mediator test fixtures."""

import pytest

from repro.mediator import Mediator
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.wrappers import default_wrappers


@pytest.fixture(scope="session")
def corpus():
    return AnnotationCorpus.generate(
        seed=13,
        parameters=CorpusParameters(loci=150, go_terms=90, omim_entries=45),
    )


@pytest.fixture(scope="session")
def conflicted_corpus():
    return AnnotationCorpus.generate(
        seed=29,
        parameters=CorpusParameters(
            loci=250, go_terms=120, omim_entries=70, conflict_rate=0.35
        ),
    )


@pytest.fixture()
def mediator(corpus):
    mediator = Mediator()
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator


@pytest.fixture()
def conflicted_mediator(conflicted_corpus):
    mediator = Mediator()
    for wrapper in default_wrappers(conflicted_corpus):
        mediator.register_wrapper(wrapper)
    return mediator
