"""Tests for reconciliation policies and the reconciler."""

import pytest

from repro.mediator import ReconciliationPolicy, Reconciler
from repro.mediator.reconcile import ReconciliationReport
from repro.sources.go import GoOntology, GoTerm
from repro.sources.omim import OmimRecord, OmimStore
from repro.wrappers import GoWrapper, OmimWrapper


@pytest.fixture
def go_wrapper():
    return GoWrapper(
        GoOntology(
            [
                GoTerm("GO:0000001", "root", "molecular_function"),
                GoTerm(
                    "GO:0000002",
                    "kinase activity",
                    "molecular_function",
                    is_a=["GO:0000001"],
                ),
                GoTerm(
                    "GO:0000003",
                    "old term",
                    "molecular_function",
                    is_a=["GO:0000001"],
                    obsolete=True,
                ),
            ]
        )
    )


@pytest.fixture
def omim_wrapper():
    return OmimWrapper(
        OmimStore(
            [
                OmimRecord(100100, "DISEASE A", gene_symbols=["FOSB"]),
                OmimRecord(100200, "DISEASE B", gene_symbols=["fosb"]),
                OmimRecord(100300, "DISEASE C", gene_symbols=["FOSB-ALT1"]),
                OmimRecord(100400, "DISEASE D", gene_symbols=["OTHER1"]),
            ]
        )
    )


class TestAnnotationValidation:
    def test_valid_ids_pass_untouched(self, go_wrapper):
        report = ReconciliationReport()
        reconciler = Reconciler()
        valid = reconciler.valid_annotation_ids(
            1, ["GO:0000002"], go_wrapper, report
        )
        assert valid == ["GO:0000002"]
        assert report.count() == 0

    def test_dangling_dropped_and_reported(self, go_wrapper):
        report = ReconciliationReport()
        valid = Reconciler().valid_annotation_ids(
            1, ["GO:0000002", "GO:9999999"], go_wrapper, report
        )
        assert valid == ["GO:0000002"]
        assert report.count("dangling_annotation") == 1
        assert report.repaired_count() == 1

    def test_obsolete_dropped_and_reported(self, go_wrapper):
        report = ReconciliationReport()
        valid = Reconciler().valid_annotation_ids(
            1, ["GO:0000003"], go_wrapper, report
        )
        assert valid == []
        assert report.count("obsolete_annotation") == 1

    def test_naive_policy_passes_everything(self, go_wrapper):
        report = ReconciliationReport()
        reconciler = Reconciler(ReconciliationPolicy.naive())
        valid = reconciler.valid_annotation_ids(
            1, ["GO:0000003", "GO:9999999"], go_wrapper, report
        )
        assert valid == ["GO:0000003", "GO:9999999"]
        # Conflicts are still observed, just not repaired.
        assert report.count() == 2
        assert report.repaired_count() == 0


class TestDiseaseValidation:
    def test_dangling_mim_dropped(self, omim_wrapper):
        report = ReconciliationReport()
        valid = Reconciler().valid_disease_ids(
            1, [100100, 999999], omim_wrapper, report
        )
        assert valid == [100100]
        assert report.count("dangling_disease") == 1


class TestSymbolMatching:
    def test_exact(self):
        matched, via = Reconciler().symbol_match("FOSB", [], "FOSB")
        assert matched and via == "exact"

    def test_case_variant(self):
        matched, via = Reconciler().symbol_match("FOSB", [], "fosb")
        assert matched and via == "case"

    def test_alias(self):
        matched, via = Reconciler().symbol_match(
            "FOSB", ["FOSB-ALT1"], "FOSB-ALT1"
        )
        assert matched and via == "alias"

    def test_alias_case_variant(self):
        matched, via = Reconciler().symbol_match(
            "FOSB", ["FOSB-ALT1"], "fosb-alt1"
        )
        assert matched and via == "alias"

    def test_unrelated(self):
        matched, via = Reconciler().symbol_match("FOSB", [], "BRCA2")
        assert not matched and via == "none"

    def test_naive_policy_exact_only(self):
        reconciler = Reconciler(ReconciliationPolicy.naive())
        assert not reconciler.symbol_match("FOSB", [], "fosb")[0]
        assert not reconciler.symbol_match("FOSB", ["X1"], "X1")[0]


class TestSymbolJoin:
    def test_reconciled_join_finds_all_variants(self, omim_wrapper):
        report = ReconciliationReport()
        found = Reconciler().disease_ids_via_symbols(
            1, "FOSB", ["FOSB-ALT1"], omim_wrapper, report
        )
        assert found == {100100, 100200, 100300}
        # Two repairs: the case variant and the alias.
        assert report.count("symbol_case") == 1
        assert report.count("symbol_alias") == 1

    def test_naive_join_finds_exact_only(self, omim_wrapper):
        report = ReconciliationReport()
        reconciler = Reconciler(ReconciliationPolicy.naive())
        found = reconciler.disease_ids_via_symbols(
            1, "FOSB", ["FOSB-ALT1"], omim_wrapper, report
        )
        assert found == {100100}
        assert report.count() == 0


class TestValueMerging:
    def test_trusted_source_wins(self):
        winner, source, conflicting = Reconciler.merge_values(
            {"LocusLink": "19q13.32", "OMIM": "19q13"},
            trusted_order=("LocusLink", "OMIM"),
        )
        assert winner == "19q13.32"
        assert source == "LocusLink"
        assert conflicting == [("OMIM", "19q13")]

    def test_agreeing_sources_report_no_conflict(self):
        _, _, conflicting = Reconciler.merge_values(
            {"A": "x", "B": "x"}, trusted_order=("A",)
        )
        assert conflicting == []

    def test_untrusted_sources_fall_back_alphabetical(self):
        winner, source, _ = Reconciler.merge_values(
            {"Z": 1, "B": 2}, trusted_order=()
        )
        assert source == "B"
        assert winner == 2

    def test_empty_input(self):
        assert Reconciler.merge_values({}, ()) == (None, None, [])


class TestReport:
    def test_counting_and_rendering(self):
        report = ReconciliationReport()
        report.record("symbol_case", 1, "detail", True)
        report.record("symbol_case", 2, "detail", True)
        report.record("dangling_disease", 3, "detail", False)
        assert report.count() == 3
        assert report.count("symbol_case") == 2
        assert report.repaired_count() == 2
        assert report.kinds() == ["dangling_disease", "symbol_case"]
        assert "3 conflicts" in report.render()

    def test_empty_report_renders(self):
        assert "no conflicts" in ReconciliationReport().render()
