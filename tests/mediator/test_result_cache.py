"""Tests for the version-keyed query result cache."""

import pytest

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.sources.locuslink import LocusRecord
from repro.wrappers import default_wrappers


def disease_query():
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(LinkConstraint("OMIM", "include", via="DiseaseID"),),
    )


@pytest.fixture()
def cached_mediator(corpus):
    mediator = Mediator()
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator


class TestCacheHits:
    def test_repeat_query_returns_cached_object(self, cached_mediator):
        first = cached_mediator.query(disease_query(), enrich_links=False)
        second = cached_mediator.query(disease_query(), enrich_links=False)
        assert second is first

    def test_different_query_misses(self, cached_mediator):
        first = cached_mediator.query(disease_query(), enrich_links=False)
        other = cached_mediator.query(
            GlobalQuery(
                anchor_source="LocusLink",
                conditions=(Condition("Species", "=", "Homo sapiens"),),
            ),
            enrich_links=False,
        )
        assert other is not first

    def test_enrichment_flag_is_part_of_the_key(self, cached_mediator):
        lean = cached_mediator.query(disease_query(), enrich_links=False)
        rich = cached_mediator.query(disease_query(), enrich_links=True)
        assert rich is not lean

    def test_use_cache_false_bypasses(self, cached_mediator):
        first = cached_mediator.query(disease_query(), enrich_links=False)
        fresh = cached_mediator.query(
            disease_query(), enrich_links=False, use_cache=False
        )
        assert fresh is not first


class TestFreshness:
    def test_source_update_invalidates(self, cached_mediator, corpus):
        first = cached_mediator.query(disease_query(), enrich_links=False)
        mim = corpus.omim.mim_numbers()[0]
        new_locus = LocusRecord(
            locus_id=955555,
            organism="Homo sapiens",
            symbol="CACHE1",
            omim_ids=[mim],
        )
        corpus.locuslink.add(new_locus)
        try:
            second = cached_mediator.query(
                disease_query(), enrich_links=False
            )
            assert second is not first
            assert 955555 in second.gene_ids()
        finally:
            corpus.locuslink.remove(955555)
        third = cached_mediator.query(disease_query(), enrich_links=False)
        assert 955555 not in third.gene_ids()

    def test_cache_bounded(self, cached_mediator):
        for cutoff in range(Mediator.RESULT_CACHE_SIZE + 8):
            cached_mediator.query(
                GlobalQuery(
                    anchor_source="LocusLink",
                    conditions=(Condition("GeneID", ">", cutoff),),
                ),
                enrich_links=False,
            )
        assert (
            len(cached_mediator._result_cache)
            <= Mediator.RESULT_CACHE_SIZE
        )
