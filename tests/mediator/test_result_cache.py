"""Tests for the version-keyed query result cache and the shared
fetch-path caches (enrichment indexes, symbol indexes) that ride on the
same invalidation scheme."""

import pytest

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.base import NativeCondition
from repro.sources.locuslink import LocusRecord
from repro.sources.omim import OmimRecord
from repro.wrappers import default_wrappers


def disease_query():
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(LinkConstraint("OMIM", "include", via="DiseaseID"),),
    )


@pytest.fixture()
def cached_mediator(corpus):
    mediator = Mediator()
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator


class TestCacheHits:
    def test_repeat_query_returns_cached_object(self, cached_mediator):
        first = cached_mediator.query(disease_query(), enrich_links=False)
        second = cached_mediator.query(disease_query(), enrich_links=False)
        assert second is first

    def test_different_query_misses(self, cached_mediator):
        first = cached_mediator.query(disease_query(), enrich_links=False)
        other = cached_mediator.query(
            GlobalQuery(
                anchor_source="LocusLink",
                conditions=(Condition("Species", "=", "Homo sapiens"),),
            ),
            enrich_links=False,
        )
        assert other is not first

    def test_enrichment_flag_is_part_of_the_key(self, cached_mediator):
        lean = cached_mediator.query(disease_query(), enrich_links=False)
        rich = cached_mediator.query(disease_query(), enrich_links=True)
        assert rich is not lean

    def test_use_cache_false_bypasses(self, cached_mediator):
        first = cached_mediator.query(disease_query(), enrich_links=False)
        fresh = cached_mediator.query(
            disease_query(), enrich_links=False, use_cache=False
        )
        assert fresh is not first


class TestFreshness:
    def test_source_update_invalidates(self, cached_mediator, corpus):
        first = cached_mediator.query(disease_query(), enrich_links=False)
        mim = corpus.omim.mim_numbers()[0]
        new_locus = LocusRecord(
            locus_id=955555,
            organism="Homo sapiens",
            symbol="CACHE1",
            omim_ids=[mim],
        )
        corpus.locuslink.add(new_locus)
        try:
            second = cached_mediator.query(
                disease_query(), enrich_links=False
            )
            assert second is not first
            assert 955555 in second.gene_ids()
        finally:
            corpus.locuslink.remove(955555)
        third = cached_mediator.query(disease_query(), enrich_links=False)
        assert 955555 not in third.gene_ids()

    def test_cache_bounded(self, cached_mediator):
        for cutoff in range(Mediator.RESULT_CACHE_SIZE + 8):
            cached_mediator.query(
                GlobalQuery(
                    anchor_source="LocusLink",
                    conditions=(Condition("GeneID", ">", cutoff),),
                ),
                enrich_links=False,
            )
        assert (
            len(cached_mediator._result_cache)
            <= Mediator.RESULT_CACHE_SIZE
        )


@pytest.fixture()
def private_federation():
    """A corpus + mediator no other test shares, safe to mutate."""
    corpus = AnnotationCorpus.generate(
        seed=7,
        parameters=CorpusParameters(loci=60, go_terms=40, omim_entries=20),
    )
    mediator = Mediator()
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return corpus, mediator


class TestFetchPathFreshness:
    """The enrichment/symbol caches and the source equality indexes are
    keyed on source versions: a repeat query over unchanged sources is
    served from cache, and any mutation invalidates everything."""

    def test_repeat_enriched_query_hits_enrichment_cache(
        self, private_federation
    ):
        _corpus, mediator = private_federation
        first = mediator.query(
            disease_query(), enrich_links=True, use_cache=False
        )
        repeat = mediator.query(
            disease_query(), enrich_links=True, use_cache=False
        )
        assert first.gene_ids() == repeat.gene_ids()
        assert repeat.stats.enrichment_cache_hits > 0
        # The repeat needed no batched detail fetch: the translated
        # index was served whole from the mediator's cache.
        assert repeat.stats.batched_fetches == 0

    def test_link_source_update_misses_enrichment_cache(
        self, private_federation
    ):
        corpus, mediator = private_federation
        mediator.query(disease_query(), enrich_links=True, use_cache=False)
        warmed = mediator.query(
            disease_query(), enrich_links=True, use_cache=False
        )
        assert warmed.stats.enrichment_cache_hits > 0
        corpus.omim.add(
            OmimRecord(mim_number=699001, title="Synthetic syndrome")
        )
        fresh = mediator.query(
            disease_query(), enrich_links=True, use_cache=False
        )
        assert fresh.stats.enrichment_cache_hits == 0
        rewarmed = mediator.query(
            disease_query(), enrich_links=True, use_cache=False
        )
        assert rewarmed.stats.enrichment_cache_hits > 0

    def test_anchor_update_visible_through_indexed_path(
        self, private_federation
    ):
        corpus, mediator = private_federation
        mim = corpus.omim.mim_numbers()[0]
        first = mediator.query(disease_query(), enrich_links=True)
        assert 91111 not in first.gene_ids()
        corpus.locuslink.add(
            LocusRecord(
                locus_id=91111,
                organism="Homo sapiens",
                symbol="FRESH1",
                omim_ids=[mim],
            )
        )
        second = mediator.query(disease_query(), enrich_links=True)
        assert second is not first
        assert 91111 in second.gene_ids()

    def test_source_index_invalidated_by_mutation(self, private_federation):
        corpus, _mediator = private_federation
        store = corpus.locuslink
        condition = [NativeCondition("Symbol", "=", "FRESH2")]
        assert store.native_query(condition, use_index=True) == []
        store.add(
            LocusRecord(
                locus_id=92222, organism="Homo sapiens", symbol="FRESH2"
            )
        )
        [record] = store.native_query(condition, use_index=True)
        assert record["LocusID"] == 92222
        store.remove(92222)
        assert store.native_query(condition, use_index=True) == []

    def test_unregister_purges_fetch_cache(self, private_federation):
        _corpus, mediator = private_federation
        mediator.query(disease_query(), enrich_links=True, use_cache=False)
        assert any(
            key[1] == "OMIM" for key in mediator._fetch_cache
        )
        mediator.unregister_source("OMIM")
        assert not any(
            key[1] == "OMIM" for key in mediator._fetch_cache
        )
