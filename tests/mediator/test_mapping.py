"""Tests for the mapping module: MDSM-driven correspondences and
translation."""

import pytest

from repro.mediator import GlobalSchema, MappingModule, TransformRegistry
from repro.util.errors import ConfigurationError, IntegrationError
from repro.wrappers import LocusLinkWrapper, OmimWrapper

#: The expected correspondences for all four sources — the matching
#: ground truth the MDSM ablation benchmark also scores against.
EXPECTED_LOCUSLINK = {
    "LocusID": "GeneID",
    "Organism": "Species",
    "Symbol": "GeneSymbol",
    "Description": "Definition",
    "Position": "MapPosition",
    "Alias": "AliasSymbol",
    "GoID": "AnnotationID",
    "OmimID": "DiseaseID",
    "PubmedID": "CitationID",
}

EXPECTED_GO = {
    "GoID": "AnnotationID",
    "Name": "Title",
    "Namespace": "Aspect",
    "Definition": "Definition",
    "IsA": "ParentTerm",
    "Synonym": "AliasSymbol",
    "Obsolete": "Obsolete",
}

EXPECTED_OMIM = {
    "MimNumber": "DiseaseID",
    "Title": "Title",
    "GeneSymbol": "GeneSymbol",
    "Text": "Definition",
    "Inheritance": "Inheritance",
}

EXPECTED_PUBMED = {
    "Pmid": "CitationID",
    "Title": "Title",
    "Journal": "Journal",
    "Year": "Year",
    "LocusID": "GeneID",
}


class TestGlobalSchema:
    def test_vocabulary_lookup(self):
        schema = GlobalSchema()
        assert "GeneSymbol" in schema
        assert schema.get("GeneSymbol").name == "GeneSymbol"
        assert schema.get("Nope") is None

    def test_names_unique(self):
        schema = GlobalSchema()
        assert len(set(schema.names())) == len(schema)


class TestMdsmCorrespondences:
    def test_locuslink_fully_matched(self, corpus):
        module = MappingModule()
        result = module.register_wrapper(LocusLinkWrapper(corpus.locuslink))
        found = {c.local_name: c.global_name for c in result}
        assert found == EXPECTED_LOCUSLINK

    def test_go_fully_matched(self, mediator):
        found = {
            c.local_name: c.global_name
            for c in mediator.correspondences("GO")
        }
        assert found == EXPECTED_GO

    def test_omim_fully_matched(self, mediator):
        found = {
            c.local_name: c.global_name
            for c in mediator.correspondences("OMIM")
        }
        assert found == EXPECTED_OMIM

    def test_pubmed_fully_matched(self, corpus):
        from repro.wrappers import PubmedLikeWrapper

        module = MappingModule()
        result = module.register_wrapper(
            PubmedLikeWrapper(corpus.make_citation_store(40))
        )
        found = {c.local_name: c.global_name for c in result}
        assert found == EXPECTED_PUBMED

    def test_double_registration_rejected(self, corpus):
        module = MappingModule()
        module.register_wrapper(LocusLinkWrapper(corpus.locuslink))
        with pytest.raises(IntegrationError):
            module.register_wrapper(LocusLinkWrapper(corpus.locuslink))

    def test_sources_providing(self, mediator):
        providers = mediator.mapping_module.sources_providing("Definition")
        assert set(providers) == {"LocusLink", "GO", "OMIM"}
        assert mediator.mapping_module.sources_providing("Journal") == []


class TestTranslation:
    def test_record_rekeyed_to_global(self, corpus):
        module = MappingModule()
        wrapper = LocusLinkWrapper(corpus.locuslink)
        module.register_wrapper(wrapper)
        record = corpus.locuslink.records()[0]
        translated = module.translate_record("LocusLink", record, wrapper)
        assert translated["GeneID"] == record["LocusID"]
        assert translated["GeneSymbol"] == record["Symbol"]
        assert translated["Species"] == record["Organism"]

    def test_label_lookup_errors(self, corpus):
        module = MappingModule()
        module.register_wrapper(LocusLinkWrapper(corpus.locuslink))
        with pytest.raises(IntegrationError):
            module.to_local_label("LocusLink", "Journal")
        with pytest.raises(IntegrationError):
            module.to_local_label("Unknown", "GeneID")

    def test_transform_rule_applied(self, corpus):
        module = MappingModule()
        wrapper = OmimWrapper(corpus.omim)
        module.register_wrapper(wrapper)
        module.add_transform_rule("OMIM", "GeneSymbol", "uppercase")
        linked = next(
            record
            for record in corpus.omim.records()
            if record["GeneSymbols"]
        )
        translated = module.translate_record("OMIM", linked, wrapper)
        assert all(
            symbol == symbol.upper()
            for symbol in translated["GeneSymbol"]
        )


class TestTransformRegistry:
    def test_defaults_present(self):
        registry = TransformRegistry()
        assert registry.apply("uppercase", "fosb") == "FOSB"
        assert registry.apply("to_integer", "42") == 42

    def test_custom_registration(self):
        registry = TransformRegistry()
        registry.register("double", lambda value: value * 2)
        assert registry.apply("double", 3) == 6

    def test_unknown_transform_rejected(self):
        registry = TransformRegistry()
        with pytest.raises(ConfigurationError):
            registry.get("quantum")

    def test_non_callable_rejected(self):
        registry = TransformRegistry()
        with pytest.raises(ConfigurationError):
            registry.register("bad", 42)
