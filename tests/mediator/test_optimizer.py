"""Tests for the multi-source optimizer."""

import pytest

from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    Optimizer,
    OptimizerOptions,
    QueryDecomposer,
)
from repro.mediator.decompose import Condition


def plan_for(mediator, query, **option_kwargs):
    decomposer = QueryDecomposer(mediator.mapping_module)
    optimizer = Optimizer(
        {name: mediator.wrapper(name) for name in mediator.sources()},
        OptimizerOptions(**option_kwargs),
    )
    return optimizer.plan(decomposer.decompose(query))


def query_with_conditions():
    return GlobalQuery(
        anchor_source="LocusLink",
        conditions=(
            Condition("Species", "=", "Homo sapiens"),
            Condition("Definition", "contains", "kinase"),
        ),
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(Condition("Aspect", "=", "molecular_function"),),
            ),
            LinkConstraint("OMIM", "exclude", via="DiseaseID"),
        ),
    )


class TestPushdown:
    def test_supported_conditions_pushed(self, mediator):
        plan = plan_for(mediator, query_with_conditions())
        assert ("Organism", "=", "Homo sapiens") in plan.anchor.pushed
        assert ("Description", "contains", "kinase") in plan.anchor.pushed
        assert plan.anchor.residual == ()

    def test_unsupported_condition_stays_residual(self, mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("Definition", "=", "exact text"),),
        )
        plan = plan_for(mediator, query)
        assert plan.anchor.pushed == ()
        assert plan.anchor.residual == (
            ("Description", "=", "exact text"),
        )

    def test_pushdown_disabled_makes_everything_residual(self, mediator):
        plan = plan_for(
            mediator, query_with_conditions(), enable_pushdown=False
        )
        assert plan.anchor.pushed == ()
        assert len(plan.anchor.residual) == 2


class TestPruning:
    def test_unconditional_link_pruned(self, mediator):
        plan = plan_for(mediator, query_with_conditions())
        omim_step = next(
            step for step in plan.link_steps if step.source_name == "OMIM"
        )
        assert omim_step.pruned
        assert omim_step.estimated_rows == 0

    def test_conditioned_link_not_pruned(self, mediator):
        plan = plan_for(mediator, query_with_conditions())
        go_step = next(
            step for step in plan.link_steps if step.source_name == "GO"
        )
        assert not go_step.pruned

    def test_symbol_join_prevents_pruning(self, mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "OMIM", "exclude", via="DiseaseID", symbol_join=True
                ),
            ),
        )
        plan = plan_for(mediator, query)
        assert not plan.link_steps[0].pruned

    def test_pruning_disabled(self, mediator):
        plan = plan_for(
            mediator, query_with_conditions(), enable_pruning=False
        )
        assert all(not step.pruned for step in plan.link_steps)


class TestOrderingAndCost:
    def test_links_ordered_by_estimated_rows(self, mediator):
        plan = plan_for(
            mediator, query_with_conditions(), enable_pruning=False
        )
        estimates = [step.estimated_rows for step in plan.link_steps]
        assert estimates == sorted(estimates)

    def test_cost_reflects_pruning(self, mediator):
        optimized = plan_for(mediator, query_with_conditions())
        unoptimized = plan_for(
            mediator,
            query_with_conditions(),
            enable_pruning=False,
            enable_pushdown=False,
        )
        assert optimized.estimated_cost < unoptimized.estimated_cost

    def test_explain_mentions_decisions(self, mediator):
        plan = plan_for(mediator, query_with_conditions())
        text = plan.explain()
        assert "push down" in text
        assert "PRUNED" in text
        assert "LocusLink" in text


class TestValidation:
    def test_missing_anchor_rejected(self, mediator):
        from repro.util.errors import ConfigurationError

        optimizer = Optimizer(
            {name: mediator.wrapper(name) for name in mediator.sources()}
        )
        with pytest.raises(ConfigurationError):
            optimizer.plan([])
