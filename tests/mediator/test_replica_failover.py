"""Replica failover: a dead replica fails over to a sibling *before*
the federation policy ever degrades the source.

Fault injection goes through :class:`FlakyWrapper` decorating
individual replicas of a :class:`ReplicaSet` — the failure composition
order under test is ``replica failover → per-request retries → shard
merge → policy``.
"""

import pytest

from repro.mediator import (
    FederationPolicy,
    FlakyWrapper,
    GlobalQuery,
    LinkConstraint,
    Mediator,
    ReplicaSet,
)
from repro.mediator.decompose import Condition
from repro.mediator.fetch import FetchRequest
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.shard import ShardedSource
from repro.util.errors import IntegrationError
from repro.wrappers import GoWrapper, LocusLinkWrapper, OmimWrapper


@pytest.fixture(scope="module")
def corpus():
    return AnnotationCorpus.generate(
        seed=47,
        parameters=CorpusParameters(
            loci=80, go_terms=50, omim_entries=25, conflict_rate=0.2
        ),
    )


QUERY = GlobalQuery(
    anchor_source="LocusLink",
    links=(
        LinkConstraint(
            "GO",
            "include",
            via="AnnotationID",
            conditions=(Condition("Aspect", "=", "molecular_function"),),
        ),
        LinkConstraint("OMIM", "exclude", via="DiseaseID"),
    ),
)


def build_mediator(corpus, policy=None, go_flaky=(), shards=1):
    """A three-source federation whose GO source is a two-replica set;
    ``go_flaky`` maps replica index -> FlakyWrapper kwargs."""
    mediator = Mediator(federation=policy or FederationPolicy())
    go_flaky = dict(go_flaky)

    def go_stores():
        if shards > 1:
            return ShardedSource(corpus.go, shards)
        return corpus.go

    mediator.register_wrapper(LocusLinkWrapper(corpus.locuslink))
    replicas = []
    for index in range(2):
        wrapper = GoWrapper(go_stores())
        if index in go_flaky:
            wrapper = FlakyWrapper(wrapper, **go_flaky[index])
        replicas.append(wrapper)
    mediator.register_replicas(replicas)
    mediator.register_wrapper(OmimWrapper(corpus.omim))
    return mediator


class TestReplicaSetUnit:
    def test_needs_at_least_one_replica(self):
        with pytest.raises(ValueError):
            ReplicaSet([])

    def test_rejects_mixed_sources(self, corpus):
        with pytest.raises(ValueError):
            ReplicaSet(
                [GoWrapper(corpus.go), OmimWrapper(corpus.omim)]
            )

    def test_delegates_identity_to_primary(self, corpus):
        replica_set = ReplicaSet(
            [GoWrapper(corpus.go), GoWrapper(corpus.go)]
        )
        assert replica_set.name == "GO"
        assert replica_set.replica_count == 2
        assert replica_set.version == corpus.go.version
        assert replica_set.trace_attributes()["replicas"] == 2
        # Duck-typed wrapper surface reaches the primary.
        assert replica_set.supports("GoID", "=")

    def test_preferred_replica_spreads_the_shard_grid(self, corpus):
        replica_set = ReplicaSet(
            [GoWrapper(corpus.go), GoWrapper(corpus.go)]
        )
        whole = FetchRequest((), purpose="test")
        assert replica_set.preferred_replica(whole) == 0
        pinned = [
            FetchRequest((), purpose="test", shard=(index, 4))
            for index in range(4)
        ]
        placements = [
            replica_set.preferred_replica(request) for request in pinned
        ]
        assert placements == [0, 1, 0, 1]

    def test_failover_rotates_and_counts(self, corpus):
        dead = FlakyWrapper(GoWrapper(corpus.go), blackout=True)
        alive = GoWrapper(corpus.go)
        replica_set = ReplicaSet([dead, alive])
        request = FetchRequest((), purpose="test")
        records = replica_set.fetch(request)
        assert len(records) == corpus.go.count()
        assert replica_set.failover_count() == 1
        assert dead.failures == 1

    def test_raises_only_after_every_replica_failed(self, corpus):
        replica_set = ReplicaSet(
            [
                FlakyWrapper(GoWrapper(corpus.go), blackout=True),
                FlakyWrapper(GoWrapper(corpus.go), blackout=True),
            ]
        )
        with pytest.raises(ConnectionError):
            replica_set.fetch(FetchRequest((), purpose="test"))
        # The last replica's failure is terminal, not a failover.
        assert replica_set.failover_count() == 1


class TestFederatedFailover:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_dead_primary_fails_over_before_degrading(self, corpus,
                                                      shards):
        healthy = build_mediator(corpus, shards=shards)
        baseline = healthy.query(QUERY, enrich_links=False)

        mediator = build_mediator(
            corpus, go_flaky={0: dict(blackout=True)}, shards=shards
        )
        result = mediator.query(QUERY, enrich_links=False)
        assert result.gene_ids() == baseline.gene_ids()
        assert result.genes == baseline.genes
        assert result.report.ok
        assert result.report.degraded == ()
        assert result.stats.replica_failovers > 0

    def test_failover_under_degrading_policy_stays_complete(self,
                                                            corpus):
        mediator = build_mediator(
            corpus,
            policy=FederationPolicy(on_failure="degrade"),
            go_flaky={0: dict(blackout=True)},
        )
        result = mediator.query(QUERY, enrich_links=False)
        assert result.report.ok
        assert result.stats.replica_failovers > 0
        assert result.stats.degraded_sources == []

    def test_all_replicas_dead_degrades_the_source(self, corpus):
        mediator = build_mediator(
            corpus,
            policy=FederationPolicy(on_failure="degrade"),
            go_flaky={
                0: dict(blackout=True),
                1: dict(blackout=True),
            },
        )
        result = mediator.query(QUERY, enrich_links=False)
        assert result.report.degraded == ("GO",)

    def test_all_replicas_dead_aborts_under_raise_policy(self, corpus):
        mediator = build_mediator(
            corpus,
            go_flaky={
                0: dict(blackout=True),
                1: dict(blackout=True),
            },
        )
        with pytest.raises(IntegrationError) as excinfo:
            mediator.query(QUERY, enrich_links=False)
        assert "'GO'" in str(excinfo.value)

    def test_transient_primary_failure_recovers(self, corpus):
        # The first GO call dies, every later one succeeds: exactly one
        # failover, never a degradation, across repeat queries.
        mediator = build_mediator(
            corpus, go_flaky={0: dict(fail_first=1)}
        )
        first = mediator.query(QUERY, enrich_links=False)
        assert first.report.ok
        assert first.stats.replica_failovers == 1
        repeat = mediator.query(QUERY, enrich_links=False, use_cache=False)
        assert repeat.report.ok
        assert repeat.stats.replica_failovers == 0
        assert repeat.gene_ids() == first.gene_ids()


class TestNoPoisoning:
    def test_failover_answer_is_safe_to_cache(self, corpus):
        mediator = build_mediator(
            corpus, go_flaky={0: dict(blackout=True)}
        )
        first = mediator.query(QUERY, enrich_links=False)
        assert first.report.ok
        # The cached replay serves the same complete answer.
        cached = mediator.query(QUERY, enrich_links=False)
        assert cached.from_result_cache
        assert cached.gene_ids() == first.gene_ids()

    def test_degraded_run_never_stores_the_whole_answer_artifact(
        self, corpus
    ):
        from repro.mediator.artifacts import ArtifactStore

        artifacts = ArtifactStore()
        flaky = FlakyWrapper(GoWrapper(corpus.go), blackout=True)
        mediator = Mediator(
            federation=FederationPolicy(on_failure="degrade"),
            artifacts=artifacts,
        )
        mediator.register_wrapper(LocusLinkWrapper(corpus.locuslink))
        mediator.register_replicas([flaky, FlakyWrapper(
            GoWrapper(corpus.go), blackout=True
        )])
        mediator.register_wrapper(OmimWrapper(corpus.omim))
        degraded = mediator.query(QUERY, enrich_links=False,
                                  use_cache=False)
        assert degraded.report.degraded == ("GO",)

        # Heal every replica: the same query (same source versions,
        # so the same artifact keys) must now produce the complete
        # answer — a poisoned whole-answer artifact would replay the
        # degraded one.
        flaky.blackout = False
        for wrapper in mediator.wrapper("GO").replicas:
            wrapper.blackout = False
        healed = mediator.query(QUERY, enrich_links=False,
                                use_cache=False)
        assert healed.report.ok
        reference = build_mediator(corpus).query(
            QUERY, enrich_links=False
        )
        assert healed.gene_ids() == reference.gene_ids()
