"""The unified ExecutionReport exposed as ``IntegratedResult.report``."""

import pytest

from repro.mediator import GlobalQuery, LinkConstraint
from repro.mediator.decompose import Condition
from repro.mediator.executor import ExecutionReport, SourceReport

QUERY = GlobalQuery(
    anchor_source="LocusLink",
    links=(
        LinkConstraint(
            "GO",
            "include",
            via="AnnotationID",
            conditions=(Condition("Aspect", "=", "molecular_function"),),
        ),
    ),
)


@pytest.fixture()
def result(mediator):
    return mediator.query(QUERY)


class TestUnifiedAccounting:
    def test_report_is_an_execution_report(self, result):
        assert isinstance(result.report, ExecutionReport)

    def test_counters_reachable_through_the_report(self, result):
        report = result.report
        assert report.total_rows_fetched() > 0
        assert report.index_hits + report.scan_fetches > 0
        assert report.wall_seconds > 0
        assert report.retries == 0
        assert report.timeouts == 0

    def test_per_source_reports(self, result):
        sources = result.report.sources
        assert "LocusLink" in sources
        assert "GO" in sources
        for report in sources.values():
            assert isinstance(report, SourceReport)
            assert report.status == "ok"
            assert report.fetches >= 1
            assert report.attempts >= report.fetches
            assert report.seconds >= 0

    def test_clean_run_is_ok_with_no_degradation(self, result):
        assert result.report.ok
        assert result.report.degraded == ()

    def test_reconciliation_nested_under_the_report(self, result):
        assert result.report.reconciliation is result.reconciliation

    def test_describe_renders_every_source(self, result):
        text = result.report.describe()
        assert "execution report:" in text
        assert "LocusLink" in text and "GO" in text
        assert "retries 0" in text

    def test_unknown_attribute_still_raises(self, result):
        with pytest.raises(AttributeError):
            result.report.no_such_counter


class TestDeprecatedAccess:
    def test_stats_alias_still_works(self, result):
        assert result.stats.total_rows_fetched() == (
            result.report.total_rows_fetched()
        )

    def test_reconciliation_delegation_is_gone(self, result):
        # The deprecated count/repaired_count/render delegation was
        # removed: reconciliation conflicts live only on
        # result.reconciliation now.
        for method in ("count", "repaired_count", "render"):
            with pytest.raises(AttributeError):
                getattr(result.report, method)
        assert result.reconciliation.count() >= 0
