"""Tests for the content-addressed stage artifact cache.

Three contracts pinned here:

1. **Key stability** — ``stage_key`` is a pure content hash: equal
   inputs agree across processes (and hash seeds), every
   distinguishing input changes it, and unsupported types are
   rejected rather than silently repr-hashed.
2. **Store behaviour** — memory LRU, disk tier with digest gating
   (corruption warns and recomputes), source-tag invalidation.
3. **Executor integration** — a repeated query over an
   :class:`ArtifactStore`-equipped mediator reuses finished stages
   (``artifact_hits > 0``, identical answers), while version bumps
   and source re-registration miss stale artifacts.
"""

import subprocess
import sys

import pytest

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.artifacts import (
    ARTIFACT_SUFFIX,
    ArtifactStore,
    stage_key,
)
from repro.mediator.decompose import Condition
from repro.wrappers import default_wrappers


def _flagship_query():
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint("GO", "include", via="AnnotationID"),
            LinkConstraint("OMIM", "exclude", via="DiseaseID"),
        ),
    )


def _mediator(corpus, artifacts=None):
    mediator = Mediator(artifacts=artifacts)
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator


PINNED_KEY_ARGS = dict(
    source="LocusLink",
    version=3,
    conditions=(Condition("Organism", "=", "Homo sapiens"),),
    upstream=((("GO", 2), (1, 2, 3)),),
    extra=("include", True),
)

#: The digest the recipe produced when this test was written.  If this
#: assertion ever fails, the key recipe changed shape — bump
#: ARTIFACT_SCHEMA so old artifacts can never be misread.
PINNED_DIGEST = (
    "e427c0eaca564170cefc5f68ed27a27434c68d6c03d64aed9d6dcd4e31350e22"
)


class TestStageKey:
    def test_pinned_digest(self):
        assert stage_key("reconcile", **PINNED_KEY_ARGS) == PINNED_DIGEST

    def test_stable_across_processes_and_hash_seeds(self):
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.mediator.artifacts import stage_key\n"
            "from repro.mediator.decompose import Condition\n"
            "print(stage_key('reconcile', source='LocusLink', version=3,"
            " conditions=(Condition('Organism', '=', 'Homo sapiens'),),"
            " upstream=((('GO', 2), (1, 2, 3)),),"
            " extra=('include', True)))\n"
        )
        for seed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PATH": ""},
                check=True,
            )
            assert out.stdout.strip() == PINNED_DIGEST

    def test_every_component_distinguishes(self):
        base = stage_key("reconcile", **PINNED_KEY_ARGS)
        assert stage_key("enrichment", **PINNED_KEY_ARGS) != base
        for field, changed in [
            ("source", "GO"),
            ("version", 4),
            ("conditions", ()),
            ("upstream", ()),
            ("extra", ("exclude", True)),
        ]:
            args = dict(PINNED_KEY_ARGS)
            args[field] = changed
            assert stage_key("reconcile", **args) != base, field

    def test_condition_objects_normalize_to_triples(self):
        as_object = stage_key(
            "anchor", conditions=(Condition("Symbol", "=", "TP53"),)
        )
        as_triple = stage_key(
            "anchor", conditions=(("Symbol", "=", "TP53"),)
        )
        assert as_object == as_triple

    def test_unsupported_types_rejected(self):
        with pytest.raises(TypeError):
            stage_key("anchor", extra=(object(),))


class TestMemoryTier:
    def test_put_get_round_trip(self):
        store = ArtifactStore()
        size = store.put("k1", {"rows": [1, 2]}, sources=("GO",))
        assert size > 0
        payload, got_size = store.get("k1")
        assert payload == {"rows": [1, 2]}
        assert got_size == size

    def test_miss_returns_none_and_counts(self):
        store = ArtifactStore()
        assert store.get("absent") is None
        assert store.stats()["misses"] == 1

    def test_lru_evicts_oldest_and_hits_refresh(self):
        store = ArtifactStore(max_entries=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") is not None  # refresh: "b" is now oldest
        store.put("c", 3)
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.get("c") is not None

    def test_invalidate_source_drops_tagged_entries(self):
        store = ArtifactStore()
        store.put("a", 1, sources=("GO", "LocusLink"))
        store.put("b", 2, sources=("OMIM",))
        assert store.invalidate_source("GO") == 1
        assert store.get("a") is None
        assert store.get("b") is not None

    def test_live_put_shares_by_reference_without_pickling(self):
        store = ArtifactStore()
        payload = {"callback": lambda: None}  # not even picklable
        assert store.put("k", payload, live=True) == 0
        got, size = store.get("k")
        assert got is payload
        assert size == 0

    def test_invalidate_source_drops_live_entries(self):
        store = ArtifactStore()
        store.put("k", {"x": 1}, sources=("GO",), live=True)
        assert store.invalidate_source("GO") == 1
        assert store.get("k") is None


class TestDiskTier:
    def test_survives_a_fresh_store(self, tmp_path):
        ArtifactStore(directory=tmp_path).put(
            "k1", {"x": 1}, sources=("GO",)
        )
        reopened = ArtifactStore(directory=tmp_path)
        payload, _size = reopened.get("k1")
        assert payload == {"x": 1}
        assert reopened.stats()["hits"] == 1

    def test_corrupted_artifact_warns_and_recomputes(self, tmp_path):
        store = ArtifactStore(directory=tmp_path)
        store.put("k1", {"x": 1})
        path = tmp_path / f"k1{ARTIFACT_SUFFIX}"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte: digest gate must trip
        path.write_bytes(bytes(data))
        cold = ArtifactStore(directory=tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupted"):
            assert cold.get("k1") is None
        assert cold.stats()["misses"] == 1

    def test_truncated_artifact_is_a_miss(self, tmp_path):
        store = ArtifactStore(directory=tmp_path)
        store.put("k1", list(range(100)))
        path = tmp_path / f"k1{ARTIFACT_SUFFIX}"
        path.write_bytes(path.read_bytes()[:10])
        with pytest.warns(RuntimeWarning):
            assert ArtifactStore(directory=tmp_path).get("k1") is None

    def test_invalidate_source_unlinks_tagged_files(self, tmp_path):
        store = ArtifactStore(directory=tmp_path)
        store.put("a", 1, sources=("GO",))
        store.put("b", 2, sources=("OMIM",))
        fresh = ArtifactStore(directory=tmp_path)  # memory tier empty
        assert fresh.invalidate_source("GO") == 1
        assert not (tmp_path / f"a{ARTIFACT_SUFFIX}").exists()
        assert (tmp_path / f"b{ARTIFACT_SUFFIX}").exists()

    def test_live_put_with_disk_still_round_trips(self, tmp_path):
        store = ArtifactStore(directory=tmp_path)
        payload = {"genes": [1, 2]}
        assert store.put("k", payload, live=True) > 0
        got, _size = store.get("k")
        assert got is payload  # memory tier hands back the object
        reread, _size = ArtifactStore(directory=tmp_path).get("k")
        assert reread == payload
        assert reread is not payload  # disk tier unpickles a copy


class TestExecutorIntegration:
    def test_repeated_query_hits_artifacts(self, corpus):
        mediator = _mediator(corpus, artifacts=ArtifactStore())
        query = _flagship_query()
        cold = mediator.query(query, use_cache=False)
        assert cold.stats.artifact_hits == 0
        assert cold.stats.artifact_misses > 0
        warm = mediator.query(query, use_cache=False)
        assert warm.stats.artifact_hits > 0
        assert warm.stats.artifact_misses == 0
        assert warm.gene_ids() == cold.gene_ids()

    def test_artifacts_change_no_answers(self, corpus):
        plain = _mediator(corpus)
        cached = _mediator(corpus, artifacts=ArtifactStore())
        query = _flagship_query()
        expected = plain.query(query, use_cache=False).gene_ids()
        assert cached.query(query, use_cache=False).gene_ids() == expected
        assert cached.query(query, use_cache=False).gene_ids() == expected

    def test_version_bump_misses_stale_artifacts(self):
        """A mutated source changes its version counter, so every
        stage key over it changes — its stale artifacts are
        unreachable and the stages recompute against live data."""
        from repro.sources.corpus import AnnotationCorpus, CorpusParameters
        from repro.sources.omim import OmimRecord

        private = AnnotationCorpus.generate(
            seed=41,
            parameters=CorpusParameters(
                loci=80, go_terms=50, omim_entries=25
            ),
        )
        mediator = _mediator(private, artifacts=ArtifactStore())
        query = _flagship_query()
        mediator.query(query, use_cache=False)
        warm = mediator.query(query, use_cache=False)
        assert warm.stats.artifact_misses == 0
        private.omim.add(
            OmimRecord(mim_number=999999, title="synthetic delta")
        )
        bumped = mediator.query(query, use_cache=False)
        assert bumped.stats.artifact_misses > 0
        plain = _mediator(private)
        assert bumped.gene_ids() == plain.query(
            query, use_cache=False
        ).gene_ids()

    def test_reregistration_misses_stale_artifacts(self, corpus):
        """A re-registered source may reuse version counters; the
        unregister hook drops every artifact tagged with it."""
        from repro.sources.corpus import AnnotationCorpus, CorpusParameters

        mediator = _mediator(corpus, artifacts=ArtifactStore())
        query = _flagship_query()
        mediator.query(query, use_cache=False)
        other_corpus = AnnotationCorpus.generate(
            seed=99,
            parameters=CorpusParameters(
                loci=150, go_terms=90, omim_entries=45
            ),
        )
        replacement = next(
            wrapper
            for wrapper in default_wrappers(other_corpus)
            if wrapper.name == "OMIM"
        )
        mediator.unregister_source("OMIM")
        mediator.register_wrapper(replacement)
        rerun = mediator.query(query, use_cache=False)
        assert rerun.stats.artifact_hits == 0

    def test_disk_artifacts_survive_a_new_mediator(self, corpus, tmp_path):
        query = _flagship_query()
        first = _mediator(corpus, artifacts=ArtifactStore(directory=tmp_path))
        expected = first.query(query, use_cache=False).gene_ids()
        second = _mediator(
            corpus, artifacts=ArtifactStore(directory=tmp_path)
        )
        warm = second.query(query, use_cache=False)
        assert warm.stats.artifact_hits > 0
        assert warm.gene_ids() == expected


class TestAnswerStage:
    """The whole-answer artifact: a clean execution stores its
    constructed answer as a live payload, and an untraced repeat at
    the same source versions answers straight from the store —
    skipping fetch, reconcile and answer construction."""

    def test_warm_repeat_skips_every_stage(self, corpus):
        mediator = _mediator(corpus, artifacts=ArtifactStore())
        query = _flagship_query()
        cold = mediator.query(query, use_cache=False)
        warm = mediator.query(query, use_cache=False)
        assert warm.stats.artifact_hits == 1
        assert warm.stats.artifact_misses == 0
        # Nothing below the answer stage ran on the repeat.
        assert warm.stats.batch_rows == 0
        assert warm.stats.anchors_considered == 0
        assert warm.gene_ids() == cold.gene_ids()

    def test_projection_participates_in_the_key(self, corpus):
        """A projected repeat of the same plan must not be served the
        unprojected cached answer."""
        from repro.mediator import GlobalQuery

        mediator = _mediator(corpus, artifacts=ArtifactStore())
        full = _flagship_query()
        mediator.query(full, use_cache=False)
        projected = GlobalQuery(
            anchor_source=full.anchor_source,
            links=full.links,
            select=("GeneID",),
        )
        narrow = mediator.query(projected, use_cache=False)
        assert narrow.genes
        assert all(
            set(gene) <= {"GeneID", "_links"} for gene in narrow.genes
        )

    def test_traced_repeat_replays_the_flight(self, corpus):
        """Tracing bypasses the answer probe (like the result cache):
        a traced repeat records the full span tree, and still leaves
        the artifact behind for untraced repeats."""
        from repro.trace import TraceRecorder

        mediator = _mediator(corpus, artifacts=ArtifactStore())
        query = _flagship_query()
        mediator.query(query, use_cache=False)
        recorder = TraceRecorder()
        traced = mediator.query(
            query, use_cache=False, recorder=recorder
        )
        assert traced.trace.find("fetch") is not None
        assert traced.trace.find("reconcile") is not None

    def test_degraded_runs_are_not_reusable(self, corpus):
        """A degraded answer is missing data its source versions can
        provide — it must never be stored, so a later healthy run
        over the same store recomputes a complete answer."""
        from repro.mediator.fetch import FederationPolicy, FlakyWrapper

        store = ArtifactStore()
        flaky = Mediator(
            artifacts=store,
            federation=FederationPolicy(on_failure="degrade"),
        )
        for wrapper in default_wrappers(corpus):
            if wrapper.name == "GO":
                wrapper = FlakyWrapper(wrapper, blackout=True)
            flaky.register_wrapper(wrapper)
        query = _flagship_query()
        partial = flaky.query(query, use_cache=False)
        assert not partial.report.ok
        healthy = _mediator(corpus, artifacts=store)
        complete = healthy.query(query, use_cache=False)
        assert complete.report.ok
        # The degraded include-constraint was skipped, so the partial
        # answer is a superset; a complete recomputation narrows it.
        assert set(complete.gene_ids()) <= set(partial.gene_ids())
