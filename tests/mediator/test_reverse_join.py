"""Tests for reverse joins through the SwissProt-like protein source."""

import pytest

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.wrappers import SwissProtLikeWrapper, default_wrappers


@pytest.fixture()
def five_source_setup(corpus):
    proteins = corpus.make_protein_store(coverage=0.5, uncurated_rate=0.4)
    mediator = Mediator()
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    mediator.register_wrapper(SwissProtLikeWrapper(proteins))
    return mediator, proteins


def protein_link(mode="include", conditions=(), symbol_join=False):
    return LinkConstraint(
        "SwissProt",
        mode,
        via="ProteinID",
        conditions=conditions,
        symbol_join=symbol_join,
        reverse_join=True,
    )


class TestMdsmMapping:
    def test_protein_correspondences(self, five_source_setup):
        mediator, _proteins = five_source_setup
        found = {
            c.local_name: c.global_name
            for c in mediator.correspondences("SwissProt")
        }
        assert found == {
            "Accession": "ProteinID",
            "ProteinName": "Title",
            "Organism": "Species",
            "GeneSymbol": "GeneSymbol",
            "LocusID": "GeneID",
            "SequenceLength": "SequenceLength",
            "Keyword": "Keyword",
        }


class TestReverseJoinExecution:
    def test_curated_back_references_found(self, five_source_setup):
        mediator, proteins = five_source_setup
        query = GlobalQuery(
            anchor_source="LocusLink", links=(protein_link(),)
        )
        result = mediator.query(query, enrich_links=False)
        expected = {
            record.locus_id
            for record in proteins.all_records()
            if record.locus_id
        }
        assert set(result.gene_ids()) == expected

    def test_symbol_join_recovers_uncurated(self, five_source_setup,
                                            corpus):
        mediator, proteins = five_source_setup
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(protein_link(symbol_join=True),),
        )
        result = mediator.query(query, enrich_links=False)
        symbol_to_locus = {
            record.symbol: record.locus_id
            for record in corpus.locuslink.all_records()
        }
        expected = {
            symbol_to_locus[record.gene_symbol]
            for record in proteins.all_records()
            if record.gene_symbol in symbol_to_locus
        }
        assert set(result.gene_ids()) == expected
        # Strictly more than the curated-only join.
        curated_only = {
            record.locus_id
            for record in proteins.all_records()
            if record.locus_id
        }
        assert expected > curated_only

    def test_exclude_mode(self, five_source_setup, corpus):
        mediator, proteins = five_source_setup
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(protein_link(mode="exclude", symbol_join=True),),
        )
        result = mediator.query(query, enrich_links=False)
        included = mediator.query(
            GlobalQuery(
                anchor_source="LocusLink",
                links=(protein_link(symbol_join=True),),
            ),
            enrich_links=False,
        )
        all_loci = set(corpus.locuslink.locus_ids())
        assert set(result.gene_ids()) == all_loci - set(
            included.gene_ids()
        )

    def test_conditions_bound_reverse_and_symbol_matches(
        self, five_source_setup, corpus
    ):
        mediator, proteins = five_source_setup
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                protein_link(
                    symbol_join=True,
                    conditions=(
                        Condition("Keyword", "=", "Kinase"),
                    ),
                ),
            ),
        )
        result = mediator.query(query, enrich_links=False)
        kinase_accessions = {
            record.accession
            for record in proteins.all_records()
            if "Kinase" in record.keywords
        }
        for gene in result.genes:
            matched = set(gene["_links"]["SwissProt"])
            assert matched
            assert matched <= kinase_accessions

    def test_view_carries_protein_children(self, five_source_setup):
        mediator, _proteins = five_source_setup
        query = GlobalQuery(
            anchor_source="LocusLink", links=(protein_link(),)
        )
        result = mediator.query(query)
        graph = result.graph
        gene = graph.children(result.root, "Gene")[0]
        protein_children = graph.children(gene, "Protein")
        assert protein_children
        child = protein_children[0]
        assert graph.child_value(child, "ProteinID").startswith(
            ("O", "P", "Q")
        )
        assert graph.child_value(child, "Title") is not None
        assert graph.child_value(child, "SequenceLength") > 0

    def test_navigation_to_protein_view(self, five_source_setup):
        from repro.navigation import Navigator

        mediator, proteins = five_source_setup
        navigator = Navigator(mediator)
        accession = proteins.all_records()[0].accession
        view = navigator.follow_url(
            f"http://www.expasy.org/cgi-bin/niceprot.pl?{accession}"
        )
        assert view.source_name == "SwissProt"
        fields = dict(view.field_items())
        assert fields["Accession"] == accession


class TestPlanning:
    def test_reverse_step_never_pruned(self, five_source_setup):
        mediator, _ = five_source_setup
        plan = mediator.plan(
            GlobalQuery(
                anchor_source="LocusLink", links=(protein_link(),)
            )
        )
        assert not plan.link_steps[0].pruned

    def test_keyword_condition_pushed_down(self, five_source_setup):
        mediator, _ = five_source_setup
        plan = mediator.plan(
            GlobalQuery(
                anchor_source="LocusLink",
                links=(
                    protein_link(
                        conditions=(Condition("Keyword", "=", "Kinase"),)
                    ),
                ),
            )
        )
        assert ("Keyword", "=", "Kinase") in plan.link_steps[0].pushed

    def test_render_mentions_reverse(self):
        assert "(reverse join)" in protein_link().render()


class TestQuestionBuilderIntegration:
    def test_builder_defaults_for_swissprot(self):
        from repro.questions import QuestionBuilder

        question = (
            QuestionBuilder("genes with a kinase protein")
            .include("SwissProt")
            .where_linked("Keyword", "=", "Kinase")
            .build()
        )
        link = question.links[0]
        assert link.reverse_join
        assert link.symbol_join
        assert link.via == "ProteinID"

    def test_five_source_question(self, five_source_setup):
        from repro.questions import QuestionBuilder

        mediator, _ = five_source_setup
        question = (
            QuestionBuilder(
                "genes with a long protein and some GO annotation"
            )
            .include("GO")
            .include("SwissProt")
            .where_linked("SequenceLength", ">=", 1000)
            .build()
        )
        result = mediator.query(
            question.to_global_query(), enrich_links=False
        )
        for gene in result.genes:
            assert gene["_links"]["GO"]
            assert gene["_links"]["SwissProt"]
