"""Tests for the Mediator facade: registration lifecycle and plug-in."""

import pytest

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.util.errors import IntegrationError
from repro.wrappers import PubmedLikeWrapper, default_wrappers


class TestRegistration:
    def test_sources_in_registration_order(self, mediator):
        assert mediator.sources() == ["LocusLink", "GO", "OMIM"]

    def test_double_registration_rejected(self, mediator, corpus):
        from repro.wrappers import LocusLinkWrapper

        with pytest.raises(IntegrationError):
            mediator.register_wrapper(LocusLinkWrapper(corpus.locuslink))

    def test_unregister(self, mediator):
        mediator.unregister_source("OMIM")
        assert mediator.sources() == ["LocusLink", "GO"]
        with pytest.raises(IntegrationError):
            mediator.wrapper("OMIM")

    def test_unregister_unknown_rejected(self, mediator):
        with pytest.raises(IntegrationError):
            mediator.unregister_source("Ensembl")

    def test_unregistered_source_leaves_gml(self, mediator):
        mediator.unregister_source("OMIM")
        graph, root = mediator.gml()
        assert len(root.refs_with_label("Source")) == 2


class TestPlugInNewSource:
    """Requirement 2: a new source plugged in as it comes into existence."""

    def test_pubmed_plugs_in_live(self, mediator, corpus):
        citations = corpus.make_citation_store(count=60)
        correspondence_set = mediator.register_wrapper(
            PubmedLikeWrapper(citations)
        )
        # MDSM mapped it automatically.
        assert correspondence_set.to_global("Pmid") == "CitationID"
        # It appears in the GML immediately.
        graph, root = mediator.gml()
        names = [
            graph.child_value(source, "Name")
            for source in graph.children(root, "Source")
        ]
        assert names == ["LocusLink", "GO", "OMIM", "PubMed"]

    def test_queries_route_to_new_source(self, mediator, corpus):
        citations = corpus.make_citation_store(count=60)
        mediator.register_wrapper(PubmedLikeWrapper(citations))
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint("PubMed", "include", via="CitationID"),
            ),
        )
        result = mediator.query(query)
        expected = {
            locus_id
            for citation in citations.all_citations()
            for locus_id in citation.locus_ids
        }
        assert expected  # the corpus wires citations bidirectionally
        assert set(result.gene_ids()) == expected


class TestExplain:
    def test_explain_produces_plan_text(self, mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(LinkConstraint("GO", "include", via="AnnotationID"),),
        )
        text = mediator.explain(query)
        assert "execution plan" in text
        assert "LocusLink" in text
