"""Concurrent, fault-tolerant federation at the wrapper boundary.

Covers the :class:`FederatedFetcher` (concurrency, retry, timeout),
graceful degradation through the whole mediator stack (a blacked-out
source yields a *partial* answer instead of an exception), and
answer determinism: the same query returns oid-for-oid identical
results whether fetches run sequentially or on eight workers, with or
without injected faults.
"""

import threading

import pytest

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.mediator.fetch import (
    FederatedFetcher,
    FederationPolicy,
    FetchRequest,
    FlakyWrapper,
)
from repro.mediator.optimizer import OptimizerOptions
from repro.questions.catalog import QuestionCatalog
from repro.util import clock
from repro.util.clock import FakeClock
from repro.util.errors import IntegrationError
from repro.wrappers import default_wrappers

FIGURE5B = QuestionCatalog.figure5b().to_global_query()

SEMIJOIN_QUERY = GlobalQuery(
    anchor_source="LocusLink",
    links=(
        LinkConstraint(
            "GO",
            "include",
            via="AnnotationID",
            conditions=(Condition("Title", "contains", "kinase"),),
        ),
    ),
)

CONDITIONED_GO_QUERY = GlobalQuery(
    anchor_source="LocusLink",
    links=(
        LinkConstraint(
            "GO",
            "include",
            via="AnnotationID",
            conditions=(Condition("Aspect", "=", "molecular_function"),),
        ),
    ),
)


def _mediator(corpus, federation, flaky=None, semijoin=False):
    """A fresh federation over ``corpus``; ``flaky`` maps source name
    -> FlakyWrapper kwargs applied to that wrapper."""
    options = (
        OptimizerOptions(enable_semijoin=True)
        if semijoin
        else OptimizerOptions()
    )
    mediator = Mediator(federation=federation, optimizer_options=options)
    for wrapper in default_wrappers(corpus):
        if flaky and wrapper.name in flaky:
            wrapper = FlakyWrapper(wrapper, **flaky[wrapper.name])
        mediator.register_wrapper(wrapper)
    return mediator


def _snapshot(result):
    """An order-sensitive, oid-for-oid fingerprint of one answer."""
    objects = []
    for path, obj in result.graph.walk(result.root):
        objects.append(
            (path, obj.oid, obj.value if obj.is_atomic else None)
        )
    return tuple(result.gene_ids()), tuple(objects)


class TestFetcherConcurrency:
    def test_replies_come_back_in_job_order(self, corpus):
        wrappers = {w.name: w for w in default_wrappers(corpus)}
        fetcher = FederatedFetcher(FederationPolicy(max_workers=4))
        jobs = [
            (wrappers["LocusLink"], FetchRequest(purpose="a")),
            (wrappers["GO"], FetchRequest(purpose="b")),
            (wrappers["OMIM"], FetchRequest(purpose="c")),
        ]
        replies = fetcher.fetch_all(jobs)
        assert [reply.source for reply in replies] == [
            "LocusLink", "GO", "OMIM",
        ]
        assert all(reply.ok for reply in replies)
        fetcher.close()

    def test_jobs_actually_overlap_on_the_pool(self, corpus):
        wrapper = default_wrappers(corpus)[0]
        threads_seen = set()
        barrier = threading.Barrier(2, timeout=5)

        class _Rendezvous:
            name = wrapper.name
            source = wrapper.source

            def fetch(self, request):
                threads_seen.add(threading.current_thread().name)
                barrier.wait()  # deadlocks unless both jobs run at once
                return wrapper.fetch(request)

        rendezvous = _Rendezvous()
        fetcher = FederatedFetcher(FederationPolicy(max_workers=2))
        replies = fetcher.fetch_all(
            [(rendezvous, FetchRequest()), (rendezvous, FetchRequest())]
        )
        assert all(reply.ok for reply in replies)
        assert len(threads_seen) == 2
        fetcher.close()

    def test_single_worker_runs_inline(self, corpus):
        wrapper = default_wrappers(corpus)[0]
        fetcher = FederatedFetcher(FederationPolicy(max_workers=1))
        replies = fetcher.fetch_all(
            [(wrapper, FetchRequest()), (wrapper, FetchRequest())]
        )
        assert all(reply.ok for reply in replies)

    def test_timeout_abandons_a_hung_source(self, corpus):
        wrapper = default_wrappers(corpus)[0]
        slow = FlakyWrapper(wrapper, latency=0.5)
        policy = FederationPolicy(timeout=0.05, retries=0)
        reply = FederatedFetcher(policy).fetch(slow, FetchRequest())
        assert not reply.ok
        assert reply.status == "timeout"
        assert reply.timeouts == 1

    def test_backoff_waits_between_attempts(self, corpus):
        # The backoff goes through the clock seam, so a FakeClock
        # fast-forwards the waits: the fake clock must observe the full
        # exponential schedule while no real thread ever parks.
        wrapper = default_wrappers(corpus)[0]
        flaky = FlakyWrapper(wrapper, fail_first=2)
        policy = FederationPolicy(retries=2, backoff=0.03)
        fake = FakeClock()
        previous = clock.install(fake)
        try:
            reply = FederatedFetcher(policy).fetch(flaky, FetchRequest())
        finally:
            clock.restore(previous)
        assert reply.ok
        assert len(reply.attempts) == 3
        # backoff * (2**0 + 2**1) = 0.03 + 0.06
        assert fake.now() == pytest.approx(0.09)

    def test_retry_budget_exhausts_to_error(self, corpus):
        wrapper = default_wrappers(corpus)[0]
        flaky = FlakyWrapper(wrapper, fail_first=5)
        policy = FederationPolicy(retries=2, backoff=0.0)
        reply = FederatedFetcher(policy).fetch(flaky, FetchRequest())
        assert not reply.ok
        assert len(reply.attempts) == 3
        assert flaky.failures == 3


class TestGracefulDegradation:
    def test_default_policy_still_raises(self, corpus):
        mediator = _mediator(
            corpus, FederationPolicy(), flaky={"GO": {"blackout": True}}
        )
        with pytest.raises(IntegrationError) as excinfo:
            mediator.query(CONDITIONED_GO_QUERY, enrich_links=False)
        assert "'GO'" in str(excinfo.value)

    def test_blacked_out_link_source_degrades_to_partial_answer(
        self, corpus
    ):
        degraded = _mediator(
            corpus,
            FederationPolicy(on_failure="degrade"),
            flaky={"GO": {"blackout": True}},
        )
        result = degraded.query(CONDITIONED_GO_QUERY, enrich_links=False)
        assert result.report.degraded == ("GO",)
        assert not result.report.ok
        assert result.report.sources["GO"].status == "degraded"
        # The GO constraint was skipped, not silently satisfied: the
        # partial answer is a superset of the complete one.
        healthy = _mediator(corpus, FederationPolicy())
        complete = healthy.query(CONDITIONED_GO_QUERY, enrich_links=False)
        assert set(complete.gene_ids()) <= set(result.gene_ids())
        assert len(result) > 0

    def test_blacked_out_anchor_degrades_to_empty_answer(self, corpus):
        degraded = _mediator(
            corpus,
            FederationPolicy(on_failure="degrade"),
            flaky={"LocusLink": {"blackout": True}},
        )
        result = degraded.query(CONDITIONED_GO_QUERY, enrich_links=False)
        assert "LocusLink" in result.report.degraded
        assert len(result) == 0

    def test_blackout_window_recovers_after_retries(self, corpus):
        mediator = _mediator(
            corpus,
            FederationPolicy(retries=3, backoff=0.0),
            flaky={"GO": {"fail_first": 2}},
        )
        result = mediator.query(CONDITIONED_GO_QUERY, enrich_links=False)
        assert result.report.ok
        assert result.report.retries >= 2
        assert result.report.sources["GO"].retries >= 2

    def test_degraded_repr_mentions_the_source(self, corpus):
        degraded = _mediator(
            corpus,
            FederationPolicy(on_failure="degrade"),
            flaky={"GO": {"blackout": True}},
        )
        result = degraded.query(CONDITIONED_GO_QUERY, enrich_links=False)
        assert "degraded: GO" in repr(result)


class TestDeterminism:
    """Satellite: concurrency must not change answers — oid-for-oid."""

    @pytest.mark.parametrize("query", [FIGURE5B, SEMIJOIN_QUERY],
                             ids=["figure5b", "semijoin"])
    def test_sequential_and_concurrent_answers_identical(
        self, corpus, query
    ):
        semijoin = query is SEMIJOIN_QUERY
        sequential = _mediator(
            corpus, FederationPolicy(max_workers=1), semijoin=semijoin
        ).query(query)
        concurrent = _mediator(
            corpus, FederationPolicy(max_workers=8), semijoin=semijoin
        ).query(query)
        assert _snapshot(sequential) == _snapshot(concurrent)

    @pytest.mark.parametrize("query", [FIGURE5B, SEMIJOIN_QUERY],
                             ids=["figure5b", "semijoin"])
    def test_answers_survive_injected_faults_with_retries(
        self, corpus, query
    ):
        semijoin = query is SEMIJOIN_QUERY
        clean = _mediator(
            corpus, FederationPolicy(max_workers=8), semijoin=semijoin
        ).query(query)
        faulty = _mediator(
            corpus,
            FederationPolicy(max_workers=8, retries=4, backoff=0.0),
            flaky={
                "GO": {"fail_first": 1},
                "OMIM": {"fail_first": 1},
            },
            semijoin=semijoin,
        ).query(query)
        assert _snapshot(clean) == _snapshot(faulty)
        assert faulty.report.retries >= 1
