"""The plan IR: logical tree shape, rule reports, lowering invariants.

Locks in the three-layer planning contract:

- ``build_logical`` produces the canonical tree shape for decomposed
  subqueries (Scan/Filter/ClosureFilter per source, one join layer per
  link, Reconcile/Enrich/Project on top);
- every named optimizer rule records fired/skipped with a reason,
  under every ablation;
- logical->physical lowering preserves the (source, purpose) step
  multiset under *all* OptimizerOptions ablation combinations;
- the physical stage DAG and fingerprints stay coherent with the
  steps.
"""

from collections import Counter
from itertools import product

import pytest

from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    Mediator,
    Optimizer,
    OptimizerOptions,
    QueryDecomposer,
)
from repro.mediator.decompose import Condition
from repro.mediator.plan import (
    RULE_NAMES,
    AntiJoin,
    ClosureFilter,
    Enrich,
    Filter,
    LogicalPlan,
    PhysicalPlan,
    Project,
    Reconcile,
    RuleReport,
    Scan,
    SemiJoin,
    build_logical,
)
from repro.util.errors import ConfigurationError

from tests.mediator.test_closure import term_with_descendants


def conditioned_query():
    return GlobalQuery(
        anchor_source="LocusLink",
        conditions=(
            Condition("Species", "=", "Homo sapiens"),
            Condition("Definition", "contains", "kinase"),
        ),
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(
                    Condition("Aspect", "=", "molecular_function"),
                ),
            ),
            LinkConstraint("OMIM", "exclude", via="DiseaseID"),
        ),
    )


def selective_query():
    """Anchor unconditioned; the GO link is highly selective (the
    semijoin rule's home turf)."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(Condition("Title", "contains", "kinase"),),
            ),
        ),
    )


def symbol_join_query():
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "OMIM", "exclude", via="DiseaseID", symbol_join=True
            ),
        ),
    )


def reverse_join_query():
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "SwissProt", "include", via="ProteinID",
                reverse_join=True,
            ),
        ),
    )


@pytest.fixture()
def five_source_mediator(corpus):
    from repro.wrappers import SwissProtLikeWrapper, default_wrappers

    proteins = corpus.make_protein_store(
        coverage=0.5, uncurated_rate=0.4
    )
    mediator = Mediator()
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    mediator.register_wrapper(SwissProtLikeWrapper(proteins))
    return mediator


def closure_query(corpus):
    term = term_with_descendants(corpus)
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(Condition("AnnotationID", "under", term),),
            ),
        ),
    )


def subqueries_for(mediator, query):
    return QueryDecomposer(mediator.mapping_module).decompose(query)


def optimizer_for(mediator, options=None):
    return Optimizer(
        {name: mediator.wrapper(name) for name in mediator.sources()},
        options,
    )


class TestLogicalShape:
    def test_tree_layers_in_order(self, mediator):
        logical = build_logical(
            subqueries_for(mediator, conditioned_query())
        )
        project = logical.root
        assert isinstance(project, Project)
        enrich = project.child
        assert isinstance(enrich, Enrich)
        reconcile = enrich.child
        assert isinstance(reconcile, Reconcile)
        # Link layers are left-deep in decomposition order: the
        # topmost join is the last link (OMIM exclude).
        anti = reconcile.child
        assert isinstance(anti, AntiJoin)
        semi = anti.left
        assert isinstance(semi, SemiJoin)
        anchor_filter = semi.left
        assert isinstance(anchor_filter, Filter)
        assert isinstance(anchor_filter.child, Scan)
        assert anchor_filter.child.purpose == "anchor"

    def test_under_conditions_become_closure_filter(
        self, mediator, corpus
    ):
        logical = build_logical(
            subqueries_for(mediator, closure_query(corpus))
        )
        closures = [
            node
            for node in logical.walk()
            if isinstance(node, ClosureFilter)
        ]
        assert len(closures) == 1
        assert closures[0].conditions[0][1] == "under"

    def test_scans_match_subqueries(self, mediator):
        subqueries = subqueries_for(mediator, conditioned_query())
        logical = build_logical(subqueries)
        assert Counter(
            (scan.source_name, scan.purpose) for scan in logical.scans()
        ) == Counter(
            (sub.source_name, sub.purpose) for sub in subqueries
        )

    def test_anchor_under_rejected_at_build(self, mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(
                Condition("AnnotationID", "under", "GO:0000001"),
            ),
        )
        with pytest.raises(ConfigurationError, match="ontology link"):
            build_logical(subqueries_for(mediator, query))

    def test_no_anchor_rejected(self):
        with pytest.raises(ConfigurationError, match="no anchor"):
            build_logical([])

    def test_render_and_dict_cover_every_node(self, mediator):
        logical = build_logical(
            subqueries_for(mediator, conditioned_query())
        )
        text = logical.render()
        assert text.startswith("logical plan:")
        for node in logical.walk():
            assert node.label().split(" ")[0] in text
        as_dict = logical.to_dict()
        assert as_dict["node"] == "Project"

    def test_decomposer_shortcut(self, mediator, corpus):
        decomposer = QueryDecomposer(mediator.mapping_module)
        logical = decomposer.decompose_logical(conditioned_query())
        assert isinstance(logical, LogicalPlan)
        assert len(logical.scans()) == 3


class TestRuleReports:
    def test_every_rule_always_reports(self, mediator):
        plan = optimizer_for(mediator).plan(
            subqueries_for(mediator, conditioned_query())
        )
        assert tuple(r.rule for r in plan.rules.records) == RULE_NAMES
        for record in plan.rules.records:
            assert record.reason  # never empty

    def test_disabled_rules_record_skip_reason(self, mediator):
        options = OptimizerOptions(
            enable_pushdown=False,
            enable_pruning=False,
            enable_ordering=False,
            enable_semijoin=False,
        )
        plan = optimizer_for(mediator, options).plan(
            subqueries_for(mediator, conditioned_query())
        )
        assert plan.rules.fired() == ()
        for record in plan.rules.records:
            assert not record.fired
            assert "disabled by OptimizerOptions" in record.reason

    def test_pushdown_and_pruning_fire_on_conditioned_query(
        self, mediator
    ):
        plan = optimizer_for(mediator).plan(
            subqueries_for(mediator, conditioned_query())
        )
        assert "predicate_pushdown" in plan.rules.fired()
        assert "link_fetch_pruning" in plan.rules.fired()
        pushdown = plan.rules.record("predicate_pushdown")
        assert "pushed" in pushdown.reason

    def test_semijoin_rule_fires_on_selective_query(self, mediator):
        options = OptimizerOptions(enable_semijoin=True)
        plan = optimizer_for(mediator, options).plan(
            subqueries_for(mediator, selective_query())
        )
        assert "semijoin_anchor" in plan.rules.fired()
        assert plan.anchor.semijoin == ("GO", "GoID")
        assert plan.driver_index is not None
        driver = plan.link_steps[plan.driver_index]
        assert driver.source_name == "GO"

    def test_semijoin_skip_reason_without_selective_link(self, mediator):
        options = OptimizerOptions(enable_semijoin=True)
        unselective = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(Condition("Obsolete", "=", False),),
                ),
            ),
        )
        plan = optimizer_for(mediator, options).plan(
            subqueries_for(mediator, unselective)
        )
        record = plan.rules.record("semijoin_anchor")
        assert not record.fired
        assert "selective" in record.reason

    def test_unknown_rule_name_raises(self):
        with pytest.raises(KeyError):
            RuleReport().record("no_such_rule")


ALL_ABLATIONS = [
    OptimizerOptions(
        enable_pushdown=pushdown,
        enable_pruning=pruning,
        enable_ordering=ordering,
        enable_semijoin=semijoin,
    )
    for pushdown, pruning, ordering, semijoin in product(
        (False, True), repeat=4
    )
]


class TestLoweringInvariants:
    """Property: lowering preserves the step multiset under every
    ablation combination, for every query shape."""

    @pytest.mark.parametrize(
        "query_builder",
        [
            lambda corpus: conditioned_query(),
            lambda corpus: selective_query(),
            lambda corpus: symbol_join_query(),
            closure_query,
        ],
        ids=["conditioned", "selective", "symbol-join", "closure"],
    )
    def test_step_multiset_preserved(
        self, mediator, corpus, query_builder
    ):
        query = query_builder(corpus)
        subqueries = subqueries_for(mediator, query)
        expected = Counter(
            (sub.source_name, sub.purpose) for sub in subqueries
        )
        for options in ALL_ABLATIONS:
            optimizer = optimizer_for(mediator, options)
            logical = optimizer.build_logical(subqueries)
            assert Counter(
                (scan.source_name, scan.purpose)
                for scan in logical.scans()
            ) == expected
            optimized, rules = optimizer.optimize_logical(logical)
            plan = optimizer.lower(optimized, rules=rules)
            assert isinstance(plan, PhysicalPlan)
            assert Counter(
                (step.source_name, step.purpose)
                for step in plan.steps()
            ) == expected, f"multiset changed under {options}"

    def test_step_multiset_preserved_reverse_join(
        self, five_source_mediator
    ):
        subqueries = subqueries_for(
            five_source_mediator, reverse_join_query()
        )
        expected = Counter(
            (sub.source_name, sub.purpose) for sub in subqueries
        )
        for options in ALL_ABLATIONS:
            plan = optimizer_for(five_source_mediator, options).plan(
                subqueries
            )
            assert Counter(
                (step.source_name, step.purpose)
                for step in plan.steps()
            ) == expected
            # Reverse joins are answered from the linked source's
            # back-references: never pruned, whatever the ablation.
            assert not plan.link_steps[0].pruned

    def test_conditions_conserved_across_lowering(self, mediator):
        subqueries = subqueries_for(mediator, conditioned_query())
        by_source = {
            sub.source_name: Counter(tuple(c) for c in sub.local_conditions)
            for sub in subqueries
        }
        for options in ALL_ABLATIONS:
            plan = optimizer_for(mediator, options).plan(subqueries)
            for step in plan.steps():
                conserved = Counter(step.pushed) + Counter(step.residual)
                conserved += Counter(step.closure)
                assert conserved == by_source[step.source_name], (
                    f"conditions changed for {step.source_name} "
                    f"under {options}"
                )

    def test_anchor_always_first_and_unique(self, mediator):
        for options in ALL_ABLATIONS:
            plan = optimizer_for(mediator, options).plan(
                subqueries_for(mediator, conditioned_query())
            )
            steps = plan.steps()
            assert steps[0].purpose == "anchor"
            assert all(step.purpose == "link" for step in steps[1:])


class TestPhysicalSurface:
    def test_stage_dag_shape(self, mediator):
        plan = optimizer_for(mediator).plan(
            subqueries_for(mediator, conditioned_query())
        )
        stages = plan.stages()
        # anchor + 2 links + reconcile + enrich + answer
        assert [node.kind for node in stages] == [
            "fetch", "fetch", "fetch", "reconcile", "enrich", "answer",
        ]
        edges = set(plan.edges())
        reconcile_id = stages[3].stage_id
        for fetch in stages[:3]:
            assert (fetch.stage_id, reconcile_id) in edges

    def test_semijoin_driver_edge(self, mediator):
        options = OptimizerOptions(enable_semijoin=True)
        plan = optimizer_for(mediator, options).plan(
            subqueries_for(mediator, selective_query())
        )
        driver_id = f"s{plan.driver_index + 1}"
        assert (driver_id, "s0") in plan.edges()

    def test_describe_tells_the_whole_story(self, mediator):
        plan = optimizer_for(mediator).plan(
            subqueries_for(mediator, conditioned_query())
        )
        text = plan.describe()
        assert "logical plan:" in text
        assert "optimizer rules:" in text
        assert "execution plan" in text
        assert "physical stage DAG:" in text

    def test_to_dict_round_trips_to_json(self, mediator):
        import json

        plan = optimizer_for(mediator).plan(
            subqueries_for(mediator, conditioned_query())
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["logical"]["node"] == "Project"
        assert [r["rule"] for r in payload["rules"]] == list(RULE_NAMES)
        assert len(payload["steps"]) == 3

    def test_fingerprint_matches_legacy_encoding(self, mediator):
        plan = optimizer_for(mediator).plan(
            subqueries_for(mediator, conditioned_query())
        )
        step = plan.link_steps[0]
        fingerprint = step.fingerprint(0, 7, degraded=False)
        assert fingerprint == (
            0,
            step.source_name,
            7,
            step.link.mode,
            step.link.via,
            bool(step.link.reverse_join),
            bool(step.link.symbol_join),
            bool(step.pruned),
            tuple(step.pushed),
            tuple(step.residual),
            tuple(step.closure),
            False,
        )
        assert len(step.fingerprint(0, 7)) == len(fingerprint) - 1

    def test_anchor_stage_has_no_fingerprint(self, mediator):
        plan = optimizer_for(mediator).plan(
            subqueries_for(mediator, conditioned_query())
        )
        with pytest.raises(ValueError):
            plan.anchor.fingerprint(0, 1)


class TestDeprecatedAliases:
    def test_execution_plan_alias_warns_and_resolves(self):
        import repro.mediator as mediator_pkg
        from repro.mediator.plan import PhysicalPlan

        with pytest.warns(DeprecationWarning, match="PhysicalPlan"):
            alias = mediator_pkg.ExecutionPlan
        assert alias is PhysicalPlan

    def test_optimizer_module_aliases_warn(self):
        import repro.mediator.optimizer as optimizer_module
        from repro.mediator.plan import FetchStage, PhysicalPlan

        with pytest.warns(DeprecationWarning):
            assert optimizer_module.ExecutionPlan is PhysicalPlan
        with pytest.warns(DeprecationWarning):
            assert optimizer_module.FetchStep is FetchStage

    def test_unknown_attribute_still_raises(self):
        import repro.mediator.optimizer as optimizer_module

        with pytest.raises(AttributeError):
            optimizer_module.NoSuchName
