"""Trace thread-correctness under the fetcher pool and fault injection.

These tests hammer the recorder from the :class:`FederatedFetcher`'s
worker threads — many concurrent fetches, injected faults, degrading
and raising policies — and assert the resulting tree is well-formed
and deterministic.  They are part of the ``--racecheck`` matrix: the
recorder's only shared mutable state (the span buffer and the
sequence counter) is guarded by a lock created through the
``repro.util.locks`` seam, so the race monitor audits every access.
"""

import pytest

from repro.mediator import (
    FederatedFetcher,
    FederationPolicy,
    FetchRequest,
    FlakyWrapper,
    GlobalQuery,
    LinkConstraint,
    Mediator,
)
from repro.mediator.decompose import Condition
from repro.trace import TraceRecorder, trace_shape
from repro.util.clock import FakeClock
from repro.util.errors import IntegrationError
from repro.wrappers import default_wrappers


@pytest.fixture()
def wrappers(corpus):
    return default_wrappers(corpus)


class TestConcurrentFetchSpans:
    def test_many_concurrent_fetches_order_deterministically(
        self, wrappers
    ):
        """32 jobs on 4 workers: span order follows job order, not
        completion order."""
        locuslink, go, omim = wrappers
        fetcher = FederatedFetcher(FederationPolicy(max_workers=4))
        try:
            jobs = [
                ((locuslink, go, omim)[index % 3], FetchRequest(()))
                for index in range(32)
            ]
            recorder = TraceRecorder(clock=FakeClock(tick=1.0))
            with recorder.span("query") as root:
                replies = fetcher.fetch_all(jobs, recorder=recorder)
            assert all(reply.ok for reply in replies)
            names = [span.name for span in root.children]
            assert names == [
                f"fetch:{wrapper.name}" for wrapper, _request in jobs
            ]
            for span in root.walk():
                assert span.closed
        finally:
            fetcher.close()

    def test_shape_is_stable_across_runs(self, wrappers):
        locuslink, go, omim = wrappers

        def run():
            fetcher = FederatedFetcher(FederationPolicy(max_workers=4))
            try:
                recorder = TraceRecorder(clock=FakeClock(tick=1.0))
                with recorder.span("query"):
                    fetcher.fetch_all(
                        [
                            (locuslink, FetchRequest(())),
                            (go, FetchRequest(())),
                            (omim, FetchRequest(())),
                        ],
                        recorder=recorder,
                    )
                return trace_shape(recorder.root)
            finally:
                fetcher.close()

        assert run() == run()


class TestFaultInjectedTraces:
    QUERY = GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(
                    Condition("Aspect", "=", "molecular_function"),
                ),
            ),
            LinkConstraint("OMIM", "exclude", via="DiseaseID"),
        ),
    )

    def _mediator(self, corpus, policy, **flaky_kwargs):
        mediator = Mediator(federation=policy)
        locuslink, go, omim = default_wrappers(corpus)
        mediator.register_wrapper(locuslink)
        mediator.register_wrapper(FlakyWrapper(go, **flaky_kwargs))
        mediator.register_wrapper(omim)
        return mediator

    def test_degraded_source_closes_every_span(self, corpus):
        mediator = self._mediator(
            corpus,
            FederationPolicy(max_workers=4, on_failure="degrade"),
            blackout=True,
        )
        recorder = TraceRecorder(clock=FakeClock(tick=1.0))
        result = mediator.query(
            self.QUERY, use_cache=False, recorder=recorder
        )
        assert result.report.degraded == ("GO",)
        root = recorder.root
        assert root is result.trace
        for span in root.walk():
            assert span.closed
        go_span = root.find("fetch:GO")
        assert go_span is not None
        assert go_span.attributes["status"] == "error"
        assert root.find("execute").attributes["degraded"] == ["GO"]

    def test_raising_policy_closes_every_span_too(self, corpus):
        mediator = self._mediator(
            corpus,
            FederationPolicy(max_workers=4, on_failure="raise"),
            blackout=True,
        )
        recorder = TraceRecorder(clock=FakeClock(tick=1.0))
        with pytest.raises(IntegrationError):
            mediator.query(self.QUERY, use_cache=False, recorder=recorder)
        root = recorder.root
        assert root is not None
        for span in root.walk():
            assert span.closed
        assert root.status == "error"
        assert root.find("execute").status == "error"

    def test_retries_counted_on_the_fetch_span(self, corpus):
        mediator = self._mediator(
            corpus,
            FederationPolicy(
                max_workers=4, retries=2, backoff=0.0,
                on_failure="raise",
            ),
            fail_first=1,
        )
        recorder = TraceRecorder(clock=FakeClock(tick=1.0))
        result = mediator.query(
            self.QUERY, use_cache=False, recorder=recorder
        )
        go_span = result.trace.find("fetch:GO")
        assert go_span.counters["retries"] == 1
        assert go_span.counters["attempts"] == 2
        assert go_span.attributes["status"] == "ok"
