"""Tests for plan execution: the integrated federated answer."""

import pytest

from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    Mediator,
    OptimizerOptions,
    ReconciliationPolicy,
    Reconciler,
)
from repro.mediator.decompose import Condition
from repro.wrappers import default_wrappers


def figure5b_query():
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint("GO", "include", via="AnnotationID"),
            LinkConstraint(
                "OMIM", "exclude", via="DiseaseID", symbol_join=True
            ),
        ),
    )


class TestFigure5bQuery:
    def test_result_matches_ground_truth(self, mediator, corpus):
        result = mediator.query(figure5b_query())
        assert set(result.gene_ids()) == (
            corpus.ground_truth.figure5b_expected()
        )

    def test_result_is_nonempty(self, mediator):
        result = mediator.query(figure5b_query())
        assert len(result) > 0

    def test_integrated_view_structure(self, mediator):
        result = mediator.query(figure5b_query())
        graph = result.graph
        genes = graph.children(result.root, "Gene")
        assert len(genes) == len(result)
        first = genes[0]
        assert graph.child_value(first, "GeneID") is not None
        assert graph.child_value(first, "GeneSymbol") is not None
        # Included link details materialize as Annotation children.
        annotations = graph.children(first, "Annotation")
        assert annotations
        assert graph.child_value(
            annotations[0], "AnnotationID"
        ).startswith("GO:")
        # Excluded OMIM: no Disease children.
        assert graph.children(first, "Disease") == []

    def test_annotation_enrichment_carries_term_details(self, mediator):
        result = mediator.query(figure5b_query())
        graph = result.graph
        gene = graph.children(result.root, "Gene")[0]
        annotation = graph.children(gene, "Annotation")[0]
        assert graph.child_value(annotation, "Title") is not None
        assert graph.child_value(annotation, "Aspect") in (
            "molecular_function",
            "biological_process",
            "cellular_component",
        )

    def test_web_links_attached(self, mediator):
        result = mediator.query(figure5b_query())
        graph = result.graph
        gene = graph.children(result.root, "Gene")[0]
        links = graph.children(gene, "Links")[0]
        self_links = graph.children(links, "Self")
        assert self_links and "LocRpt.cgi" in self_links[0].value

    def test_view_graph_is_valid(self, mediator):
        result = mediator.query(figure5b_query())
        assert result.graph.validate() == []


class TestConditions:
    def test_anchor_condition_filters(self, mediator, corpus):
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("Species", "=", "Mus musculus"),),
        )
        result = mediator.query(query)
        expected = [
            record.locus_id
            for record in corpus.locuslink.all_records()
            if record.organism == "Mus musculus"
        ]
        assert sorted(result.gene_ids()) == expected

    def test_link_condition_narrows_annotations(self, mediator, corpus):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "GO",
                    "include",
                    via="AnnotationID",
                    conditions=(
                        Condition("Aspect", "=", "molecular_function"),
                    ),
                ),
            ),
        )
        result = mediator.query(query)
        for gene in result.genes:
            matched = gene["_links"]["GO"]
            assert matched
            for go_id in matched:
                assert (
                    corpus.go.get(go_id).namespace == "molecular_function"
                )

    def test_residual_condition_filters(self, mediator, corpus):
        # Description '=' is not native at LocusLink, so it runs at the
        # mediator; results must match a manual scan.
        sample = corpus.locuslink.all_records()[0]
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(
                Condition("Definition", "=", sample.description),
            ),
        )
        result = mediator.query(query)
        expected = [
            record.locus_id
            for record in corpus.locuslink.all_records()
            if record.description == sample.description
        ]
        assert sorted(result.gene_ids()) == expected
        assert result.stats.residual_evaluations > 0

    def test_projection(self, mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            select=("GeneSymbol",),
        )
        result = mediator.query(query)
        gene = result.genes[0]
        assert set(gene) == {"GeneID", "GeneSymbol", "_links"}


class TestOptimizerEquivalence:
    """All optimizer configurations must return identical answers."""

    @pytest.mark.parametrize(
        "options",
        [
            OptimizerOptions(),
            OptimizerOptions(enable_pushdown=False),
            OptimizerOptions(enable_pruning=False),
            OptimizerOptions(enable_ordering=False),
            OptimizerOptions(
                enable_pushdown=False,
                enable_pruning=False,
                enable_ordering=False,
            ),
        ],
    )
    def test_same_answer_any_options(self, corpus, options):
        mediator = Mediator(optimizer_options=options)
        for wrapper in default_wrappers(corpus):
            mediator.register_wrapper(wrapper)
        result = mediator.query(figure5b_query())
        assert set(result.gene_ids()) == (
            corpus.ground_truth.figure5b_expected()
        )

    def test_optimized_plan_fetches_fewer_rows(self, corpus):
        query = GlobalQuery(
            anchor_source="LocusLink",
            conditions=(Condition("Species", "=", "Homo sapiens"),),
            links=(
                LinkConstraint("GO", "include", via="AnnotationID"),
            ),
        )
        optimized = Mediator()
        unoptimized = Mediator(
            optimizer_options=OptimizerOptions(
                enable_pushdown=False, enable_pruning=False
            )
        )
        for target in (optimized, unoptimized):
            for wrapper in default_wrappers(corpus):
                target.register_wrapper(wrapper)
        fast = optimized.query(query, enrich_links=False)
        slow = unoptimized.query(query, enrich_links=False)
        assert set(fast.gene_ids()) == set(slow.gene_ids())
        assert (
            fast.stats.total_rows_fetched()
            < slow.stats.total_rows_fetched()
        )


class TestReconciliationInExecution:
    def test_conflicted_corpus_recall(self, conflicted_corpus):
        """Reconciliation recovers symbol-mangled OMIM associations that
        a naive join misses."""
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "OMIM", "include", via="DiseaseID", symbol_join=True
                ),
            ),
        )
        reconciled = Mediator()
        naive = Mediator(
            reconciler=Reconciler(ReconciliationPolicy.naive())
        )
        for target in (reconciled, naive):
            for wrapper in default_wrappers(conflicted_corpus):
                target.register_wrapper(wrapper)
        truth = conflicted_corpus.ground_truth.loci_with_omim()

        good = set(reconciled.query(query, enrich_links=False).gene_ids())
        bad = set(naive.query(query, enrich_links=False).gene_ids())
        # Reconciled recall strictly dominates naive recall.
        assert good & truth > bad & truth or (
            good >= bad and good & truth == truth
        )
        assert good >= bad

    def test_obsolete_annotations_dropped(self, conflicted_mediator,
                                          conflicted_corpus):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(LinkConstraint("GO", "include", via="AnnotationID"),),
        )
        result = conflicted_mediator.query(query, enrich_links=False)
        obsolete = {
            term.go_id
            for term in conflicted_corpus.go.all_terms()
            if term.obsolete
        }
        for gene in result.genes:
            assert not set(gene["_links"]["GO"]) & obsolete
        assert result.reconciliation.count("obsolete_annotation") > 0

    def test_dangling_references_reported(self, conflicted_mediator):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint("OMIM", "include", via="DiseaseID"),
            ),
        )
        result = conflicted_mediator.query(query, enrich_links=False)
        assert result.reconciliation.count("dangling_disease") > 0


class TestStats:
    def test_stats_populated(self, mediator):
        result = mediator.query(figure5b_query())
        assert result.stats.anchors_considered > 0
        assert result.stats.anchors_returned == len(result)
        assert result.stats.wall_seconds > 0
        assert "LocusLink" in result.stats.rows_fetched

    def test_gene_lookup(self, mediator):
        result = mediator.query(figure5b_query())
        gene_id = result.gene_ids()[0]
        assert result.gene(gene_id)["GeneID"] == gene_id
        from repro.util.errors import IntegrationError

        with pytest.raises(IntegrationError):
            result.gene(-1)
