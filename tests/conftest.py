"""Repo-wide pytest configuration.

Adds ``--regen-golden``: golden-file suites (the trace conformance
tests in ``tests/integration/test_golden_traces.py``) rewrite their
checked-in expectations from the current implementation instead of
comparing against them.  Regenerate deliberately, inspect the diff,
and commit it with the change that moved the behaviour.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite checked-in golden files from the current "
            "implementation instead of comparing against them"
        ),
    )


@pytest.fixture(scope="session")
def regen_golden(request):
    return request.config.getoption("--regen-golden")
