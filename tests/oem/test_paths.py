"""Tests for Lorel-style path expressions over OEM graphs."""

import pytest

from repro.oem import OEMGraph, PathExpression
from repro.util.errors import QueryError


@pytest.fixture
def gml_like_graph():
    graph = OEMGraph("gml")
    root = graph.build(
        {
            "Source": [
                {"Name": "LocusLink", "Content": {"Entry": [1, 2]}},
                {"Name": "GO", "Content": {"Term": ["GO:1"]}},
            ],
            "Version": "2005.1",
        }
    )
    graph.set_root("ANNODA-GML", root)
    return graph, root


class TestParsing:
    def test_simple_path(self):
        path = PathExpression.parse("Source.Name")
        assert len(path) == 2

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            PathExpression.parse("   ")

    def test_rejects_empty_segment(self):
        with pytest.raises(QueryError):
            PathExpression.parse("Source..Name")

    def test_repr_keeps_text(self):
        assert "Source.Name" in repr(PathExpression.parse("Source.Name"))


class TestExactMatching:
    def test_two_step_path(self, gml_like_graph):
        graph, root = gml_like_graph
        names = PathExpression.parse("Source.Name").terminals(graph, root)
        assert sorted(obj.value for obj in names) == ["GO", "LocusLink"]

    def test_no_match_returns_empty(self, gml_like_graph):
        graph, root = gml_like_graph
        assert PathExpression.parse("Missing.Name").terminals(graph, root) == []

    def test_case_sensitive(self, gml_like_graph):
        graph, root = gml_like_graph
        assert PathExpression.parse("source.name").terminals(graph, root) == []

    def test_first_helper(self, gml_like_graph):
        graph, root = gml_like_graph
        first = PathExpression.parse("Source.Name").first(graph, root)
        assert first.value == "LocusLink"
        assert PathExpression.parse("Nope").first(graph, root) is None


class TestWildcards:
    def test_percent_matches_substring(self, gml_like_graph):
        graph, root = gml_like_graph
        terminals = PathExpression.parse("Sou%.Name").terminals(graph, root)
        assert len(terminals) == 2

    def test_percent_alone_matches_any_label(self, gml_like_graph):
        graph, root = gml_like_graph
        terminals = PathExpression.parse("%").terminals(graph, root)
        # Two Source children plus Version.
        assert len(terminals) == 3

    def test_hash_matches_any_depth(self, gml_like_graph):
        graph, root = gml_like_graph
        terminals = PathExpression.parse("#.Name").terminals(graph, root)
        assert sorted(obj.value for obj in terminals) == ["GO", "LocusLink"]

    def test_hash_matches_empty_path(self, gml_like_graph):
        graph, root = gml_like_graph
        terminals = PathExpression.parse("#").terminals(graph, root)
        assert root in terminals

    def test_hash_on_cyclic_graph_terminates(self):
        graph = OEMGraph()
        a = graph.new_complex()
        b = graph.new_complex()
        leaf = graph.new_atomic("leaf")
        graph.add_edge(a, "next", b)
        graph.add_edge(b, "back", a)
        graph.add_edge(b, "value", leaf)
        terminals = PathExpression.parse("#.value").terminals(graph, a)
        assert [obj.value for obj in terminals] == ["leaf"]


class TestTrails:
    def test_trails_record_labels(self, gml_like_graph):
        graph, root = gml_like_graph
        trails = PathExpression.parse("Source.Content").trails(graph, root)
        assert all(
            [label for label, _ in trail] == ["Source", "Content"]
            for trail in trails
        )
        assert len(trails) == 2

    def test_terminals_deduplicate_by_oid(self):
        graph = OEMGraph()
        root = graph.new_complex()
        shared = graph.new_atomic("v")
        a = graph.new_complex()
        b = graph.new_complex()
        graph.add_edge(root, "x", a)
        graph.add_edge(root, "x", b)
        graph.add_edge(a, "v", shared)
        graph.add_edge(b, "v", shared)
        terminals = PathExpression.parse("x.v").terminals(graph, root)
        assert len(terminals) == 1
