"""Tests for the OEM graph store."""

import pytest

from repro.oem import OEMGraph, OEMType, graph_signature
from repro.util.errors import DataFormatError


@pytest.fixture
def locus_graph():
    """A small LocusLink-shaped graph mirroring the paper's Figure 3."""
    graph = OEMGraph("locuslink")
    root = graph.build(
        {
            "LocusID": 2354,
            "Organism": "Homo sapiens",
            "Symbol": "FOSB",
            "Description": "FBJ murine osteosarcoma viral oncogene homolog B",
            "Position": "19q13.32",
            "Links": {
                "GO": "http://godatabase.org/GO:0003700",
                "OMIM": "http://www.ncbi.nlm.nih.gov/omim/164772",
            },
        },
        label_order=[
            "LocusID",
            "Organism",
            "Symbol",
            "Description",
            "Position",
            "Links",
        ],
    )
    graph.set_root("LocusLink", root)
    return graph


class TestConstruction:
    def test_figure3_oid_numbering(self, locus_graph):
        # The root complex object allocates first, like &1 in Figure 3.
        root = locus_graph.root("LocusLink")
        assert root.oid == 1
        assert root.is_complex

    def test_atomic_children_hold_values(self, locus_graph):
        root = locus_graph.root("LocusLink")
        assert locus_graph.child_value(root, "LocusID") == 2354
        assert locus_graph.child_value(root, "Symbol") == "FOSB"

    def test_labels_in_declared_order(self, locus_graph):
        root = locus_graph.root("LocusLink")
        assert root.labels() == [
            "LocusID",
            "Organism",
            "Symbol",
            "Description",
            "Position",
            "Links",
        ]

    def test_list_fans_out_label(self):
        graph = OEMGraph()
        root = graph.build({"GoID": ["GO:1", "GO:2", "GO:3"]})
        assert [
            child.value for child in graph.children(root, "GoID")
        ] == ["GO:1", "GO:2", "GO:3"]

    def test_duplicate_reference_is_set_semantics(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.new_atomic("x")
        graph.add_edge(parent, "label", child)
        graph.add_edge(parent, "label", child)
        assert len(parent.references) == 1

    def test_edge_endpoints_must_be_local(self):
        graph_a = OEMGraph("a")
        graph_b = OEMGraph("b")
        parent = graph_a.new_complex()
        foreign = graph_b.new_atomic(1)
        with pytest.raises(DataFormatError):
            graph_a.add_edge(parent, "x", foreign)


class TestRoots:
    def test_set_root_rejects_overwrite(self, locus_graph):
        other = locus_graph.new_complex()
        with pytest.raises(DataFormatError):
            locus_graph.set_root("LocusLink", other)

    def test_rebind_root_allows_overwrite(self, locus_graph):
        other = locus_graph.new_complex()
        locus_graph.rebind_root("LocusLink", other)
        assert locus_graph.root("LocusLink") is other

    def test_unique_root_name_renames(self, locus_graph):
        assert locus_graph.unique_root_name("LocusLink") == "LocusLink2"
        assert locus_graph.unique_root_name("answer") == "answer"

    def test_missing_root_raises(self, locus_graph):
        with pytest.raises(DataFormatError):
            locus_graph.root("GO")


class TestTraversal:
    def test_children_filter_by_label(self, locus_graph):
        root = locus_graph.root("LocusLink")
        links = locus_graph.children(root, "Links")
        assert len(links) == 1 and links[0].is_complex

    def test_parents(self, locus_graph):
        root = locus_graph.root("LocusLink")
        links = locus_graph.children(root, "Links")[0]
        parent_pairs = locus_graph.parents(links.oid)
        assert (root, "Links") in parent_pairs

    def test_reachable_covers_whole_tree(self, locus_graph):
        root = locus_graph.root("LocusLink")
        assert locus_graph.reachable(root) == {
            obj.oid for obj in locus_graph.objects()
        }

    def test_walk_yields_paths(self, locus_graph):
        root = locus_graph.root("LocusLink")
        paths = {path for path, _ in locus_graph.walk(root)}
        assert ("Links", "GO") in paths
        assert () in paths

    def test_walk_terminates_on_cycles(self):
        graph = OEMGraph()
        a = graph.new_complex()
        b = graph.new_complex()
        graph.add_edge(a, "next", b)
        graph.add_edge(b, "back", a)
        visited = list(graph.walk(a))
        assert len(visited) == 2

    def test_reachable_terminates_on_self_loop(self):
        graph = OEMGraph()
        a = graph.new_complex()
        graph.add_edge(a, "self", a)
        assert graph.reachable(a) == {a.oid}


class TestValidation:
    def test_well_formed_graph_validates(self, locus_graph):
        assert locus_graph.validate() == []

    def test_dangling_reference_detected(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.new_atomic(1)
        graph.add_edge(parent, "x", child)
        del graph._objects[child.oid]
        problems = graph.validate()
        assert any("missing object" in problem for problem in problems)


class TestImportSubgraph:
    def test_copy_preserves_structure(self, locus_graph):
        target = OEMGraph("combined")
        source_root = locus_graph.root("LocusLink")
        copied = target.import_subgraph(locus_graph, source_root)
        assert target.equal_structure(copied, locus_graph, source_root)

    def test_copy_remaps_oids(self, locus_graph):
        target = OEMGraph("combined")
        target.new_complex()  # occupy oid 1 so remapping is observable
        copied = target.import_subgraph(
            locus_graph, locus_graph.root("LocusLink")
        )
        assert copied.oid != locus_graph.root("LocusLink").oid

    def test_label_map_renames_edges(self, locus_graph):
        target = OEMGraph("combined")
        copied = target.import_subgraph(
            locus_graph,
            locus_graph.root("LocusLink"),
            label_map={"Symbol": "GeneSymbol"},
        )
        assert target.child_value(copied, "GeneSymbol") == "FOSB"
        assert target.child_value(copied, "Symbol") is None

    def test_shared_substructure_stays_shared(self):
        source = OEMGraph()
        top = source.new_complex()
        shared = source.new_atomic("shared")
        a = source.new_complex()
        b = source.new_complex()
        source.add_edge(top, "a", a)
        source.add_edge(top, "b", b)
        source.add_edge(a, "value", shared)
        source.add_edge(b, "value", shared)

        target = OEMGraph()
        copied = target.import_subgraph(source, top)
        value_a = target.children(target.children(copied, "a")[0], "value")[0]
        value_b = target.children(target.children(copied, "b")[0], "value")[0]
        assert value_a.oid == value_b.oid

    def test_cyclic_subgraph_copies(self):
        source = OEMGraph()
        a = source.new_complex()
        b = source.new_complex()
        source.add_edge(a, "next", b)
        source.add_edge(b, "back", a)
        target = OEMGraph()
        copied = target.import_subgraph(source, a)
        back = target.children(target.children(copied, "next")[0], "back")[0]
        assert back.oid == copied.oid


class TestSignatures:
    def test_equal_structures_share_signature(self):
        graph_a = OEMGraph()
        graph_b = OEMGraph()
        root_a = graph_a.build({"x": 1, "y": ["a", "b"]})
        graph_b.new_atomic(99)  # shift oids
        root_b = graph_b.build({"y": ["a", "b"], "x": 1})
        assert graph_signature(graph_a, root_a) == graph_signature(
            graph_b, root_b
        )

    def test_value_difference_changes_signature(self):
        graph = OEMGraph()
        a = graph.build({"x": 1})
        b = graph.build({"x": 2})
        assert graph_signature(graph, a) != graph_signature(graph, b)

    def test_type_difference_changes_signature(self):
        graph = OEMGraph()
        a = graph.build({"x": 1})
        b = graph.build({"x": 1.0})
        assert graph_signature(graph, a) != graph_signature(graph, b)
