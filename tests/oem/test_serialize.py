"""Tests for Figure-3 text serialization and the JSON object table."""

import pytest

from repro.oem import (
    OEMGraph,
    OEMType,
    from_json_table,
    read_figure3,
    to_json_table,
    to_python,
    write_figure3,
)
from repro.util.errors import DataFormatError


@pytest.fixture
def locus_graph():
    graph = OEMGraph("locuslink")
    root = graph.build(
        {
            "LocusID": 2354,
            "Organism": "Homo sapiens",
            "Symbol": "FOSB",
            "Links": {"GO": "http://godatabase.org/GO:0003700"},
        },
        label_order=["LocusID", "Organism", "Symbol", "Links"],
    )
    graph.set_root("LocusLink", root)
    return graph


class TestFigure3Writer:
    def test_layout_matches_paper_description(self, locus_graph):
        text = write_figure3(
            locus_graph, "LocusLink", locus_graph.root("LocusLink")
        )
        lines = text.splitlines()
        # "LocusLink is a Complex object with oid &1"
        assert lines[0] == "LocusLink &1 Complex"
        # "LocusID is an atomic object of type Integer with oid &2"
        assert lines[1] == "  LocusID &2 Integer '2354'"

    def test_complex_children_indent_further(self, locus_graph):
        text = write_figure3(
            locus_graph, "LocusLink", locus_graph.root("LocusLink")
        )
        go_lines = [l for l in text.splitlines() if l.lstrip().startswith("GO ")]
        assert go_lines and go_lines[0].startswith("    ")

    def test_shared_object_described_once(self):
        graph = OEMGraph()
        root = graph.new_complex()
        shared = graph.new_complex()
        leaf = graph.new_atomic(1)
        graph.add_edge(shared, "value", leaf)
        graph.add_edge(root, "first", shared)
        graph.add_edge(root, "second", shared)
        text = write_figure3(graph, "Root", root)
        # 'value' expansion appears once; the second reference is bare.
        assert text.count("value") == 1
        assert text.count(f"&{shared.oid} Complex") == 2

    def test_quotes_escaped(self):
        graph = OEMGraph()
        root = graph.build({"Description": "5'-flanking region"})
        text = write_figure3(graph, "Entry", root)
        assert "'5''-flanking region'" in text


class TestFigure3Reader:
    def test_round_trip_preserves_text(self, locus_graph):
        text = write_figure3(
            locus_graph, "LocusLink", locus_graph.root("LocusLink")
        )
        parsed, label, root = read_figure3(text)
        assert label == "LocusLink"
        assert write_figure3(parsed, label, root) == text

    def test_round_trip_preserves_oids(self, locus_graph):
        text = write_figure3(
            locus_graph, "LocusLink", locus_graph.root("LocusLink")
        )
        parsed, _, root = read_figure3(text)
        assert root.oid == locus_graph.root("LocusLink").oid

    def test_shared_object_reconnected(self):
        text = (
            "Root &1 Complex\n"
            "  first &2 Complex\n"
            "    value &3 Integer '1'\n"
            "  second &2 Complex\n"
        )
        graph, _, root = read_figure3(text)
        children = graph.children(root)
        assert children[0].oid == children[1].oid == 2

    def test_blank_lines_ignored(self):
        text = "Root &1 Complex\n\n  x &2 Integer '5'\n"
        graph, _, root = read_figure3(text)
        assert graph.child_value(root, "x") == 5

    @pytest.mark.parametrize(
        "bad",
        [
            "Root &1",  # too few fields
            "Root one Complex",  # bad oid
            "Root &1 Blob 'x'",  # unknown type
            "Root &1 Integer 5",  # unquoted value
            "  Root &1 Complex",  # indented line without parent
            "Root &1 Complex 'v'",  # complex with value
            "Root &1 Integer",  # atomic missing value
        ],
    )
    def test_malformed_documents_rejected(self, bad):
        with pytest.raises(DataFormatError):
            read_figure3(bad)

    def test_two_top_level_objects_rejected(self):
        with pytest.raises(DataFormatError):
            read_figure3("A &1 Integer '1'\nB &2 Integer '2'\n")

    def test_odd_indentation_rejected(self):
        with pytest.raises(DataFormatError):
            read_figure3("Root &1 Complex\n   x &2 Integer '1'\n")

    def test_type_conflict_on_redescription_rejected(self):
        text = (
            "Root &1 Complex\n"
            "  a &2 Complex\n"
            "  b &2 Integer '1'\n"
        )
        with pytest.raises(DataFormatError):
            read_figure3(text)

    def test_empty_document_rejected(self):
        with pytest.raises(DataFormatError):
            read_figure3("\n\n")


class TestJsonTable:
    def test_round_trip(self, locus_graph):
        table = to_json_table(locus_graph)
        rebuilt = from_json_table(table)
        assert rebuilt.equal_structure(
            rebuilt.root("LocusLink"),
            locus_graph,
            locus_graph.root("LocusLink"),
        )

    def test_rejects_dangling_reference(self, locus_graph):
        table = to_json_table(locus_graph)
        table["objects"][0]["references"].append({"label": "bad", "oid": 999})
        with pytest.raises(DataFormatError):
            from_json_table(table)

    def test_gif_values_round_trip(self):
        graph = OEMGraph()
        root = graph.new_complex()
        image = graph.new_atomic(b"\x89PNGdata", OEMType.GIF)
        graph.add_edge(root, "thumbnail", image)
        graph.rebind_root("Entry", root)
        rebuilt = from_json_table(to_json_table(graph))
        value = rebuilt.child_value(rebuilt.root("Entry"), "thumbnail")
        assert value == b"\x89PNGdata"


class TestToPython:
    def test_simple_tree(self, locus_graph):
        data = to_python(locus_graph, locus_graph.root("LocusLink"))
        assert data["Symbol"] == "FOSB"
        assert data["Links"]["GO"].startswith("http://")

    def test_fan_out_becomes_list(self):
        graph = OEMGraph()
        root = graph.build({"GoID": ["GO:1", "GO:2"]})
        assert to_python(graph, root) == {"GoID": ["GO:1", "GO:2"]}

    def test_cycles_cut_with_sentinel(self):
        graph = OEMGraph()
        a = graph.new_complex()
        graph.add_edge(a, "self", a)
        data = to_python(graph, a)
        assert data == {"self": f"<cycle &{a.oid}>"}
