"""Tests for the extended OEM atomic type system."""

import pytest

from repro.oem.types import (
    ATOMIC_TYPES,
    OEMType,
    infer_type,
    parse_value,
    render_value,
    type_from_name,
    validate_value,
)
from repro.util.errors import DataFormatError


class TestInference:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (7, OEMType.INTEGER),
            (3.5, OEMType.REAL),
            ("BRCA2", OEMType.STRING),
            (True, OEMType.BOOLEAN),
            (b"\x89GIF", OEMType.GIF),
        ],
    )
    def test_basic_inference(self, value, expected):
        assert infer_type(value) is expected

    def test_bool_not_mistaken_for_int(self):
        assert infer_type(True) is OEMType.BOOLEAN

    def test_urls_are_not_inferred(self):
        # URL requires explicit tagging; inference stays STRING.
        assert infer_type("http://www.ncbi.nlm.nih.gov") is OEMType.STRING

    def test_unrepresentable_value_rejected(self):
        with pytest.raises(DataFormatError):
            infer_type(object())


class TestValidation:
    def test_int_widened_to_real(self):
        assert validate_value(4, OEMType.REAL) == 4.0
        assert isinstance(validate_value(4, OEMType.REAL), float)

    def test_bytearray_frozen(self):
        frozen = validate_value(bytearray(b"ab"), OEMType.GIF)
        assert frozen == b"ab" and isinstance(frozen, bytes)

    def test_bool_cannot_carry_integer(self):
        with pytest.raises(DataFormatError):
            validate_value(True, OEMType.INTEGER)

    def test_complex_carries_no_value(self):
        with pytest.raises(DataFormatError):
            validate_value("x", OEMType.COMPLEX)

    def test_url_requires_string(self):
        assert validate_value("http://x", OEMType.URL) == "http://x"
        with pytest.raises(DataFormatError):
            validate_value(7, OEMType.URL)


class TestNames:
    def test_round_trip_all_tags(self):
        for oem_type in OEMType:
            assert type_from_name(oem_type.value) is oem_type

    def test_case_tolerance(self):
        assert type_from_name("integer") is OEMType.INTEGER
        assert type_from_name("INTEGER") is OEMType.INTEGER

    def test_unknown_name_rejected(self):
        with pytest.raises(DataFormatError):
            type_from_name("Blob")

    def test_atomic_tuple_excludes_complex(self):
        assert OEMType.COMPLEX not in ATOMIC_TYPES
        assert len(ATOMIC_TYPES) == len(OEMType) - 1


class TestSerializedValues:
    @pytest.mark.parametrize(
        "value, oem_type",
        [
            (42, OEMType.INTEGER),
            (-3, OEMType.INTEGER),
            (2.75, OEMType.REAL),
            ("LocusID Value", OEMType.STRING),
            (True, OEMType.BOOLEAN),
            (False, OEMType.BOOLEAN),
            (b"\x00\xffGIF", OEMType.GIF),
            ("http://go/term", OEMType.URL),
        ],
    )
    def test_render_parse_round_trip(self, value, oem_type):
        text = render_value(value, oem_type)
        assert parse_value(text, oem_type) == value

    def test_bad_boolean_literal(self):
        with pytest.raises(DataFormatError):
            parse_value("maybe", OEMType.BOOLEAN)
