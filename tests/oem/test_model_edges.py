"""Direct tests of less-traveled OEM model APIs."""

import pytest

from repro.oem import OEMGraph, OEMType
from repro.oem.model import OEMObject, atomic_from_python
from repro.util.errors import DataFormatError


class TestAtomicFromPython:
    def test_inferred_type(self):
        obj = atomic_from_python(1, 42)
        assert obj.type is OEMType.INTEGER
        assert obj.value == 42

    def test_explicit_type(self):
        obj = atomic_from_python(1, "http://x", OEMType.URL)
        assert obj.type is OEMType.URL


class TestReferenceMutation:
    def test_remove_reference(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.new_atomic("x")
        graph.add_edge(parent, "label", child)
        parent.remove_reference("label", child.oid)
        assert parent.references == ()

    def test_remove_missing_reference_raises(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        with pytest.raises(DataFormatError):
            parent.remove_reference("label", 99)

    def test_atomic_objects_reject_reference_ops(self):
        graph = OEMGraph()
        atom = graph.new_atomic(1)
        with pytest.raises(DataFormatError):
            atom.add_reference("x", atom)
        with pytest.raises(DataFormatError):
            atom.remove_reference("x", 1)
        with pytest.raises(DataFormatError):
            atom.references
        with pytest.raises(DataFormatError):
            atom.sort_references(lambda ref: 0)
        with pytest.raises(DataFormatError):
            atom.reverse_references()

    def test_complex_with_value_rejected(self):
        with pytest.raises(DataFormatError):
            OEMObject(1, OEMType.COMPLEX, "value")

    def test_reverse_references(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        for value in (1, 2, 3):
            graph.add_edge(parent, "n", graph.new_atomic(value))
        parent.reverse_references()
        assert [
            graph.get(ref.oid).value for ref in parent.references
        ] == [3, 2, 1]

    def test_ref_render(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.new_atomic("FOSB")
        ref = graph.add_edge(parent, "Symbol", child)
        assert ref.render() == f"(Symbol, &{child.oid}, String)"


class TestFreshAttachment:
    """The unchecked fast path used by answer construction: fresh
    children skip the duplicate check but stay coherent with it."""

    def test_attach_atomic_builds_the_same_edge_as_add_edge(self):
        fast, slow = OEMGraph(), OEMGraph()
        fast_parent = fast.new_complex()
        slow_parent = slow.new_complex()
        fast_child = fast.attach_atomic(fast_parent, "Symbol", "TP53")
        slow_child = slow.new_atomic("TP53")
        slow.add_edge(slow_parent, "Symbol", slow_child)
        assert fast_parent.references == slow_parent.references
        assert fast_child.type is slow_child.type

    def test_attach_atomic_with_explicit_type(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.attach_atomic(
            parent, "Self", "http://x", OEMType.URL
        )
        assert child.type is OEMType.URL

    def test_attach_complex_returns_a_referenced_empty_child(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.attach_complex(parent, "Annotation")
        assert child.is_complex and child.references == ()
        assert parent.references[0].oid == child.oid

    def test_later_checked_adds_see_fresh_references(self):
        """The lazily built dedup set must include references that
        were appended through the unchecked path before it existed."""
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.attach_atomic(parent, "Symbol", "TP53")
        duplicate = graph.get(child.oid)
        graph.add_edge(parent, "Symbol", duplicate)  # exact duplicate
        assert len(parent.references) == 1

    def test_unchecked_append_on_atomic_rejected(self):
        graph = OEMGraph()
        atom = graph.new_atomic(1)
        with pytest.raises(DataFormatError):
            atom.append_reference_unchecked("x", atom)

    def test_remove_then_checked_readd(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.attach_atomic(parent, "Symbol", "TP53")
        graph.add_edge(parent, "Alias", child)  # builds the dedup set
        parent.remove_reference("Symbol", child.oid)
        graph.add_edge(parent, "Symbol", child)  # must not be deduped
        assert [ref.label for ref in parent.references] == [
            "Alias",
            "Symbol",
        ]


class TestGraphEdges:
    def test_adopt_rejects_duplicate_oid(self):
        graph = OEMGraph()
        first = graph.new_atomic(1)
        with pytest.raises(DataFormatError):
            graph.adopt(OEMObject(first.oid, OEMType.INTEGER, 2))

    def test_reserve_oid_prevents_collision(self):
        graph = OEMGraph()
        graph.reserve_oid(50)
        assert graph.new_atomic(1).oid == 51

    def test_root_names_and_has_root(self):
        graph = OEMGraph()
        obj = graph.new_complex()
        graph.set_root("A", obj)
        graph.set_root("B", obj)
        assert graph.root_names() == ["A", "B"]
        assert graph.has_root("A") and not graph.has_root("C")

    def test_atomic_and_complex_partitions(self):
        graph = OEMGraph()
        graph.new_atomic(1)
        graph.new_complex()
        graph.new_atomic("x")
        assert len(graph.atomic_objects()) == 2
        assert len(graph.complex_objects()) == 1
        assert len(graph) == 3

    def test_repr_forms(self):
        graph = OEMGraph("g")
        atom = graph.new_atomic(5)
        box = graph.new_complex()
        assert "value=5" in repr(atom)
        assert "Complex" in repr(box)
        assert "g" in repr(graph)
