"""Direct tests of less-traveled OEM model APIs."""

import pytest

from repro.oem import OEMGraph, OEMType
from repro.oem.model import OEMObject, atomic_from_python
from repro.util.errors import DataFormatError


class TestAtomicFromPython:
    def test_inferred_type(self):
        obj = atomic_from_python(1, 42)
        assert obj.type is OEMType.INTEGER
        assert obj.value == 42

    def test_explicit_type(self):
        obj = atomic_from_python(1, "http://x", OEMType.URL)
        assert obj.type is OEMType.URL


class TestReferenceMutation:
    def test_remove_reference(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.new_atomic("x")
        graph.add_edge(parent, "label", child)
        parent.remove_reference("label", child.oid)
        assert parent.references == ()

    def test_remove_missing_reference_raises(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        with pytest.raises(DataFormatError):
            parent.remove_reference("label", 99)

    def test_atomic_objects_reject_reference_ops(self):
        graph = OEMGraph()
        atom = graph.new_atomic(1)
        with pytest.raises(DataFormatError):
            atom.add_reference("x", atom)
        with pytest.raises(DataFormatError):
            atom.remove_reference("x", 1)
        with pytest.raises(DataFormatError):
            atom.references
        with pytest.raises(DataFormatError):
            atom.sort_references(lambda ref: 0)
        with pytest.raises(DataFormatError):
            atom.reverse_references()

    def test_complex_with_value_rejected(self):
        with pytest.raises(DataFormatError):
            OEMObject(1, OEMType.COMPLEX, "value")

    def test_reverse_references(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        for value in (1, 2, 3):
            graph.add_edge(parent, "n", graph.new_atomic(value))
        parent.reverse_references()
        assert [
            graph.get(ref.oid).value for ref in parent.references
        ] == [3, 2, 1]

    def test_ref_render(self):
        graph = OEMGraph()
        parent = graph.new_complex()
        child = graph.new_atomic("FOSB")
        ref = graph.add_edge(parent, "Symbol", child)
        assert ref.render() == f"(Symbol, &{child.oid}, String)"


class TestGraphEdges:
    def test_adopt_rejects_duplicate_oid(self):
        graph = OEMGraph()
        first = graph.new_atomic(1)
        with pytest.raises(DataFormatError):
            graph.adopt(OEMObject(first.oid, OEMType.INTEGER, 2))

    def test_reserve_oid_prevents_collision(self):
        graph = OEMGraph()
        graph.reserve_oid(50)
        assert graph.new_atomic(1).oid == 51

    def test_root_names_and_has_root(self):
        graph = OEMGraph()
        obj = graph.new_complex()
        graph.set_root("A", obj)
        graph.set_root("B", obj)
        assert graph.root_names() == ["A", "B"]
        assert graph.has_root("A") and not graph.has_root("C")

    def test_atomic_and_complex_partitions(self):
        graph = OEMGraph()
        graph.new_atomic(1)
        graph.new_complex()
        graph.new_atomic("x")
        assert len(graph.atomic_objects()) == 2
        assert len(graph.complex_objects()) == 1
        assert len(graph) == 3

    def test_repr_forms(self):
        graph = OEMGraph("g")
        atom = graph.new_atomic(5)
        box = graph.new_complex()
        assert "value=5" in repr(atom)
        assert "Complex" in repr(box)
        assert "g" in repr(graph)
