"""Tests for GO term-enrichment analysis."""

import pytest
from scipy.stats import hypergeom

from repro.analysis import EnrichmentAnalyzer
from repro.analysis.enrichment import _benjamini_hochberg
from repro.core import Annoda
from repro.sources.corpus import CorpusParameters
from repro.util.errors import QueryError


@pytest.fixture(scope="module")
def annoda():
    return Annoda.with_default_sources(
        seed=83,
        parameters=CorpusParameters(
            loci=200, go_terms=100, omim_entries=40
        ),
    )


@pytest.fixture(scope="module")
def analyzer(annoda):
    return EnrichmentAnalyzer(annoda)


class TestAnnotations:
    def test_propagation_adds_ancestors(self, analyzer, annoda):
        direct = analyzer.annotations(propagate=False)
        propagated = analyzer.annotations(propagate=True)
        grew = 0
        for gene, terms in direct.items():
            assert terms <= propagated[gene]
            if terms < propagated[gene]:
                grew += 1
            for term in terms:
                assert propagated[gene] >= annoda.corpus.go.ancestors(
                    term
                ) | {term} <= propagated[gene]
        assert grew > 0

    def test_obsolete_terms_dropped(self, analyzer, annoda):
        obsolete = {
            term.go_id
            for term in annoda.corpus.go.all_terms()
            if term.obsolete
        }
        for terms in analyzer.annotations(propagate=False).values():
            assert not terms & obsolete


class TestEnrichment:
    def test_planted_term_is_top_hit(self, analyzer, annoda):
        """A study set built from one term's annotated genes must rank
        that term (or an ancestor covering it) first."""
        corpus = annoda.corpus
        by_term = {}
        for record in corpus.locuslink.all_records():
            for go_id in record.go_ids:
                term = corpus.go.get(go_id)
                if term is not None and not term.obsolete:
                    by_term.setdefault(go_id, set()).add(record.locus_id)
        target, genes = max(by_term.items(), key=lambda kv: len(kv[1]))
        assert len(genes) >= 3
        results = analyzer.go_enrichment(genes, min_study_count=2)
        top_ids = {result.go_id for result in results[:3]}
        closure = {target} | corpus.go.ancestors(target)
        assert top_ids & closure
        best = results[0]
        assert best.p_value < 0.05
        assert best.fold_enrichment > 1.0

    def test_p_value_matches_scipy_directly(self, analyzer):
        per_gene = analyzer.annotations()
        population = set(per_gene)
        study = set(list(sorted(population))[:30])
        results = analyzer.go_enrichment(study, min_study_count=2)
        result = results[0]
        expected = float(
            hypergeom.sf(
                result.study_count - 1,
                len(population),
                result.population_count,
                len(study),
            )
        )
        assert result.p_value == pytest.approx(expected)

    def test_whole_population_study_is_unenriched(self, analyzer):
        per_gene = analyzer.annotations()
        population = set(per_gene)
        results = analyzer.go_enrichment(population, min_study_count=2)
        for result in results:
            assert result.study_count == result.population_count
            assert result.p_value == pytest.approx(1.0)
            assert result.fold_enrichment == pytest.approx(1.0)

    def test_results_sorted_by_p(self, analyzer):
        per_gene = analyzer.annotations()
        study = set(list(sorted(per_gene))[:25])
        results = analyzer.go_enrichment(study)
        p_values = [result.p_value for result in results]
        assert p_values == sorted(p_values)

    def test_enrich_result_convenience(self, analyzer, annoda):
        result = annoda.ask(
            "find genes associated with some OMIM disease",
            enrich_links=False,
        )
        enriched = analyzer.enrich_result(result)
        assert all(r.study_size == len(result) for r in enriched)

    def test_render(self, analyzer):
        per_gene = analyzer.annotations()
        study = set(list(sorted(per_gene))[:25])
        line = analyzer.go_enrichment(study)[0].render()
        assert "p=" in line and "fold=" in line


class TestValidation:
    def test_unknown_study_gene_rejected(self, analyzer):
        with pytest.raises(QueryError):
            analyzer.go_enrichment({999999999})

    def test_empty_study_rejected(self, analyzer):
        with pytest.raises(QueryError):
            analyzer.go_enrichment(set())

    def test_study_outside_population_rejected(self, analyzer):
        per_gene = analyzer.annotations()
        genes = sorted(per_gene)
        with pytest.raises(QueryError):
            analyzer.go_enrichment(
                {genes[0]}, population_genes={genes[1]}
            )

    def test_requires_go_source(self):
        annoda = Annoda.with_default_sources(
            seed=1,
            parameters=CorpusParameters(
                loci=20, go_terms=20, omim_entries=5
            ),
        )
        annoda.remove_source("GO")
        with pytest.raises(QueryError):
            EnrichmentAnalyzer(annoda)


class TestBenjaminiHochberg:
    def test_empty(self):
        assert _benjamini_hochberg([]) == []

    def test_single_value_unchanged(self):
        assert _benjamini_hochberg([0.02]) == [0.02]

    def test_known_example(self):
        # Classic worked example: p = .01, .02, .03, .04 with m=4.
        adjusted = _benjamini_hochberg([0.01, 0.04, 0.03, 0.02])
        assert adjusted[0] == pytest.approx(0.04)
        assert adjusted[1] == pytest.approx(0.04)
        assert adjusted[2] == pytest.approx(0.04)
        assert adjusted[3] == pytest.approx(0.04)

    def test_monotone_and_bounded(self):
        p_values = [0.001, 0.5, 0.04, 0.9, 0.2]
        adjusted = _benjamini_hochberg(p_values)
        assert all(0.0 <= q <= 1.0 for q in adjusted)
        # q >= p always.
        for p, q in zip(p_values, adjusted):
            assert q >= p - 1e-12
