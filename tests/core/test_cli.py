"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main

SMALL = [
    "--seed", "3",
    "--loci", "60",
    "--go-terms", "40",
    "--omim-entries", "20",
]


def run_cli(arguments):
    out = io.StringIO()
    code = main(SMALL + arguments, out=out)
    return code, out.getvalue()


class TestDescribe:
    def test_lists_sources_and_correspondences(self):
        code, text = run_cli(["describe"])
        assert code == 0
        assert "LocusLink: 60 records" in text
        assert "Symbol -> GeneSymbol" in text


class TestAsk:
    def test_table_format(self):
        code, text = run_cli(
            ["ask", "find genes associated with some OMIM disease"]
        )
        assert code == 0
        assert "Annotation integrated view" in text

    def test_csv_format(self):
        code, text = run_cli(
            [
                "ask",
                "find genes associated with some OMIM disease",
                "--format", "csv",
            ]
        )
        assert code == 0
        assert text.splitlines()[0].startswith("GeneID,")

    def test_json_format(self):
        code, text = run_cli(
            [
                "ask",
                "find genes annotated with some GO function",
                "--format", "json",
            ]
        )
        assert code == 0
        records = json.loads(text)
        assert records and "GeneID" in records[0]

    def test_explain_and_audit(self):
        code, text = run_cli(
            [
                "ask",
                "find genes associated with some OMIM disease",
                "--explain", "--audit",
            ]
        )
        assert code == 0
        assert "execution plan" in text
        assert "reconciliation" in text

    def test_unparsable_question_fails_cleanly(self, capsys):
        code, _ = run_cli(["ask", "what is the meaning of life"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestLorel:
    def test_section41_query(self):
        code, text = run_cli(
            [
                "lorel",
                'select X from ANNODA-GML.Source X '
                'where X.Name = "LocusLink"',
            ]
        )
        assert code == 0
        assert text.startswith("answer &")

    def test_syntax_error_fails_cleanly(self, capsys):
        code, _ = run_cli(["lorel", "select"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestFigures:
    def test_single_figure(self):
        code, text = run_cli(["figures", "figure3"])
        assert code == 0
        assert "=== figure3 ===" in text
        assert "LocusLink &1 Complex" in text

    def test_all_figures(self):
        code, text = run_cli(["figures"])
        assert code == 0
        for name in ("figure1", "figure4", "figure5b"):
            assert f"=== {name} ===" in text

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["figures", "figure9"])


class TestTable1:
    def test_regenerates_matrix(self):
        code, text = run_cli(["table1"])
        assert code == 0
        assert "Table 1" in text
        assert "ANNODA" in text
        assert "probe evidence" in text


class TestValidate:
    def test_clean_federation_validates(self):
        code, text = run_cli(["validate"])
        assert code == 0
        assert "0 findings" in text

    def test_conflicted_federation_reports(self):
        out = io.StringIO()
        code = main(
            [
                "--seed", "3",
                "--loci", "150",
                "--go-terms", "80",
                "--omim-entries", "50",
                "--conflict-rate", "0.5",
                "validate",
                "--limit", "5",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "findings" in text
        assert "0 findings" not in text


class TestSnapshotAndDataDir:
    def test_snapshot_then_reload(self, tmp_path):
        target = str(tmp_path / "federation")
        code, text = run_cli(["snapshot", target])
        assert code == 0
        assert "locuslink.ll_tmpl" in text

        out = io.StringIO()
        code = main(["--data-dir", target, "describe"], out=out)
        assert code == 0
        assert "LocusLink: 60 records" in out.getvalue()

    def test_data_dir_answers_queries(self, tmp_path):
        target = str(tmp_path / "federation")
        run_cli(["snapshot", target])
        out = io.StringIO()
        code = main(
            [
                "--data-dir", target,
                "ask", "find genes associated with some OMIM disease",
            ],
            out=out,
        )
        assert code == 0
        assert "Annotation integrated view" in out.getvalue()

    def test_missing_data_dir_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["--data-dir", str(tmp_path / "nope"), "describe"],
            out=io.StringIO(),
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_snapshot_writes_index_files(self, tmp_path):
        target = tmp_path / "federation"
        code, text = run_cli(["snapshot", str(target)])
        assert code == 0
        assert "index snapshot locuslink.ll_tmpl.idx" in text
        assert (target / "locuslink.ll_tmpl.idx").is_file()

    def test_snapshot_no_indexes_flag(self, tmp_path):
        target = tmp_path / "federation"
        code, text = run_cli(["snapshot", str(target), "--no-indexes"])
        assert code == 0
        assert "index snapshot" not in text
        assert not list(target.glob("*.idx"))

    def test_snapshot_dir_adopts_persisted_indexes(self, tmp_path):
        target = str(tmp_path / "federation")
        run_cli(["snapshot", target])
        out = io.StringIO()
        code = main(
            [
                "--snapshot-dir", target,
                "ask", "find genes associated with some OMIM disease",
            ],
            out=out,
        )
        assert code == 0
        assert "Annotation integrated view" in out.getvalue()

    def test_snapshot_dir_warns_but_answers_on_corrupt_index(
        self, tmp_path
    ):
        target = tmp_path / "federation"
        run_cli(["snapshot", str(target)])
        (target / "locuslink.ll_tmpl.idx").write_bytes(b"garbage")
        out = io.StringIO()
        with pytest.warns(RuntimeWarning, match="rebuilt lazily"):
            code = main(
                ["--snapshot-dir", str(target), "describe"], out=out
            )
        assert code == 0
        assert "LocusLink: 60 records" in out.getvalue()
