"""Tests for the Annoda facade — the public API end to end."""

import pytest

from repro import Annoda
from repro.core import AnnodaConfig
from repro.mediator import OptimizerOptions
from repro.sources.corpus import CorpusParameters
from repro.wrappers import PubmedLikeWrapper


@pytest.fixture(scope="module")
def annoda():
    return Annoda.with_default_sources(
        seed=23,
        parameters=CorpusParameters(loci=120, go_terms=70, omim_entries=35),
    )


class TestConstruction:
    def test_top_level_import(self):
        import repro

        assert repro.Annoda is Annoda
        assert repro.__version__

    def test_default_sources(self, annoda):
        assert annoda.sources() == ["LocusLink", "GO", "OMIM"]
        assert annoda.corpus is not None

    def test_describe_sources(self, annoda):
        text = annoda.describe_sources()
        assert "LocusLink" in text and "GO" in text and "OMIM" in text

    def test_config_threads_through(self):
        config = AnnodaConfig(
            optimizer=OptimizerOptions(enable_pushdown=False)
        )
        annoda = Annoda.with_default_sources(
            seed=1,
            parameters=CorpusParameters(
                loci=20, go_terms=20, omim_entries=5
            ),
            config=config,
        )
        assert not annoda.mediator.optimizer_options.enable_pushdown


class TestAsk:
    def test_ask_with_text(self, annoda):
        result = annoda.ask(
            "Find a set of LocusLink genes, which are annotated with some "
            "GO functions, but not associated with some OMIM disease"
        )
        assert set(result.gene_ids()) == (
            annoda.corpus.ground_truth.figure5b_expected()
        )

    def test_ask_with_question_object(self, annoda):
        result = annoda.ask(annoda.catalog.figure5b())
        assert set(result.gene_ids()) == (
            annoda.corpus.ground_truth.figure5b_expected()
        )

    def test_ask_with_global_query(self, annoda):
        query = annoda.catalog.figure5b().to_global_query()
        result = annoda.ask(query)
        assert set(result.gene_ids()) == (
            annoda.corpus.ground_truth.figure5b_expected()
        )

    def test_all_three_paths_agree(self, annoda):
        text_result = annoda.ask(
            "find genes associated with some OMIM disease"
        )
        question_result = annoda.ask(annoda.catalog.disease_genes())
        assert set(text_result.gene_ids()) == set(
            question_result.gene_ids()
        )

    def test_explain(self, annoda):
        text = annoda.explain(annoda.catalog.figure5b())
        assert "execution plan" in text


class TestLorel:
    def test_raw_lorel_against_gml(self, annoda):
        result = annoda.lorel(
            'select X from ANNODA-GML.Source X where X.Name = "GO"'
        )
        assert len(result) == 1

    def test_gml_accessor(self, annoda):
        graph, root = annoda.gml()
        assert len(root.refs_with_label("Source")) == 3


class TestEndToEndNavigation:
    def test_query_then_navigate(self, annoda):
        result = annoda.ask(annoda.catalog.figure5b())
        gene = result.graph.children(result.root, "Gene")[0]
        links = annoda.navigator.links_of(result.graph, gene)
        go_link = next(l for l in links if l.target_source == "GO")
        view = annoda.navigate(go_link.url)
        rendered = annoda.render_object_view(view)
        assert view.target_id in rendered

    def test_render_pipeline(self, annoda):
        question = annoda.catalog.figure5b()
        result = annoda.ask(question)
        assert "ANNODA query interface" in annoda.render_query_form(
            question
        )
        assert "integrated view" in annoda.render_integrated_view(
            result, limit=5
        )
        assert "<table" in annoda.render_integrated_view_html(
            result, limit=5
        )


class TestSourceLifecycle:
    def test_plug_in_pubmed_and_ask(self, annoda):
        citations = annoda.corpus.make_citation_store(count=40)
        annoda.add_source(PubmedLikeWrapper(citations))
        try:
            result = annoda.ask("genes cited in some PubMed article")
            expected = {
                locus_id
                for citation in citations.all_citations()
                for locus_id in citation.locus_ids
            }
            assert set(result.gene_ids()) == expected
        finally:
            annoda.remove_source("PubMed")

    def test_remove_restores_three_sources(self, annoda):
        assert annoda.sources() == ["LocusLink", "GO", "OMIM"]
