"""Tests for the figure-regeneration harness."""

import pytest

from repro.core import Annoda
from repro.evaluation import FigureGenerator
from repro.sources.corpus import CorpusParameters


@pytest.fixture(scope="module")
def figures():
    annoda = Annoda.with_default_sources(
        seed=47,
        parameters=CorpusParameters(loci=60, go_terms=40, omim_entries=20),
    )
    return FigureGenerator(annoda)


class TestFigure1:
    def test_components_present(self, figures):
        text = figures.figure1()
        assert "Mediator" in text
        assert "Mapping module" in text
        assert "MDSM" in text
        assert "Hungarian" in text
        assert "Wrapper[LocusLink]" in text
        assert "Wrapper[GO]" in text
        assert "Wrapper[OMIM]" in text


class TestFigure2And3:
    def test_figure2_lists_vertices_and_edges(self, figures):
        text = figures.figure2()
        assert "objects (vertices):" in text
        assert "attributes (edges):" in text
        assert "--LocusID-->" in text

    def test_figure3_layout(self, figures):
        text = figures.figure3()
        assert text.startswith("LocusLink &1 Complex")
        assert "LocusID &2 Integer" in text
        assert "Links" in text

    def test_figures_deterministic(self, figures):
        assert figures.figure3() == figures.figure3()


class TestFigure4:
    def test_gml_rendering(self, figures):
        text = figures.figure4()
        assert text.startswith("ANNODA-GML &1 Complex")
        assert "Source" in text
        assert "'LocusLink'" in text


class TestFigure5:
    def test_figure5a(self, figures):
        text = figures.figure5a()
        assert "ANNODA query interface" in text
        assert "[include] GO" in text

    def test_figure5b(self, figures):
        text = figures.figure5b()
        assert "Annotation integrated view" in text
        assert "GO:" in text

    def test_figure5c(self, figures):
        text = figures.figure5c()
        assert "object" in text
        assert "Web links" in text

    def test_all_figures(self, figures):
        rendered = figures.all_figures()
        assert set(rendered) == {
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5a",
            "figure5b",
            "figure5c",
        }
        assert all(rendered.values())
