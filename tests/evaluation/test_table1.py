"""Tests for the Table-1 regeneration harness."""

import pytest

from repro.evaluation import build_table1
from repro.evaluation.table1 import CRITERIA
from repro.sources import AnnotationCorpus, CorpusParameters


@pytest.fixture(scope="module")
def table1():
    corpus = AnnotationCorpus.generate(
        seed=41,
        parameters=CorpusParameters(loci=60, go_terms=40, omim_entries=20),
    )
    conflicted = AnnotationCorpus.generate(
        seed=43,
        parameters=CorpusParameters(
            loci=120, go_terms=60, omim_entries=40, conflict_rate=0.4
        ),
    )
    return build_table1(corpus, conflicted)


class TestMatrixShape:
    def test_fifteen_criteria(self, table1):
        assert len(CRITERIA) == 15
        assert len(table1.rows()) == 15

    def test_four_system_columns(self, table1):
        assert table1.headers() == [
            "Criterion",
            "K2/Kleisli",
            "DiscoveryLink",
            "Warehouse (GUS)",
            "ANNODA",
        ]


class TestPaperCells:
    """Spot-check regenerated cells against the paper's phrasing."""

    def _row(self, table1, label_fragment):
        for row in table1.rows():
            if label_fragment in row[0]:
                return row
        raise AssertionError(f"no row matching {label_fragment!r}")

    def test_heterogeneity_row(self, table1):
        row = self._row(table1, "heterogeneity")
        assert all(
            cell == "User shielded from source details" for cell in row[1:]
        )

    def test_schema_row(self, table1):
        row = self._row(table1, "Missing standards")
        assert "object-oriented" in row[1]
        assert "object-oriented" in row[2]
        assert "relational" in row[3]
        assert "semistructured" in row[4]

    def test_interface_row(self, table1):
        row = self._row(table1, "Quality of user interfaces")
        assert "Require knowledge" in row[1]
        assert "no knowledge of sql required" in row[4].lower()

    def test_reconciliation_row(self, table1):
        row = self._row(table1, "Incorrectness")
        assert row[1] == "No reconciliation of results"
        assert row[2] == "No reconciliation of results"
        assert "reconciled and cleansed" in row[3]
        assert row[4] == "Reconciliation of results"

    def test_uncertainty_row_all_negative(self, table1):
        row = self._row(table1, "Uncertainty")
        assert all("No provision" in cell for cell in row[1:])

    def test_low_level_row(self, table1):
        row = self._row(table1, "Low-level")
        assert row[1] == row[2] == row[3] == "Not supported"
        assert "self-describing" in row[4]

    def test_specialty_functions_row(self, table1):
        row = self._row(table1, "specialty evaluation functions")
        assert row[1:] == [
            "Not supported",
            "Not supported",
            "Not supported",
            "Supported",
        ]

    def test_archival_row(self, table1):
        row = self._row(table1, "Loss of existing repositories")
        assert "Archiving of data supported" == row[3]
        assert row[4] == "No archival functionality"


class TestProbes:
    def test_probe_evidence_attached(self, table1):
        assert any(
            "reconciliation recall" in name for name in table1.probe_results
        )
        assert "warehouse staleness after source update" in (
            table1.probe_results
        )
        assert table1.probe_results[
            "warehouse staleness after source update"
        ] == "True"
        assert table1.probe_results[
            "new source plugged in and queried"
        ] == "True"

    def test_annoda_recall_dominates_naive(self, table1):
        annoda = float(
            table1.probe_results["reconciliation recall (ANNODA)"]
        )
        naive = float(
            table1.probe_results["reconciliation recall (K2/Kleisli)"]
        )
        assert annoda > naive

    def test_render_contains_matrix_and_evidence(self, table1):
        text = table1.render()
        assert "Table 1" in text
        assert "probe evidence" in text
        assert "ANNODA" in text
