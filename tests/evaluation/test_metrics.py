"""Tests for the answer-quality metrics."""

from repro.evaluation.metrics import answer_quality


class TestAnswerQuality:
    def test_perfect(self):
        quality = answer_quality({1, 2}, {1, 2})
        assert quality["precision"] == 1.0
        assert quality["recall"] == 1.0
        assert quality["f1"] == 1.0
        assert quality["errors"] == 0

    def test_false_positive(self):
        quality = answer_quality({1, 2, 3}, {1, 2})
        assert quality["false_positives"] == 1
        assert quality["recall"] == 1.0
        assert quality["precision"] == 2 / 3

    def test_false_negative(self):
        quality = answer_quality({1}, {1, 2})
        assert quality["false_negatives"] == 1
        assert quality["recall"] == 0.5

    def test_empty_answer_on_nonempty_truth(self):
        quality = answer_quality(set(), {1})
        assert quality["precision"] == 0.0
        assert quality["recall"] == 0.0
        assert quality["f1"] == 0.0

    def test_both_empty(self):
        quality = answer_quality(set(), set())
        assert quality["precision"] == 1.0
        assert quality["recall"] == 1.0
        assert quality["errors"] == 0
