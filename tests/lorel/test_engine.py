"""Tests for the Lorel engine's registry and rendering."""

import pytest

from repro.lorel import LorelEngine
from repro.oem import OEMGraph
from repro.util.errors import DataFormatError


@pytest.fixture
def engine_with_db():
    graph = OEMGraph()
    root = graph.build({"Entry": [{"Name": "a"}, {"Name": "b"}]})
    graph.set_root("DB", root)
    engine = LorelEngine()
    engine.register("DB", graph, root)
    return engine


class TestRegistry:
    def test_registration_copies_into_workspace(self, engine_with_db):
        assert "DB" in engine_with_db.databases()
        root = engine_with_db.root("DB")
        assert len(engine_with_db.workspace.children(root, "Entry")) == 2

    def test_duplicate_registration_rejected(self, engine_with_db):
        other = OEMGraph()
        other_root = other.build({"Entry": []})
        with pytest.raises(DataFormatError):
            engine_with_db.register("DB", other, other_root)

    def test_register_object_binds_existing(self, engine_with_db):
        result = engine_with_db.query("select X from DB.Entry X")
        engine_with_db.register_object("mine", result.answer)
        again = engine_with_db.query("select X.Name from mine.Entry X")
        assert sorted(again.values()) == ["a", "b"]


class TestExplain:
    def test_explain_returns_canonical_text(self, engine_with_db):
        text = engine_with_db.explain(
            "SELECT x FROM DB.Entry x WHERE x.Name = 'a'"
        )
        assert text.startswith("select x from DB.Entry x where")


class TestRenderAnswer:
    def test_figure3_rendering_of_answer(self, engine_with_db):
        result = engine_with_db.query(
            "select X from DB.Entry X where X.Name = 'a'"
        )
        rendered = engine_with_db.render_answer(result)
        first_line = rendered.splitlines()[0]
        # 'answer &N Complex' like the section 4.1 listing.
        assert first_line.startswith("answer &")
        assert first_line.endswith("Complex")
        assert "Name" in rendered
