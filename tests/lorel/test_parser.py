"""Tests for the Lorel parser."""

import pytest

from repro.lorel import parse
from repro.lorel.ast_nodes import (
    And,
    Comparison,
    Exists,
    Literal,
    Not,
    Or,
    Path,
)
from repro.lorel.errors import LorelSyntaxError


class TestStructure:
    def test_paper_example_query(self):
        # Section 4.1 example, in standard Lorel form.
        query = parse(
            'select X from ANNODA-GML.Source X where X.Name = "LocusLink"'
        )
        assert query.select_items[0].path == Path("X")
        assert query.from_clauses[0].path == Path("ANNODA-GML", ("Source",))
        assert query.from_clauses[0].variable == "X"
        assert query.where == Comparison(
            "=", Path("X", ("Name",)), Literal("LocusLink")
        )

    def test_multiple_select_items(self):
        query = parse("select X.Name, X.LocusID from DB.Entry X")
        assert len(query.select_items) == 2
        assert query.select_items[1].label == "LocusID"

    def test_alias(self):
        query = parse("select X.Name as GeneName from DB.Entry X")
        assert query.select_items[0].alias == "GeneName"
        assert query.select_items[0].label == "GeneName"

    def test_dependent_from_clauses(self):
        query = parse("select C from DB.Source S, S.Content C")
        assert query.from_clauses[1].path.base == "S"

    def test_from_without_variable_binds_root_name(self):
        query = parse("select X from ANNODA-GML where Source.Name = 'x'")
        # 'where' is a keyword, so the clause gets no explicit variable.
        assert query.from_clauses[0].variable == "ANNODA-GML"

    def test_distinct(self):
        assert parse("select distinct X from DB X").distinct

    def test_duplicate_variable_rejected(self):
        with pytest.raises(LorelSyntaxError):
            parse("select X from A X, B X")


class TestWhereExpressions:
    def test_precedence_and_binds_tighter_than_or(self):
        query = parse(
            "select X from DB X where X.a = 1 or X.b = 2 and X.c = 3"
        )
        assert isinstance(query.where, Or)
        assert isinstance(query.where.right, And)

    def test_parentheses_override(self):
        query = parse(
            "select X from DB X where (X.a = 1 or X.b = 2) and X.c = 3"
        )
        assert isinstance(query.where, And)
        assert isinstance(query.where.left, Or)

    def test_not(self):
        query = parse("select X from DB X where not X.a = 1")
        assert isinstance(query.where, Not)

    def test_exists(self):
        query = parse("select X from DB X where exists X.Links.GO")
        assert query.where == Exists(Path("X", ("Links", "GO")))

    def test_bare_path_is_existential(self):
        query = parse("select X from DB X where X.Links")
        assert isinstance(query.where, Exists)

    def test_like(self):
        query = parse("select X from DB X where X.Name like 'BRCA%'")
        assert query.where.op == "like"
        assert query.where.right == Literal("BRCA%")

    def test_in_list(self):
        query = parse("select X from DB X where X.n in (1, 2, 3)")
        assert query.where.op == "in"
        assert [l.value for l in query.where.right.items] == [1, 2, 3]

    def test_not_in(self):
        query = parse("select X from DB X where X.n not in (1)")
        assert isinstance(query.where, Not)
        assert query.where.operand.op == "in"

    def test_neq_normalized(self):
        query = parse("select X from DB X where X.a <> 1")
        assert query.where.op == "!="

    def test_comparison_of_two_paths(self):
        query = parse("select X from A X, B Y where X.Symbol = Y.GeneSymbol")
        assert query.where.right == Path("Y", ("GeneSymbol",))

    def test_oid_literal(self):
        query = parse("select X from DB X where X = &442")
        assert query.where.right == Literal(442, is_oid=True)

    def test_boolean_literals(self):
        query = parse("select X from DB X where X.flag = true")
        assert query.where.right == Literal(True)


class TestSetOperators:
    @pytest.mark.parametrize("op", ["union", "except", "intersect"])
    def test_set_op_parsed(self, op):
        query = parse(f"select X from A X {op} select Y from B Y")
        assert query.set_op == op
        assert query.set_operand.from_clauses[0].path.base == "B"

    def test_chained_set_ops(self):
        query = parse(
            "select X from A X union select Y from B Y except select Z from C Z"
        )
        assert query.set_op == "union"
        assert query.set_operand.set_op == "except"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "select",
            "select X",
            "select X from",
            "select from DB X",
            "select X from DB X where",
            "select X from DB X where X.a =",
            "select X from DB X where in (1)",
            "select X from DB X where X.a in ()",
            "select X from DB X where X.a in (Name)",
            "select X from DB X trailing garbage",
            "select X from DB X where (X.a = 1",
        ],
    )
    def test_malformed_queries_rejected(self, bad):
        with pytest.raises(LorelSyntaxError):
            parse(bad)


class TestUnparse:
    @pytest.mark.parametrize(
        "text",
        [
            'select X from ANNODA-GML.Source X where X.Name = "LocusLink"',
            "select distinct X.Name as N from DB.Entry X",
            "select X from DB X where (X.a = 1 and not (X.b = 2))",
            "select X from DB X where X.n in (1, 2)",
            "select X from A X union select Y from B Y",
            "select X from DB X where exists X.Links.GO",
        ],
    )
    def test_parse_unparse_fixpoint(self, text):
        once = parse(text).unparse()
        assert parse(once).unparse() == once
