"""Tests for the Lorel tokenizer."""

import pytest

from repro.lorel.errors import LorelSyntaxError
from repro.lorel.lexer import tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def texts(text):
    return [token.text for token in tokenize(text)]


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT Select select")
        assert all(t.kind == "KEYWORD" and t.text == "select" for t in tokens[:-1])

    def test_identifier_with_hyphen(self):
        tokens = tokenize("ANNODA-GML")
        assert tokens[0].kind == "NAME"
        assert tokens[0].text == "ANNODA-GML"

    def test_identifier_with_colon(self):
        # GO term identifiers like GO:0003700 lex as one name.
        tokens = tokenize("GO:0003700")
        assert tokens[0].text == "GO:0003700"

    def test_path_tokens(self):
        assert kinds("Source.Name") == ["NAME", "DOT", "NAME", "EOF"]

    def test_eof_token_always_present(self):
        assert kinds("") == ["EOF"]

    def test_whitespace_ignored(self):
        assert kinds("  select \n X ") == ["KEYWORD", "NAME", "EOF"]


class TestLiterals:
    def test_double_quoted_string(self):
        tokens = tokenize('where Name = "LocusLink"')
        assert tokens[-2].kind == "STRING"
        assert tokens[-2].text == "LocusLink"

    def test_single_quoted_string(self):
        tokens = tokenize("'Homo sapiens'")
        assert tokens[0].text == "Homo sapiens"

    def test_doubled_quote_escape(self):
        tokens = tokenize("'5''-flanking'")
        assert tokens[0].text == "5'-flanking"

    def test_unterminated_string(self):
        with pytest.raises(LorelSyntaxError):
            tokenize('"no closing quote')

    def test_integer(self):
        tokens = tokenize("2354")
        assert tokens[0].kind == "INTEGER"

    def test_real(self):
        tokens = tokenize("3.25")
        assert tokens[0].kind == "REAL"
        assert tokens[0].text == "3.25"

    def test_negative_number_after_operator(self):
        tokens = tokenize("x = -5")
        assert tokens[2].kind == "INTEGER"
        assert tokens[2].text == "-5"

    def test_oid_literal(self):
        tokens = tokenize("&442")
        assert tokens[0].kind == "OID"
        assert tokens[0].text == "442"

    def test_bare_ampersand_rejected(self):
        with pytest.raises(LorelSyntaxError):
            tokenize("& x")


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "!=", "<>", "<", "<=", ">", ">="])
    def test_each_operator(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].kind == "OP"
        assert tokens[1].text == op

    def test_maximal_munch(self):
        tokens = tokenize("a<=b")
        assert tokens[1].text == "<="

    def test_unexpected_character(self):
        with pytest.raises(LorelSyntaxError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2


class TestWildcardNames:
    def test_percent_in_name(self):
        tokens = tokenize("Sou%ce")
        assert tokens[0].kind == "NAME"
        assert tokens[0].text == "Sou%ce"

    def test_hash_as_name(self):
        tokens = tokenize("#.Name")
        assert tokens[0].text == "#"
        assert tokens[1].kind == "DOT"
