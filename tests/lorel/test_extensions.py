"""Tests for the Lorel extensions: order by and count aggregates."""

import pytest

from repro.lorel import LorelEngine, parse
from repro.lorel.errors import LorelSyntaxError
from repro.oem import OEMGraph


@pytest.fixture
def engine():
    graph = OEMGraph()
    root = graph.build(
        {
            "Entry": [
                {"Name": "gamma", "Size": 30},
                {"Name": "alpha", "Size": 10},
                {"Name": "beta", "Size": 20},
                {"Name": "delta"},  # no Size: sorts last
            ]
        }
    )
    graph.set_root("DB", root)
    engine = LorelEngine()
    engine.register("DB", graph, root)
    return engine


class TestOrderByParsing:
    def test_parse_asc_default(self):
        query = parse("select X from DB.Entry X order by X.Name")
        assert query.order_by is not None
        assert not query.order_by.descending

    def test_parse_desc(self):
        query = parse("select X from DB.Entry X order by X.Size desc")
        assert query.order_by.descending

    def test_unparse_fixpoint(self):
        text = "select X from DB.Entry X order by X.Size desc"
        once = parse(text).unparse()
        assert parse(once).unparse() == once

    def test_order_requires_by(self):
        with pytest.raises(LorelSyntaxError):
            parse("select X from DB.Entry X order X.Name")


class TestOrderByEvaluation:
    def test_string_ordering(self, engine):
        result = engine.query(
            "select X from DB.Entry X order by X.Name"
        )
        names = [
            engine.workspace.child_value(obj, "Name")
            for obj in result.objects()
        ]
        assert names == ["alpha", "beta", "delta", "gamma"]

    def test_numeric_ordering(self, engine):
        result = engine.query(
            "select X from DB.Entry X order by X.Size"
        )
        sizes = [
            engine.workspace.child_value(obj, "Size")
            for obj in result.objects()
        ]
        # delta has no Size and sorts last.
        assert sizes == [10, 20, 30, None]

    def test_descending(self, engine):
        result = engine.query(
            "select X from DB.Entry X order by X.Size desc"
        )
        sizes = [
            engine.workspace.child_value(obj, "Size")
            for obj in result.objects()
        ]
        assert sizes == [None, 30, 20, 10]

    def test_ordering_atomic_projection(self, engine):
        result = engine.query(
            "select X.Name from DB.Entry X order by Name"
        )
        assert result.values() == ["alpha", "beta", "delta", "gamma"]


class TestCountAggregate:
    def test_count_objects(self, engine):
        result = engine.query("select count(X) from DB.Entry X")
        assert result.values("count") == [4]

    def test_count_path(self, engine):
        # Only three entries have a Size.
        result = engine.query("select count(X.Size) from DB.Entry X")
        assert result.values("count") == [3]

    def test_count_with_where(self, engine):
        result = engine.query(
            "select count(X) from DB.Entry X where X.Size >= 20"
        )
        assert result.values("count") == [2]

    def test_count_alias(self, engine):
        result = engine.query(
            "select count(X) as Total from DB.Entry X"
        )
        assert result.values("Total") == [1 + 3]

    def test_count_is_new_object(self, engine):
        before = len(engine.workspace)
        result = engine.query("select count(X) from DB.Entry X")
        count_object = result.objects("count")[0]
        assert count_object.oid > before  # freshly created

    def test_mixed_aggregate_and_plain(self, engine):
        result = engine.query(
            "select X.Name, count(X) from DB.Entry X"
        )
        assert len(result.objects("Name")) == 4
        assert result.values("count") == [4]

    def test_count_parse_errors(self):
        with pytest.raises(LorelSyntaxError):
            parse("select count X from DB.Entry X")
        with pytest.raises(LorelSyntaxError):
            parse("select count(X from DB.Entry X")

    def test_count_unparse_fixpoint(self):
        text = "select count(X.Size) as N from DB.Entry X"
        once = parse(text).unparse()
        assert parse(once).unparse() == once


class TestSubqueries:
    @pytest.fixture
    def two_db_engine(self):
        graph = OEMGraph()
        root = graph.build(
            {
                "Entry": [
                    {"Name": "alpha", "Size": 10},
                    {"Name": "beta", "Size": 20},
                    {"Name": "gamma", "Size": 30},
                ]
            }
        )
        graph.set_root("DB", root)
        favorites = OEMGraph()
        favorites_root = favorites.build(
            {"Pick": [{"Name": "beta"}, {"Name": "gamma"}]}
        )
        favorites.set_root("Favorites", favorites_root)
        engine = LorelEngine()
        engine.register("DB", graph, root)
        engine.register("Favorites", favorites, favorites_root)
        return engine

    def test_in_subquery(self, two_db_engine):
        result = two_db_engine.query(
            "select X.Size from DB.Entry X "
            "where X.Name in (select P.Name from Favorites.Pick P)"
        )
        assert sorted(result.values()) == [20, 30]

    def test_not_in_subquery(self, two_db_engine):
        result = two_db_engine.query(
            "select X.Name from DB.Entry X "
            "where X.Name not in (select P.Name from Favorites.Pick P)"
        )
        assert result.values() == ["alpha"]

    def test_subquery_with_where(self, two_db_engine):
        result = two_db_engine.query(
            "select X.Name from DB.Entry X where X.Size in "
            "(select Y.Size from DB.Entry Y where Y.Name = 'beta')"
        )
        assert result.values() == ["beta"]

    def test_subquery_unparse_fixpoint(self):
        text = (
            "select X from DB.Entry X "
            "where X.Name in (select P.Name from F.Pick P)"
        )
        once = parse(text).unparse()
        assert parse(once).unparse() == once

    def test_empty_subquery_result(self, two_db_engine):
        result = two_db_engine.query(
            "select X from DB.Entry X where X.Name in "
            "(select P.Name from Favorites.Pick P where P.Name = 'nope')"
        )
        assert len(result) == 0

    def test_unterminated_subquery_rejected(self):
        with pytest.raises(LorelSyntaxError):
            parse(
                "select X from DB X where X.a in "
                "(select Y from F Y"
            )


class TestKeywordLabels:
    """Edge labels in semi-structured data may collide with keywords."""

    def test_keyword_after_dot_is_a_label(self):
        query = parse("select X.count from DB.Entry X")
        assert query.select_items[0].path.segments == ("count",)
        assert query.select_items[0].aggregate is None

    def test_order_as_label(self):
        query = parse(
            "select X from DB.Entry X where X.order = 1"
        )
        assert query.where.left.segments == ("order",)

    def test_keyword_label_evaluates(self):
        graph = OEMGraph()
        root = graph.build({"Entry": [{"order": 7}]})
        graph.set_root("DB", root)
        engine = LorelEngine()
        engine.register("DB", graph, root)
        result = engine.query("select X.order from DB.Entry X")
        assert result.values() == [7]
