"""Tests for Lorel evaluation over OEM workspaces."""

import pytest

from repro.lorel import LorelEngine, LorelEvaluationError
from repro.oem import OEMGraph


@pytest.fixture
def engine():
    """An engine with a small ANNODA-GML-shaped database registered."""
    graph = OEMGraph("gml")
    root = graph.build(
        {
            "Source": [
                {
                    "SourceID": 103,
                    "Name": "LocusLink",
                    "Content": {"EntryCount": 3},
                    "Structure": {"Model": "OML"},
                },
                {
                    "SourceID": 203,
                    "Name": "GO",
                    "Content": {"EntryCount": 5},
                    "Structure": {"Model": "OML"},
                },
                {
                    "SourceID": 303,
                    "Name": "OMIM",
                    "Content": {"EntryCount": 2},
                    "Structure": {"Model": "OML"},
                },
            ]
        }
    )
    graph.set_root("ANNODA-GML", root)
    engine = LorelEngine()
    engine.register("ANNODA-GML", graph, root)
    return engine


class TestPaperExample:
    def test_section_4_1_query(self, engine):
        result = engine.query(
            'select X from ANNODA-GML.Source X where X.Name = "LocusLink"'
        )
        assert len(result) == 1
        selected = result.objects("Source")[0]
        assert engine.workspace.child_value(selected, "SourceID") == 103
        # The answer object is new (fresh oid, complex).
        assert result.answer.is_complex
        assert result.answer.oid != selected.oid

    def test_answer_children_match_paper_listing(self, engine):
        result = engine.query(
            'select X from ANNODA-GML.Source X where X.Name = "LocusLink"'
        )
        selected = result.objects()[0]
        assert selected.labels() == [
            "SourceID",
            "Name",
            "Content",
            "Structure",
        ]

    def test_answer_registered_and_renamed(self, engine):
        first = engine.query("select X from ANNODA-GML.Source X")
        second = engine.query("select X from ANNODA-GML.Source X")
        assert first.answer_name == "answer"
        assert second.answer_name == "answer2"
        assert engine.workspace.root("answer") is first.answer

    def test_answer_reusable_in_later_queries(self, engine):
        engine.query(
            'select X from ANNODA-GML.Source X where X.Name = "LocusLink"'
        )
        reuse = engine.query(
            "select Y.SourceID from answer.Source Y"
        )
        assert reuse.values("SourceID") == [103]

    def test_answer_references_original_objects(self, engine):
        result = engine.query(
            'select X from ANNODA-GML.Source X where X.Name = "GO"'
        )
        original = engine.workspace.root("ANNODA-GML")
        source_oids = {
            ref.oid for ref in original.refs_with_label("Source")
        }
        assert result.objects()[0].oid in source_oids


class TestProjectionsAndLabels:
    def test_dotted_path_keeps_last_label(self, engine):
        result = engine.query("select X.Name from ANNODA-GML.Source X")
        assert sorted(result.values("Name")) == ["GO", "LocusLink", "OMIM"]

    def test_alias_overrides_label(self, engine):
        result = engine.query(
            "select X.Name as SourceName from ANNODA-GML.Source X"
        )
        assert result.labels() == ["SourceName"]

    def test_bare_variable_inherits_from_path_label(self, engine):
        result = engine.query("select X from ANNODA-GML.Source X")
        assert result.labels() == ["Source"]

    def test_multiple_select_items(self, engine):
        result = engine.query(
            "select X.Name, X.SourceID from ANNODA-GML.Source X"
        )
        assert len(result.objects("Name")) == 3
        assert len(result.objects("SourceID")) == 3

    def test_nested_projection(self, engine):
        result = engine.query(
            "select X.Content.EntryCount from ANNODA-GML.Source X"
        )
        assert sorted(result.values()) == [2, 3, 5]


class TestWhereSemantics:
    def test_numeric_comparison(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X "
            "where X.Content.EntryCount > 2"
        )
        assert sorted(result.values()) == ["GO", "LocusLink"]

    def test_coerced_comparison(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X where X.SourceID = '103'"
        )
        assert result.values() == ["LocusLink"]

    def test_like(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X where X.Name like 'O%'"
        )
        assert result.values() == ["OMIM"]

    def test_in(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X "
            "where X.Name in ('GO', 'OMIM')"
        )
        assert sorted(result.values()) == ["GO", "OMIM"]

    def test_exists_on_missing_path(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X where exists X.Missing"
        )
        assert result.values() == []

    def test_not_exists(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X "
            "where not exists X.Missing"
        )
        assert len(result.values()) == 3

    def test_boolean_connectives(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X "
            "where X.SourceID > 100 and X.SourceID < 300"
        )
        assert sorted(result.values()) == ["GO", "LocusLink"]

    def test_missing_path_comparison_is_false_not_error(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X where X.Missing = 1"
        )
        assert result.values() == []


class TestDependentClauses:
    def test_join_via_variable(self, engine):
        result = engine.query(
            "select C.EntryCount from ANNODA-GML.Source S, S.Content C"
        )
        assert sorted(result.values()) == [2, 3, 5]

    def test_cross_variable_comparison(self, engine):
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X, ANNODA-GML.Source Y "
            "where X.SourceID < Y.SourceID and Y.Name = 'OMIM'"
        )
        assert sorted(result.values()) == ["GO", "LocusLink"]


class TestDuplicatesAndDistinct:
    def test_duplicate_elimination_by_oid(self, engine):
        # Joining Source with itself yields each Name object many times,
        # but the answer holds each oid once.
        result = engine.query(
            "select X.Name from ANNODA-GML.Source X, ANNODA-GML.Source Y"
        )
        assert len(result.values()) == 3

    def test_distinct_eliminates_structural_duplicates(self, engine):
        plain = engine.query("select X.Structure from ANNODA-GML.Source X")
        distinct = engine.query(
            "select distinct X.Structure from ANNODA-GML.Source X"
        )
        # All three sources have structurally identical Structure objects
        # (distinct oids), so distinct collapses them.
        assert len(plain) == 3
        assert len(distinct) == 1


class TestSetOperators:
    def test_union(self, engine):
        result = engine.query(
            "select X from ANNODA-GML.Source X where X.Name = 'GO' "
            "union "
            "select Y from ANNODA-GML.Source Y where Y.Name = 'OMIM'"
        )
        assert len(result) == 2

    def test_except(self, engine):
        result = engine.query(
            "select X from ANNODA-GML.Source X "
            "except "
            "select Y from ANNODA-GML.Source Y where Y.Name = 'OMIM'"
        )
        names = {
            engine.workspace.child_value(obj, "Name")
            for obj in result.objects()
        }
        assert names == {"LocusLink", "GO"}

    def test_intersect(self, engine):
        result = engine.query(
            "select X from ANNODA-GML.Source X where X.SourceID > 150 "
            "intersect "
            "select Y from ANNODA-GML.Source Y where Y.SourceID < 250"
        )
        names = {
            engine.workspace.child_value(obj, "Name")
            for obj in result.objects()
        }
        assert names == {"GO"}


class TestErrors:
    def test_unknown_database(self, engine):
        with pytest.raises(LorelEvaluationError):
            engine.query("select X from NOPE.Source X")

    def test_unknown_variable_in_where(self, engine):
        with pytest.raises(LorelEvaluationError):
            engine.query("select X from ANNODA-GML.Source X where Z.a = 1")


class TestStatistics:
    def test_bindings_counted(self, engine):
        result = engine.query(
            "select X from ANNODA-GML.Source X where X.Name = 'GO'"
        )
        assert result.bindings_evaluated == 3
        assert result.bindings_passed == 1
