"""Tests for Lorel comparison coercion."""

import pytest

from repro.lorel.coerce import comparable_pair, compare, like


class TestComparablePair:
    def test_numeric_pair(self):
        assert comparable_pair(1, 2.5) == (1, 2.5)

    def test_string_number_coercion(self):
        assert comparable_pair("2354", 2354) == (2354, 2354)
        assert comparable_pair(3.5, " 3.5 ") == (3.5, 3.5)

    def test_uncoercible_string(self):
        assert comparable_pair("FOSB", 7) is None

    def test_bool_with_string(self):
        assert comparable_pair(True, "true") == (True, True)
        assert comparable_pair("0", False) == (False, False)

    def test_bytes_pair(self):
        assert comparable_pair(b"a", bytearray(b"a")) == (b"a", b"a")

    def test_bytes_vs_int_uncoercible(self):
        assert comparable_pair(b"a", 1) is None


class TestCompare:
    def test_cross_type_equality(self):
        assert compare("=", "2354", 2354)

    def test_ordering(self):
        assert compare("<", 3, "4")
        assert compare(">=", "10", 10)

    def test_uncoercible_equality_false(self):
        assert not compare("=", "FOSB", 7)

    def test_uncoercible_inequality_true(self):
        # Values of genuinely different kinds are unequal.
        assert compare("!=", "FOSB", 7)

    @pytest.mark.parametrize("op", ["=", "<", "<=", ">", ">="])
    def test_none_pair_non_eq_ops_false(self, op):
        assert not compare(op, b"img", "text")


class TestLike:
    def test_percent(self):
        assert like("BRCA2", "BRCA%")
        assert not like("FOSB", "BRCA%")

    def test_underscore(self):
        assert like("FOSB", "FOS_")
        assert not like("FOS", "FOS_")

    def test_literal_dots_escaped(self):
        assert like("a.b", "a.b")
        assert not like("axb", "a.b")

    def test_non_string_values_false(self):
        assert not like(7, "%")
        assert not like("x", 7)

    def test_full_match_required(self):
        assert not like("xBRCA2", "BRCA%")
