"""Direct tests of schema-element extraction helpers."""

from repro.oem import OEMType
from repro.wrappers.schema import SchemaElement, elements_from_mapping


class TestElementsFromMapping:
    SPECS = {
        "Name": ("name", OEMType.STRING, False, "a name"),
        "Tags": ("tags", OEMType.STRING, True, "some tags"),
        "Score": ("score", OEMType.REAL, False, "a score"),
    }

    def test_samples_respect_limit(self):
        records = [{"name": f"n{i}", "tags": ["a", "b"]} for i in range(9)]
        elements = {
            element.name: element
            for element in elements_from_mapping(
                self.SPECS, records, sample_limit=3
            )
        }
        assert len(elements["Name"].samples) == 3
        assert len(elements["Tags"].samples) <= 3

    def test_empty_values_skipped(self):
        records = [
            {"name": "", "tags": [], "score": None},
            {"name": "real", "tags": ["t"], "score": 0.5},
        ]
        elements = {
            element.name: element
            for element in elements_from_mapping(self.SPECS, records)
        }
        assert elements["Name"].samples == ("real",)
        assert elements["Score"].samples == (0.5,)

    def test_order_follows_specs(self):
        names = [
            element.name
            for element in elements_from_mapping(self.SPECS, [])
        ]
        assert names == ["Name", "Tags", "Score"]

    def test_render(self):
        element = SchemaElement("Tags", OEMType.STRING, True)
        assert element.render() == "Tags[*]: String"
        single = SchemaElement("Name", OEMType.STRING, False)
        assert single.render() == "Name[1]: String"
