"""Tests for the wrapper layer: OML construction, pushdown, schema export."""

import pytest

from repro.mediator.fetch import FetchRequest
from repro.oem import OEMGraph, OEMType, write_figure3
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.errors import QueryError
from repro.wrappers import (
    GoWrapper,
    LocusLinkWrapper,
    OmimWrapper,
    PubmedLikeWrapper,
    default_wrappers,
)


@pytest.fixture(scope="module")
def corpus():
    return AnnotationCorpus.generate(
        seed=3,
        parameters=CorpusParameters(loci=40, go_terms=30, omim_entries=15),
    )


@pytest.fixture(scope="module")
def ll_wrapper(corpus):
    return LocusLinkWrapper(corpus.locuslink)


class TestEntryConstruction:
    def test_figure2_shape(self, ll_wrapper, corpus):
        graph = OEMGraph()
        record = corpus.locuslink.records()[0]
        entry = ll_wrapper.build_entry(graph, record)
        labels = entry.labels()
        for expected in ("LocusID", "Organism", "Symbol", "Description",
                         "Position"):
            assert expected in labels

    def test_types_match_figure3(self, ll_wrapper, corpus):
        graph = OEMGraph()
        record = corpus.locuslink.records()[0]
        entry = ll_wrapper.build_entry(graph, record)
        locus_id = graph.children(entry, "LocusID")[0]
        assert locus_id.type is OEMType.INTEGER
        organism = graph.children(entry, "Organism")[0]
        assert organism.type is OEMType.STRING

    def test_links_are_urls(self, ll_wrapper, corpus):
        graph = OEMGraph()
        record = corpus.locuslink.records()[0]
        entry = ll_wrapper.build_entry(graph, record)
        links = graph.children(entry, "Links")[0]
        assert links.is_complex
        for child in graph.children(links):
            assert child.type is OEMType.URL

    def test_go_links_fan_out(self, ll_wrapper, corpus):
        annotated = next(
            record
            for record in corpus.locuslink.records()
            if len(record["GoIDs"]) >= 2
        )
        graph = OEMGraph()
        entry = ll_wrapper.build_entry(graph, annotated)
        links = graph.children(entry, "Links")[0]
        go_links = links.refs_with_label("GO")
        assert len(go_links) == len(annotated["GoIDs"])

    def test_empty_fields_omitted(self, corpus):
        wrapper = OmimWrapper(corpus.omim)
        unlinked = next(
            (
                record
                for record in corpus.omim.records()
                if not record["GeneSymbols"]
            ),
            None,
        )
        if unlinked is None:
            pytest.skip("all OMIM entries linked at this seed")
        graph = OEMGraph()
        entry = wrapper.build_entry(graph, unlinked)
        assert "GeneSymbol" not in entry.labels()


class TestLocalModel:
    def test_model_has_entry_per_record(self, ll_wrapper, corpus):
        graph, root = ll_wrapper.build_local_model()
        assert len(root.refs_with_label("Locus")) == corpus.locuslink.count()

    def test_fresh_model_root_is_oid_one(self, ll_wrapper):
        graph, root = ll_wrapper.build_local_model()
        assert root.oid == 1

    def test_model_renders_as_figure3(self, ll_wrapper):
        graph, root = ll_wrapper.build_local_model(limit=1)
        text = write_figure3(graph, "LocusLink", root)
        assert text.startswith("LocusLink &1 Complex")
        assert "LocusID" in text and "Integer" in text

    def test_model_cache_tracks_version(self, corpus):
        wrapper = GoWrapper(corpus.go)
        first_graph, _ = wrapper.local_model()
        again_graph, _ = wrapper.local_model()
        assert first_graph is again_graph  # cached

    def test_model_is_valid_oem(self, ll_wrapper):
        graph, _ = ll_wrapper.build_local_model()
        assert graph.validate() == []


class TestPushdown:
    def test_supported_condition_translated(self, ll_wrapper):
        hits = ll_wrapper.fetch(
            FetchRequest((("Organism", "=", "Homo sapiens"),))
        )
        assert hits
        assert all(hit["Organism"] == "Homo sapiens" for hit in hits)

    def test_oml_label_translated_to_source_field(self, ll_wrapper, corpus):
        annotated = next(
            record
            for record in corpus.locuslink.records()
            if record["GoIDs"]
        )
        hits = ll_wrapper.fetch(
            FetchRequest((("GoID", "=", annotated["GoIDs"][0]),))
        )
        assert any(hit["LocusID"] == annotated["LocusID"] for hit in hits)

    def test_supports_reflects_source_capabilities(self, ll_wrapper):
        assert ll_wrapper.supports("LocusID", "=")
        assert ll_wrapper.supports("Description", "contains")
        assert not ll_wrapper.supports("Description", "=")
        assert not ll_wrapper.supports("NoSuchLabel", "=")

    def test_unsupported_condition_raises(self, ll_wrapper):
        with pytest.raises(QueryError):
            ll_wrapper.fetch(FetchRequest((("Description", "=", "x"),)))

    def test_unknown_label_raises(self, ll_wrapper):
        with pytest.raises(QueryError):
            ll_wrapper.source_field("Bogus")


class TestSchemaExport:
    def test_elements_cover_all_labels(self, ll_wrapper):
        names = [element.name for element in ll_wrapper.schema_elements()]
        assert names == [
            "LocusID",
            "Organism",
            "Symbol",
            "Description",
            "Position",
            "Alias",
            "GoID",
            "OmimID",
            "PubmedID",
        ]

    def test_samples_drawn_from_live_data(self, ll_wrapper, corpus):
        elements = {
            element.name: element
            for element in ll_wrapper.schema_elements()
        }
        known_symbols = {
            record["Symbol"] for record in corpus.locuslink.records()
        }
        assert set(elements["Symbol"].samples) <= known_symbols
        assert elements["Symbol"].samples

    def test_multivalued_flag(self, ll_wrapper):
        elements = {
            element.name: element
            for element in ll_wrapper.schema_elements()
        }
        assert elements["GoID"].multivalued
        assert not elements["LocusID"].multivalued


class TestGoWrapperGraphHelpers:
    def test_ancestors_passthrough(self, corpus):
        wrapper = GoWrapper(corpus.go)
        term = next(
            term for term in corpus.go.all_terms() if term.is_a
        )
        assert wrapper.ancestors(term.go_id) == corpus.go.ancestors(
            term.go_id
        )

    def test_obsolete_check(self, corpus):
        wrapper = GoWrapper(corpus.go)
        assert not wrapper.is_obsolete("GO:0000001")
        assert not wrapper.is_obsolete("GO:9999999")
        assert wrapper.exists("GO:0000001")


class TestOmimWrapperSymbolHelpers:
    def test_entries_for_symbol_exact(self, corpus):
        wrapper = OmimWrapper(corpus.omim)
        linked = next(
            entry
            for entry in corpus.omim.all_records()
            if entry.gene_symbols
        )
        symbol = linked.gene_symbols[0]
        hits = wrapper.entries_for_symbol(symbol)
        assert any(hit["MimNumber"] == linked.mim_number for hit in hits)
        assert wrapper.entries_for_symbol(symbol.lower()) == []

    def test_symbols_with_entries(self, corpus):
        wrapper = OmimWrapper(corpus.omim)
        symbols = wrapper.symbols_with_entries()
        for entry in corpus.omim.all_records():
            assert set(entry.gene_symbols) <= symbols


class TestPubmedLikeWrapper:
    def test_citation_model(self, corpus):
        store = corpus.make_citation_store(count=25)
        wrapper = PubmedLikeWrapper(store)
        graph, root = wrapper.build_local_model()
        assert len(root.refs_with_label("Citation")) == 25

    def test_citations_for_locus(self, corpus):
        store = corpus.make_citation_store(count=25)
        wrapper = PubmedLikeWrapper(store)
        cited = next(
            citation
            for citation in store.all_citations()
            if citation.locus_ids
        )
        hits = wrapper.citations_for_locus(cited.locus_ids[0])
        assert any(hit["Pmid"] == cited.pmid for hit in hits)


class TestDefaultWrappers:
    def test_paper_trio(self, corpus):
        wrappers = default_wrappers(corpus)
        assert [wrapper.name for wrapper in wrappers] == [
            "LocusLink",
            "GO",
            "OMIM",
        ]
