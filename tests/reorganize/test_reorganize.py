"""Tests for result re-organization (pivoting, matrices, exports)."""

import csv
import io
import json

import pytest

from repro.core import Annoda
from repro.lorel import LorelEngine
from repro.mediator import GlobalQuery, LinkConstraint
from repro.reorganize import Reorganizer, to_csv, to_json_records
from repro.reorganize.pivot import require_nonempty
from repro.sources.corpus import CorpusParameters
from repro.util.errors import QueryError


@pytest.fixture(scope="module")
def annoda():
    return Annoda.with_default_sources(
        seed=51,
        parameters=CorpusParameters(loci=120, go_terms=70, omim_entries=40),
    )


@pytest.fixture(scope="module")
def result(annoda):
    return annoda.ask(
        GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint("GO", "include", via="AnnotationID"),
                LinkConstraint(
                    "OMIM", "include", via="DiseaseID", symbol_join=True
                ),
            ),
        )
    )


@pytest.fixture(scope="module")
def reorganizer(result):
    return Reorganizer(result)


class TestGrouping:
    def test_by_annotation_covers_all_matches(self, reorganizer, result):
        groups = reorganizer.by_annotation()
        grouped_pairs = {
            (gene_id, go_id)
            for go_id, group in groups.items()
            for gene_id in group["genes"]
        }
        expected_pairs = {
            (gene["GeneID"], go_id)
            for gene in result.genes
            for go_id in gene["_links"]["GO"]
        }
        assert grouped_pairs == expected_pairs

    def test_annotation_titles_from_enrichment(self, reorganizer, annoda):
        groups = reorganizer.by_annotation()
        for go_id, group in groups.items():
            term = annoda.corpus.go.get(go_id)
            assert group["title"] == term.name

    def test_by_disease(self, reorganizer, result):
        groups = reorganizer.by_disease()
        assert groups
        for mim, group in groups.items():
            assert group["genes"]
            for gene_id in group["genes"]:
                assert mim in result.gene(gene_id)["_links"]["OMIM"]

    def test_by_species_partitions_genes(self, reorganizer, result):
        groups = reorganizer.by_species()
        total = sum(len(genes) for genes in groups.values())
        assert total == len(result.genes)

    def test_summary(self, reorganizer, result):
        summary = reorganizer.summary()
        assert summary["genes"] == len(result.genes)
        assert summary["annotation_groups"] > 0
        assert sum(summary["species"].values()) == len(result.genes)


class TestIncidenceMatrix:
    def test_matrix_shape_and_content(self, reorganizer, result):
        gene_ids, go_ids, rows = reorganizer.incidence_matrix("GO")
        assert len(gene_ids) == len(result.genes)
        assert len(rows) == len(gene_ids)
        assert all(len(row) == len(go_ids) for row in rows)
        for i, gene_id in enumerate(gene_ids):
            gene = result.gene(gene_id)
            for j, go_id in enumerate(go_ids):
                expected = 1 if go_id in gene["_links"]["GO"] else 0
                assert rows[i][j] == expected

    def test_row_sums_match_link_counts(self, reorganizer, result):
        gene_ids, _go_ids, rows = reorganizer.incidence_matrix("GO")
        for gene_id, row in zip(gene_ids, rows):
            assert sum(row) == len(result.gene(gene_id)["_links"]["GO"])


class TestPivotView:
    def test_pivot_is_queryable_oem(self, reorganizer):
        graph, root = reorganizer.pivot_view("GO")
        assert graph.validate() == []
        engine = LorelEngine()
        engine.register("PivotView", graph, root)
        answer = engine.query(
            "select G.Key from PivotView.Group G"
        )
        assert len(answer) == len(reorganizer.by_annotation())

    def test_group_members_match(self, reorganizer):
        graph, root = reorganizer.pivot_view("GO")
        groups = reorganizer.by_annotation()
        for group_object in graph.children(root, "Group"):
            key = graph.child_value(group_object, "Key")
            members = [
                child.value
                for child in graph.children(group_object, "GeneID")
            ]
            assert members == groups[key]["genes"]


class TestExports:
    def test_csv_round_trips_through_reader(self, result):
        text = to_csv(result)
        rows = list(csv.reader(io.StringIO(text)))
        header, data = rows[0], rows[1:]
        assert header[0] == "GeneID"
        assert "LinkedGO" in header
        assert len(data) == len(result.genes)
        go_column = header.index("LinkedGO")
        first = result.genes[0]
        assert data[0][go_column] == "|".join(first["_links"]["GO"])

    def test_json_records(self, result):
        records = json.loads(to_json_records(result))
        assert len(records) == len(result.genes)
        assert records[0]["GeneID"] == result.genes[0]["GeneID"]
        assert records[0]["links"]["GO"] == list(
            result.genes[0]["_links"]["GO"]
        )
        assert "_links" not in records[0]

    def test_empty_guard(self, annoda):
        empty = annoda.ask(
            GlobalQuery(
                anchor_source="LocusLink",
                conditions=(),
                links=(
                    LinkConstraint("GO", "include", via="AnnotationID"),
                    LinkConstraint("GO", "exclude", via="AnnotationID"),
                ),
            ),
            enrich_links=False,
        )
        assert len(empty) == 0
        with pytest.raises(QueryError):
            require_nonempty(empty)
