"""Tests for the MDSM matching pipeline and correspondence sets."""

import pytest

from repro.matching import Correspondence, CorrespondenceSet, MdsmMatcher
from repro.matching.mdsm import SimilarityWeights
from repro.oem import OEMType
from repro.util.errors import ConfigurationError, IntegrationError
from repro.wrappers.schema import SchemaElement


def element(name, oem_type=OEMType.STRING, multi=False, samples=()):
    return SchemaElement(name, oem_type, multi, samples=tuple(samples))


@pytest.fixture
def locuslink_elements():
    return [
        element("LocusID", OEMType.INTEGER, samples=(2354, 2360)),
        element("Symbol", samples=("FOSB", "BRCA2")),
        element("Organism", samples=("Homo sapiens",)),
        element("Description", samples=("viral oncogene homolog",)),
    ]


@pytest.fixture
def global_elements():
    return [
        element("GeneID", OEMType.INTEGER, samples=(2354,)),
        element("GeneSymbol", samples=("FOSB",)),
        element("Species", samples=("Homo sapiens",)),
        element("Definition", samples=("viral oncogene homolog",)),
    ]


class TestWeights:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            SimilarityWeights(name=0.9, type=0.9, arity=0.0, samples=0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            SimilarityWeights(name=1.2, type=-0.2, arity=0.0, samples=0.0)


class TestMatcher:
    def test_correct_correspondences_found(
        self, locuslink_elements, global_elements
    ):
        matcher = MdsmMatcher()
        result = matcher.match(
            "LocusLink", locuslink_elements, global_elements
        )
        assert result.to_global("LocusID") == "GeneID"
        assert result.to_global("Symbol") == "GeneSymbol"
        assert result.to_global("Organism") == "Species"
        assert result.to_global("Description") == "Definition"

    def test_threshold_filters_weak_pairs(self):
        matcher = MdsmMatcher(threshold=0.99)
        result = matcher.match(
            "X",
            [element("CompletelyUnrelated", OEMType.GIF)],
            [element("Year", OEMType.INTEGER)],
        )
        assert len(result) == 0

    def test_empty_inputs(self):
        matcher = MdsmMatcher()
        assert len(matcher.match("X", [], [element("A")])) == 0
        assert len(matcher.match("X", [element("A")], [])) == 0

    def test_one_to_one_guarantee(self, locuslink_elements, global_elements):
        matcher = MdsmMatcher(threshold=0.0)
        result = matcher.match(
            "LocusLink", locuslink_elements, global_elements
        )
        globals_used = [c.global_name for c in result]
        assert len(globals_used) == len(set(globals_used))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            MdsmMatcher(strategy="quantum")

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            MdsmMatcher(threshold=1.5)

    def test_hungarian_beats_greedy_on_adversarial_matrix(self):
        # Build elements whose similarity matrix traps greedy: 'AB' is
        # similar to both globals, 'AA' only to the first.
        matcher_hungarian = MdsmMatcher(strategy="hungarian", threshold=0.0)
        matcher_greedy = MdsmMatcher(strategy="greedy", threshold=0.0)
        locals_ = [element("alpha"), element("alphabet")]
        globals_ = [element("alphabets"), element("alpha")]
        matrix = matcher_hungarian.similarity_matrix(locals_, globals_)
        total_h = sum(
            matrix[r][c]
            for r, c in matcher_hungarian._assign_hungarian(matrix)
        )
        total_g = sum(
            matrix[r][c] for r, c in matcher_greedy._assign_greedy(matrix)
        )
        assert total_h >= total_g

    def test_random_strategy_deterministic_by_seed(
        self, locuslink_elements, global_elements
    ):
        a = MdsmMatcher(strategy="random", seed=3, threshold=0.0).match(
            "X", locuslink_elements, global_elements
        )
        b = MdsmMatcher(strategy="random", seed=3, threshold=0.0).match(
            "X", locuslink_elements, global_elements
        )
        assert list(a) == list(b)


class TestScoring:
    def test_perfect_match_scores_one(self):
        correspondences = [
            Correspondence("A", "GA", 0.9),
            Correspondence("B", "GB", 0.8),
        ]
        scores = MdsmMatcher.score_against(
            correspondences, {"A": "GA", "B": "GB"}
        )
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_partial_match(self):
        correspondences = [
            Correspondence("A", "GA", 0.9),
            Correspondence("B", "WRONG", 0.8),
        ]
        scores = MdsmMatcher.score_against(
            correspondences, {"A": "GA", "B": "GB"}
        )
        assert scores["precision"] == 0.5
        assert scores["recall"] == 0.5

    def test_empty_prediction(self):
        scores = MdsmMatcher.score_against([], {"A": "GA"})
        assert scores["f1"] == 0.0


class TestCorrespondenceSet:
    def test_lookups(self):
        cs = CorrespondenceSet(
            "S", [Correspondence("Symbol", "GeneSymbol", 0.8)]
        )
        assert cs.to_global("Symbol") == "GeneSymbol"
        assert cs.to_local("GeneSymbol") == "Symbol"
        assert cs.to_global("Nope") is None

    def test_label_map_skips_identity(self):
        cs = CorrespondenceSet(
            "S",
            [
                Correspondence("Symbol", "GeneSymbol", 0.8),
                Correspondence("Organism", "Organism", 0.9),
            ],
        )
        assert cs.label_map() == {"Symbol": "GeneSymbol"}

    def test_duplicate_local_rejected(self):
        with pytest.raises(IntegrationError):
            CorrespondenceSet(
                "S",
                [
                    Correspondence("A", "G1", 0.5),
                    Correspondence("A", "G2", 0.5),
                ],
            )

    def test_duplicate_global_rejected(self):
        with pytest.raises(IntegrationError):
            CorrespondenceSet(
                "S",
                [
                    Correspondence("A", "G", 0.5),
                    Correspondence("B", "G", 0.5),
                ],
            )

    def test_render(self):
        cs = CorrespondenceSet(
            "S", [Correspondence("Symbol", "GeneSymbol", 0.8)]
        )
        assert "Symbol -> GeneSymbol" in cs.render()
