"""Tests for the MDSM similarity metrics."""

import pytest

from repro.matching import (
    combined_similarity,
    levenshtein,
    name_similarity,
    sample_similarity,
    type_similarity,
)
from repro.matching.mdsm import SimilarityWeights
from repro.matching.similarity import arity_similarity, tokenize_name
from repro.oem import OEMType
from repro.wrappers.schema import SchemaElement


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xy", 2),
            ("kitten", "sitting", 3),
            ("symbol", "symbols", 1),
            ("flaw", "lawn", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetric(self):
        assert levenshtein("locus", "locusid") == levenshtein(
            "locusid", "locus"
        )


class TestTokenize:
    def test_camel_case_split(self):
        assert "gene" in tokenize_name("GeneSymbol")

    def test_underscores_and_hyphens(self):
        assert tokenize_name("mim_number") == tokenize_name("mim-number")

    def test_synonyms_canonicalized(self):
        assert tokenize_name("LocusID")[-1] == tokenize_name("MimNumber")[-1]


class TestNameSimilarity:
    def test_identity(self):
        assert name_similarity("Symbol", "Symbol") == 1.0

    def test_case_insensitive_identity(self):
        assert name_similarity("SYMBOL", "symbol") == 1.0

    def test_synonym_tokens_score_high(self):
        assert name_similarity("GeneSymbol", "Symbol") >= 0.5

    def test_unrelated_scores_low(self):
        assert name_similarity("Organism", "Year") < 0.4

    def test_empty_names(self):
        assert name_similarity("", "x") == 0.0

    def test_ordering_sensible(self):
        # Title~Name are declared synonyms; Title vs Organism are not.
        assert name_similarity("Title", "Name") > name_similarity(
            "Title", "Organism"
        )


class TestTypeSimilarity:
    def test_identical(self):
        assert type_similarity(OEMType.INTEGER, OEMType.INTEGER) == 1.0

    def test_numeric_family(self):
        assert type_similarity(OEMType.INTEGER, OEMType.REAL) == 0.7

    def test_textual_family(self):
        assert type_similarity(OEMType.STRING, OEMType.URL) == 0.7

    def test_string_weakly_compatible(self):
        assert type_similarity(OEMType.STRING, OEMType.INTEGER) == 0.3

    def test_disjoint(self):
        assert type_similarity(OEMType.GIF, OEMType.INTEGER) == 0.0


class TestSampleSimilarity:
    def test_no_evidence_is_neutral(self):
        assert sample_similarity((), ()) == 0.5

    def test_one_sided_evidence_is_neutral(self):
        assert sample_similarity(("a",), ()) == 0.5

    def test_disjoint_evidence_is_zero(self):
        assert sample_similarity(("a",), ("b",)) == 0.0

    def test_jaccard(self):
        assert sample_similarity(("a", "b"), ("b", "c")) == pytest.approx(
            1 / 3
        )

    def test_stringified_comparison(self):
        assert sample_similarity((1, 2), ("1", "2")) == 1.0


class TestCombined:
    def test_matching_elements_score_high(self):
        weights = SimilarityWeights()
        local = SchemaElement(
            "Symbol", OEMType.STRING, False, samples=("FOSB", "BRCA2")
        )
        global_element = SchemaElement(
            "GeneSymbol", OEMType.STRING, False, samples=("FOSB",)
        )
        assert combined_similarity(local, global_element, weights) > 0.5

    def test_mismatched_elements_score_low(self):
        weights = SimilarityWeights()
        local = SchemaElement(
            "Year", OEMType.INTEGER, False, samples=(1996,)
        )
        global_element = SchemaElement(
            "Organism", OEMType.STRING, True, samples=("Homo sapiens",)
        )
        assert combined_similarity(local, global_element, weights) < 0.35

    def test_arity(self):
        assert arity_similarity(True, True) == 1.0
        assert arity_similarity(True, False) == 0.0
