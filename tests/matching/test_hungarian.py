"""Tests for the from-scratch Hungarian method."""

import pytest

from repro.matching import solve_assignment, solve_max_assignment
from repro.util.errors import ConfigurationError


class TestSquare:
    def test_trivial_1x1(self):
        assignment, cost = solve_assignment([[5]])
        assert assignment == [(0, 0)]
        assert cost == 5

    def test_identity_optimal(self):
        matrix = [
            [1, 10, 10],
            [10, 1, 10],
            [10, 10, 1],
        ]
        assignment, cost = solve_assignment(matrix)
        assert assignment == [(0, 0), (1, 1), (2, 2)]
        assert cost == 3

    def test_permutation_needed(self):
        matrix = [
            [10, 1],
            [1, 10],
        ]
        assignment, cost = solve_assignment(matrix)
        assert assignment == [(0, 1), (1, 0)]
        assert cost == 2

    def test_classic_example(self):
        # A standard textbook instance with optimum 140 + 49 + 69 = ...
        matrix = [
            [250, 400, 350],
            [400, 600, 350],
            [200, 400, 250],
        ]
        _, cost = solve_assignment(matrix)
        assert cost == 950  # 400 + 350 + 200

    def test_ties_still_optimal(self):
        matrix = [
            [1, 1],
            [1, 1],
        ]
        assignment, cost = solve_assignment(matrix)
        assert cost == 2
        assert len(assignment) == 2

    def test_negative_costs(self):
        matrix = [
            [-5, 0],
            [0, -5],
        ]
        _, cost = solve_assignment(matrix)
        assert cost == -10

    def test_float_costs(self):
        matrix = [
            [0.1, 0.9],
            [0.9, 0.15],
        ]
        assignment, cost = solve_assignment(matrix)
        assert assignment == [(0, 0), (1, 1)]
        assert cost == pytest.approx(0.25)


class TestRectangular:
    def test_wide_matrix_assigns_all_rows(self):
        matrix = [
            [9, 1, 9, 9],
            [9, 9, 1, 9],
        ]
        assignment, cost = solve_assignment(matrix)
        assert assignment == [(0, 1), (1, 2)]
        assert cost == 2

    def test_tall_matrix_assigns_all_columns(self):
        matrix = [
            [9, 9],
            [1, 9],
            [9, 1],
        ]
        assignment, cost = solve_assignment(matrix)
        assert assignment == [(1, 0), (2, 1)]
        assert cost == 2

    def test_empty_matrix(self):
        assignment, cost = solve_assignment([])
        assert assignment == []
        assert cost == 0.0


class TestValidation:
    def test_ragged_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_assignment([[1, 2], [3]])

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_assignment([[float("inf")]])
        with pytest.raises(ConfigurationError):
            solve_assignment([[float("nan")]])


class TestMaximization:
    def test_max_assignment_picks_high_scores(self):
        matrix = [
            [0.9, 0.1],
            [0.1, 0.9],
        ]
        assignment, total = solve_max_assignment(matrix)
        assert assignment == [(0, 0), (1, 1)]
        assert total == pytest.approx(1.8)

    def test_max_assignment_global_not_greedy(self):
        # Greedy takes (0,0)=0.9 then is forced to (1,1)=0.0 -> 0.9.
        # Optimal is (0,1)+(1,0) = 0.8 + 0.8 = 1.6.
        matrix = [
            [0.9, 0.8],
            [0.8, 0.0],
        ]
        assignment, total = solve_max_assignment(matrix)
        assert total == pytest.approx(1.6)
        assert assignment == [(0, 1), (1, 0)]
