"""Tests for the multi-source corpus builder and conflict injection."""

import pytest

from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def corpus():
    return AnnotationCorpus.generate(
        seed=7,
        parameters=CorpusParameters(loci=120, go_terms=80, omim_entries=40),
    )


@pytest.fixture(scope="module")
def conflicted_corpus():
    return AnnotationCorpus.generate(
        seed=11,
        parameters=CorpusParameters(
            loci=200, go_terms=120, omim_entries=60, conflict_rate=0.4
        ),
    )


class TestParameters:
    def test_rate_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            CorpusParameters(go_annotation_rate=1.5)

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ConfigurationError):
            CorpusParameters(go_terms=2)


class TestConsistency:
    def test_sizes(self, corpus):
        assert corpus.locuslink.count() == 120
        assert corpus.go.count() == 80
        assert corpus.omim.count() == 40

    def test_deterministic(self):
        parameters = CorpusParameters(loci=30, go_terms=20, omim_entries=10)
        a = AnnotationCorpus.generate(seed=5, parameters=parameters)
        b = AnnotationCorpus.generate(seed=5, parameters=parameters)
        assert a.locuslink.dump() == b.locuslink.dump()
        assert a.go.dump() == b.go.dump()
        assert a.omim.dump() == b.omim.dump()

    def test_go_links_resolve(self, corpus):
        for record in corpus.locuslink.all_records():
            for go_id in record.go_ids:
                assert corpus.go.get(go_id) is not None

    def test_omim_links_are_bidirectional(self, corpus):
        for record in corpus.locuslink.all_records():
            for mim in record.omim_ids:
                entry = corpus.omim.get(mim)
                assert entry is not None
                assert record.symbol in entry.gene_symbols

    def test_linked_entries_retitled(self, corpus):
        for entry in corpus.omim.all_records():
            if entry.gene_symbols:
                assert not entry.title.startswith("PHENOTYPE ENTRY")

    def test_ontology_valid(self, corpus):
        assert corpus.go.validate() == []


class TestGroundTruth:
    def test_truth_matches_stores_without_conflicts(self, corpus):
        truth = corpus.ground_truth
        for record in corpus.locuslink.all_records():
            assert set(record.go_ids) == truth.go_by_locus[record.locus_id]
            # Locus-side MIM references never exceed the truth; the gap
            # is the omim-only associations recorded via symbols.
            assert set(record.omim_ids) <= truth.omim_by_locus[
                record.locus_id
            ]

    def test_omim_only_associations_exist(self, corpus):
        """Some associations live only on the OMIM side (via symbol)."""
        truth = corpus.ground_truth
        omim_only = [
            (record.locus_id, mim)
            for record in corpus.locuslink.all_records()
            for mim in truth.omim_by_locus[record.locus_id]
            if mim not in record.omim_ids
        ]
        assert omim_only
        for locus_id, mim in omim_only:
            entry = corpus.omim.get(mim)
            record = corpus.locuslink.get(locus_id)
            assert record.symbol in entry.gene_symbols

    def test_figure5b_expected_set(self, corpus):
        expected = corpus.ground_truth.figure5b_expected()
        assert expected  # the flagship query has answers at this scale
        with_go = corpus.ground_truth.loci_with_go()
        with_omim = corpus.ground_truth.loci_with_omim()
        assert expected == with_go - with_omim

    def test_no_conflicts_by_default(self, corpus):
        assert corpus.ground_truth.conflicts == []


class TestConflictInjection:
    def test_conflicts_recorded(self, conflicted_corpus):
        kinds = {c.kind for c in conflicted_corpus.ground_truth.conflicts}
        assert len(conflicted_corpus.ground_truth.conflicts) >= 10
        # At this rate and scale all four kinds should materialize.
        assert kinds == {
            "symbol_case",
            "symbol_alias",
            "stale_go",
            "dangling_omim",
        }

    def test_symbol_conflicts_break_naive_join(self, conflicted_corpus):
        truth = conflicted_corpus.ground_truth
        broken = [
            c
            for c in truth.conflicts
            if c.kind in ("symbol_case", "symbol_alias")
        ]
        assert broken
        for conflict in broken:
            record = conflicted_corpus.locuslink.get(conflict.locus_id)
            # The official symbol no longer appears in at least one
            # truly associated OMIM entry.
            misses = [
                mim
                for mim in truth.omim_by_locus[conflict.locus_id]
                if conflicted_corpus.omim.get(mim) is not None
                and record.symbol
                not in conflicted_corpus.omim.get(mim).gene_symbols
            ]
            assert misses

    def test_ground_truth_unchanged_by_conflicts(self, conflicted_corpus):
        # Conflicts mangle spellings, never the intended associations.
        truth = conflicted_corpus.ground_truth
        for conflict in truth.conflicts:
            if conflict.kind in ("symbol_case", "symbol_alias"):
                assert truth.omim_by_locus[conflict.locus_id]

    def test_dangling_omim_points_nowhere(self, conflicted_corpus):
        for conflict in conflicted_corpus.ground_truth.conflicts:
            if conflict.kind == "dangling_omim":
                record = conflicted_corpus.locuslink.get(conflict.locus_id)
                dangling = [
                    mim
                    for mim in record.omim_ids
                    if conflicted_corpus.omim.get(mim) is None
                ]
                assert dangling

    def test_stale_go_is_obsolete(self, conflicted_corpus):
        for conflict in conflicted_corpus.ground_truth.conflicts:
            if conflict.kind == "stale_go":
                record = conflicted_corpus.locuslink.get(conflict.locus_id)
                assert any(
                    conflicted_corpus.go.get(go_id) is not None
                    and conflicted_corpus.go.get(go_id).obsolete
                    for go_id in record.go_ids
                )


class TestExtras:
    def test_citation_store(self, corpus):
        citations = corpus.make_citation_store(count=50)
        assert citations.count() == 50
        pool = set(corpus.locuslink.locus_ids())
        for record in citations.all_citations():
            assert set(record.locus_ids) <= pool

    def test_sources_ordering(self, corpus):
        assert [source.name for source in corpus.sources()] == [
            "LocusLink",
            "GO",
            "OMIM",
        ]

    def test_describe(self, corpus):
        assert "120 loci" in corpus.describe()
