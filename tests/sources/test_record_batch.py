"""Tests for the columnar RecordBatch and the batch fetch path.

The columnar representation must be an invisible optimization:
``native_query_batch`` returns exactly ``native_query``'s records in
the same order for every supported condition list, and the batch
round-trips ragged record dicts losslessly.
"""

import pytest

from repro.sources.base import NativeCondition
from repro.sources.batch import BATCH_PAYLOAD_SCHEMA, RecordBatch
from repro.sources.locuslink import LocusRecord
from repro.sources.locuslink.store import LocusLinkStore


@pytest.fixture()
def store():
    return LocusLinkStore(
        [
            LocusRecord(
                locus_id=2354,
                organism="Homo sapiens",
                symbol="FOSB",
                description="FBJ murine osteosarcoma viral oncogene",
                go_ids=["GO:0003700", "GO:0005634"],
                omim_ids=[164772],
            ),
            LocusRecord(
                locus_id=11303,
                organism="Mus musculus",
                symbol="Abcd1",
                description="ATP-binding cassette transporter",
                go_ids=["GO:0005634"],
            ),
            LocusRecord(
                locus_id=7157,
                organism="Homo sapiens",
                symbol="TP53",
                description="tumor protein p53",
                omim_ids=[191170],
            ),
        ]
    )


RAGGED = [
    {"a": 1, "b": "x"},
    {"b": None, "c": [1, 2]},
    {},
    {"a": None},
]


class TestConstruction:
    def test_from_records_first_seen_field_order(self):
        batch = RecordBatch.from_records(RAGGED)
        assert batch.fields == ("a", "b", "c")
        assert len(batch) == 4

    def test_ragged_round_trip(self):
        assert RecordBatch.from_records(RAGGED).to_records() == RAGGED

    def test_absent_vs_none_distinction(self):
        batch = RecordBatch.from_records(RAGGED)
        values, present = batch.column_pair("a")
        assert values == [1, None, None, None]
        assert present == [True, False, False, True]

    def test_empty(self):
        batch = RecordBatch.empty(("a", "b"))
        assert len(batch) == 0
        assert batch.to_records() == []

    def test_from_columns_defaults_to_all_present(self):
        batch = RecordBatch.from_columns(
            ("a", "b"), {"a": [1, 2], "b": [None, "y"]}
        )
        assert batch.to_records() == [
            {"a": 1, "b": None},
            {"a": 2, "b": "y"},
        ]

    def test_from_columns_rejects_ragged_columns(self):
        with pytest.raises(ValueError):
            RecordBatch.from_columns(("a", "b"), {"a": [1], "b": []})


class TestAccess:
    def test_values_of_unknown_field_is_all_none(self):
        batch = RecordBatch.from_records(RAGGED)
        assert batch.values("zzz") == [None] * 4

    def test_cell_get_semantics(self):
        batch = RecordBatch.from_records(RAGGED)
        assert batch.cell("a", 0) == 1
        assert batch.cell("a", 1, default="gone") == "gone"
        assert batch.cell("zzz", 0, default=7) == 7

    def test_present_values(self):
        batch = RecordBatch.from_records(RAGGED)
        assert batch.present_values("b") == ["x", None]

    def test_typed_accessors(self):
        batch = RecordBatch.from_records(
            [{"n": "3", "f": 1}, {"n": 4, "f": None}]
        )
        assert batch.ints("n") == [3, 4]
        assert batch.floats("f") == [1.0, None]
        assert batch.strings("n") == ["3", "4"]

    def test_record_at_and_iter(self):
        batch = RecordBatch.from_records(RAGGED)
        assert batch.record_at(2) == {}
        assert list(batch.iter_records()) == RAGGED

    def test_borrow_records_shares_adopted_dicts(self):
        records = [{"a": 1}, {"a": 2, "b": "x"}]
        lazy = RecordBatch.from_records(records)
        borrowed = lazy.borrow_records()
        assert all(
            got is original for got, original in zip(borrowed, records)
        )
        # A projecting batch must still hide unselected fields ...
        projected = RecordBatch.from_records(records, fields=("a",))
        assert projected.borrow_records() == [{"a": 1}, {"a": 2}]
        # ... and a materialized batch has no originals left to share.
        materialized = RecordBatch.from_records(records).extend_fields(
            ["c"]
        )
        rebuilt = materialized.borrow_records()
        assert rebuilt == records  # "c" is all-absent: not in records
        assert all(
            got is not original
            for got, original in zip(rebuilt, records)
        )


class TestOperators:
    def test_take_gathers_in_order(self):
        batch = RecordBatch.from_records(RAGGED)
        assert batch.take([3, 0]).to_records() == [RAGGED[3], RAGGED[0]]

    def test_filter_by_mask(self):
        batch = RecordBatch.from_records(RAGGED)
        kept = batch.filter([True, False, False, True])
        assert kept.to_records() == [RAGGED[0], RAGGED[3]]

    def test_filter_rejects_wrong_length_mask(self):
        with pytest.raises(ValueError):
            RecordBatch.from_records(RAGGED).filter([True])

    def test_extend_fields_adds_absent_columns(self):
        batch = RecordBatch.from_records([{"a": 1}]).extend_fields(
            ["b", "a"]
        )
        assert batch.fields == ("a", "b")
        assert batch.to_records() == [{"a": 1}]

    def test_equality(self):
        assert RecordBatch.from_records(RAGGED) == (
            RecordBatch.from_records(RAGGED)
        )
        assert RecordBatch.from_records(RAGGED) != (
            RecordBatch.from_records(RAGGED[:2])
        )


class TestPayload:
    def test_payload_round_trip(self):
        batch = RecordBatch.from_records(RAGGED)
        payload = batch.to_payload()
        assert payload["schema"] == BATCH_PAYLOAD_SCHEMA
        assert RecordBatch.from_payload(payload) == batch

    def test_unknown_schema_rejected(self):
        payload = RecordBatch.from_records(RAGGED).to_payload()
        payload["schema"] = 999
        with pytest.raises(ValueError):
            RecordBatch.from_payload(payload)


class TestNativeQueryBatch:
    CONDITION_SETS = [
        [],
        [NativeCondition("Organism", "=", "Homo sapiens")],
        [NativeCondition("LocusID", "=", 2354)],
        [NativeCondition("LocusID", "in", [2354, 7157])],
        [
            NativeCondition("Organism", "=", "Homo sapiens"),
            NativeCondition("Symbol", "=", "TP53"),
        ],
    ]

    @pytest.mark.parametrize("use_index", [True, False])
    def test_batch_equals_record_path(self, store, use_index):
        for conditions in self.CONDITION_SETS:
            batch = store.native_query_batch(
                conditions, use_index=use_index
            )
            assert batch.to_records() == store.native_query(
                conditions, use_index=use_index
            ), conditions

    def test_batch_counts_the_same_fetch_stats(self, store):
        store.native_query_batch(
            [NativeCondition("LocusID", "=", 2354)], use_index=True
        )
        stats = store.fetch_stats()
        assert stats["index_hits"] == 1
        store.native_query_batch([], use_index=False)
        assert store.fetch_stats()["scan_queries"] == 1

    def test_scan_path_sees_in_place_mutation(self, store):
        """Stores mutated in place (no version bump) stay visible to
        columnar scans, exactly like record-at-a-time scans."""
        store.native_query_batch([])  # warm the per-version caches
        record = store.get(2354)
        record.pubmed_ids.append(99999)
        [mutated] = [
            r
            for r in store.native_query_batch([]).to_records()
            if r["LocusID"] == 2354
        ]
        assert 99999 in mutated["PubmedIDs"]

    def test_mutation_invalidates_the_column_cache(self, store):
        before = store.native_query_batch(
            [NativeCondition("Organism", "=", "Homo sapiens")]
        )
        store.add(LocusRecord(locus_id=1, organism="Homo sapiens",
                              symbol="NEW", description="added"))
        after = store.native_query_batch(
            [NativeCondition("Organism", "=", "Homo sapiens")]
        )
        assert len(after) == len(before) + 1
