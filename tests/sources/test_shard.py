"""Tests for key-range sharding behind the DataSource contract.

``ShardedSource`` must be an invisible partitioning: byte-identical
native-query answers (both paths, both representations), freshness
across base mutations (lazy repartition keyed on the base version),
snapshot export/adopt through the sharded envelope, and monotone fetch
accounting across repartitions.
"""

import pytest

from repro.sources.base import NativeCondition
from repro.sources.corpus import AnnotationCorpus, CorpusParameters
from repro.sources.locuslink import LocusRecord
from repro.sources.shard import ShardedSource, SourceShard


@pytest.fixture(scope="module")
def corpus():
    return AnnotationCorpus.generate(
        seed=29,
        parameters=CorpusParameters(
            loci=90, go_terms=60, omim_entries=30, conflict_rate=0.2
        ),
    )


CONDITION_SHAPES = [
    (),
    (NativeCondition("Organism", "=", "Homo sapiens"),),
    (NativeCondition("LocusID", "=", 1003),),
    (NativeCondition("LocusID", "in", (1001, 1005, 1040, 999999)),),
    (NativeCondition("Description", "contains", "kinase"),),
    (
        NativeCondition("Organism", "=", "Homo sapiens"),
        NativeCondition("Description", "contains", "protein"),
    ),
]


class TestQueryEquivalence:
    @pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
    @pytest.mark.parametrize(
        "conditions", CONDITION_SHAPES, ids=lambda c: str(len(c))
    )
    def test_native_query_matches_base(self, corpus, shard_count,
                                       conditions):
        base = corpus.locuslink
        sharded = ShardedSource(base, shard_count)
        for use_index in (True, False):
            assert sharded.native_query(
                conditions, use_index=use_index
            ) == base.native_query(conditions, use_index=use_index)

    @pytest.mark.parametrize("shard_count", [1, 3, 4])
    @pytest.mark.parametrize(
        "conditions", CONDITION_SHAPES, ids=lambda c: str(len(c))
    )
    def test_batch_twin_matches_base(self, corpus, shard_count,
                                     conditions):
        base = corpus.locuslink
        sharded = ShardedSource(base, shard_count)
        ours = sharded.native_query_batch(conditions)
        reference = base.native_query_batch(conditions)
        assert ours.fields == reference.fields
        assert ours.to_records() == reference.to_records()

    def test_shards_partition_the_extent(self, corpus):
        sharded = ShardedSource(corpus.go, 4)
        pieces = [shard.records() for shard in sharded.shards()]
        flattened = [record for piece in pieces for record in piece]
        assert flattened == corpus.go.records()
        assert sum(len(piece) for piece in pieces) == corpus.go.count()

    def test_shard_query_slices_the_answer(self, corpus):
        sharded = ShardedSource(corpus.omim, 3)
        conditions = ()
        slices = [
            sharded.shard_query(index, conditions)
            for index in range(sharded.shard_count)
        ]
        assert [
            record for piece in slices for record in piece
        ] == corpus.omim.native_query(conditions)

    def test_rejects_empty_grid(self, corpus):
        with pytest.raises(ValueError):
            ShardedSource(corpus.locuslink, 0)


class TestDelegation:
    def test_contract_surface_delegates_to_base(self, corpus):
        base = corpus.locuslink
        sharded = ShardedSource(base, 4)
        assert sharded.name == base.name
        assert sharded.version == base.version
        assert sharded.count() == base.count()
        assert tuple(sharded.fields()) == tuple(base.fields())
        assert sharded.indexed_fields() == base.indexed_fields()
        assert set(sharded.capabilities()) == set(base.capabilities())
        assert sharded.records() == base.records()

    def test_store_specific_methods_pass_through(self, corpus):
        sharded = ShardedSource(corpus.locuslink, 2)
        some_id = corpus.locuslink.locus_ids()[0]
        assert sharded.get(some_id) == corpus.locuslink.get(some_id)

    def test_dunder_lookup_never_recurses(self, corpus):
        sharded = ShardedSource(corpus.locuslink, 2)
        with pytest.raises(AttributeError):
            sharded._no_such_private_attr


class TestFreshness:
    def test_repartitions_when_base_mutates(self):
        store_corpus = AnnotationCorpus.generate(
            seed=5,
            parameters=CorpusParameters(
                loci=20, go_terms=10, omim_entries=5
            ),
        )
        base = store_corpus.locuslink
        sharded = ShardedSource(base, 2)
        before = sharded.native_query(())
        assert before == base.native_query(())
        base.add(
            LocusRecord(
                locus_id=424242,
                organism="Homo sapiens",
                symbol="NEW1",
                description="added after partitioning",
            )
        )
        after = sharded.native_query(())
        assert after == base.native_query(())
        assert len(after) == len(before) + 1
        assert sharded.version == base.version

    def test_fetch_stats_monotone_across_repartition(self):
        store_corpus = AnnotationCorpus.generate(
            seed=6,
            parameters=CorpusParameters(
                loci=20, go_terms=10, omim_entries=5
            ),
        )
        base = store_corpus.locuslink
        sharded = ShardedSource(base, 2)
        sharded.native_query(
            (NativeCondition("Organism", "=", "Homo sapiens"),),
            use_index=True,
        )
        before = sharded.fetch_stats()
        assert before["index_hits"] + before["scan_queries"] > 0
        base.add(
            LocusRecord(
                locus_id=434343,
                organism="Mus musculus",
                symbol="NEW2",
                description="forces a repartition",
            )
        )
        sharded.native_query(())
        after = sharded.fetch_stats()
        for key, value in before.items():
            assert after.get(key, 0) >= value


class TestShardSnapshots:
    def test_export_adopt_round_trip(self, corpus):
        base = corpus.locuslink
        warm = ShardedSource(base, 4)
        # Warm every partition's indexes, then export.
        warm.native_query(
            (NativeCondition("Organism", "=", "Homo sapiens"),),
            use_index=True,
        )
        state = warm.export_index_state()
        assert state["shard_count"] == 4
        assert len(state["shards"]) == 4

        cold = ShardedSource(base, 4)
        assert cold.adopt_index_state(state) is True
        stats = cold.fetch_stats()
        assert stats["index_adoptions"] > 0
        cold.native_query(
            (NativeCondition("Organism", "=", "Homo sapiens"),),
            use_index=True,
        )
        stats = cold.fetch_stats()
        assert stats["index_builds"] == 0
        assert stats["index_hits"] > 0

    def test_adopt_rejects_wrong_grid(self, corpus):
        state = ShardedSource(corpus.locuslink, 4).export_index_state()
        other = ShardedSource(corpus.locuslink, 2)
        assert other.adopt_index_state(state) is False

    def test_adopt_rejects_wrong_source(self, corpus):
        state = ShardedSource(corpus.locuslink, 2).export_index_state()
        other = ShardedSource(corpus.go, 2)
        assert other.adopt_index_state(state) is False

    def test_adopt_rejects_garbage(self, corpus):
        sharded = ShardedSource(corpus.locuslink, 2)
        assert sharded.adopt_index_state(None) is False
        assert sharded.adopt_index_state({"schema": 999}) is False


class TestSourceShard:
    def test_records_are_fresh_copies(self, corpus):
        shard = ShardedSource(corpus.locuslink, 2).shard(0)
        assert isinstance(shard, SourceShard)
        first = shard.records()
        first[0]["Symbol"] = "MUTATED"
        assert shard.records()[0]["Symbol"] != "MUTATED"

    def test_shard_names_the_partition(self, corpus):
        sharded = ShardedSource(corpus.locuslink, 3)
        assert [shard.name for shard in sharded.shards()] == [
            f"{corpus.locuslink.name}#shard{index}/3"
            for index in range(3)
        ]
