"""Persistent equality-index snapshots: round trip, validation,
corruption fallback, and cold-start accounting.

The contract under test (DESIGN §9): a store reloaded from a snapshot
with a valid persisted index state answers every indexed query
oid-for-oid identically to the in-memory original *without a single
index rebuild*; any mismatch or corruption — truncated file, digest
mismatch, stale version, future schema — falls back to lazy rebuild
with a warning, never a wrong answer, never a crash.
"""

import json
import pickle
import threading

import pytest

from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.base import (
    FETCH_COUNTER_SCHEMA,
    INDEX_STATE_SCHEMA,
    NativeCondition,
)
from repro.sources.persistence import (
    MANIFEST_NAME,
    _REGISTRY,
    adopt_persisted_indexes,
    load_manifest,
    load_stores,
    save_corpus,
)


@pytest.fixture(scope="module")
def corpus():
    return AnnotationCorpus.generate(
        seed=181,
        parameters=CorpusParameters(loci=60, go_terms=40, omim_entries=20),
    )


@pytest.fixture(scope="module")
def originals(corpus):
    """All five stores, with citations wired before any index exists
    (citation generation mutates locus records in place)."""
    citations = corpus.make_citation_store(count=40)
    proteins = corpus.make_protein_store()
    return {
        store.name: store
        for store in list(corpus.sources()) + [citations, proteins]
    }


@pytest.fixture()
def snapshot_dir(originals, corpus, tmp_path):
    save_corpus(
        corpus,
        tmp_path,
        citations=originals["PubMed"],
        proteins=originals["SwissProt"],
    )
    return tmp_path


def _present_values(store, field, limit=3):
    """Up to ``limit`` distinct live values of an indexed field."""
    values = []
    for record in store.records():
        value = record.get(field)
        items = value if isinstance(value, (list, tuple)) else [value]
        for item in items:
            if item is not None and item not in values:
                values.append(item)
        if len(values) >= limit:
            break
    return values[:limit]


def _probe_conditions(store):
    """One ``=`` and one ``in`` probe per indexed field with data."""
    probes = []
    for field in store.indexed_fields():
        values = _present_values(store, field)
        if not values:
            continue
        probes.append(NativeCondition(field, "=", values[0]))
        probes.append(
            NativeCondition(field, "in", tuple(values) + ("##no-such##",))
        )
    return probes


def _assert_identical_answers(fresh, original):
    for condition in _probe_conditions(original):
        assert fresh.native_query([condition]) == original.native_query(
            [condition]
        ), condition.render()


class TestExportAdopt:
    def test_round_trip_identical_answers_all_five_stores(self, originals):
        for name, original in originals.items():
            state = original.export_index_state()
            _file, store_class = _REGISTRY[name]
            fresh = store_class.from_text(original.dump())
            assert fresh.adopt_index_state(state), name
            _assert_identical_answers(fresh, original)
            stats = fresh.fetch_stats()
            assert stats["index_builds"] == 0, name
            assert stats["index_adoptions"] == len(state["fields"]), name

    def test_constructor_and_from_text_adopt(self, originals):
        for name, original in originals.items():
            state = original.export_index_state()
            _file, store_class = _REGISTRY[name]
            fresh = store_class.from_text(
                original.dump(), index_state=state
            )
            _assert_identical_answers(fresh, original)
            assert fresh.fetch_stats()["index_builds"] == 0

    def test_constructor_warns_on_mismatched_state(self, originals):
        original = originals["LocusLink"]
        state = original.export_index_state()
        state["record_count"] += 1
        _file, store_class = _REGISTRY["LocusLink"]
        with pytest.warns(RuntimeWarning, match="rebuilt lazily"):
            fresh = store_class.from_text(
                original.dump(), index_state=state
            )
        _assert_identical_answers(fresh, original)
        assert fresh.fetch_stats()["index_adoptions"] == 0

    def test_adopt_rejects_wrong_record_count(self, originals):
        original = originals["OMIM"]
        state = original.export_index_state()
        state["record_count"] -= 1
        fresh = _REGISTRY["OMIM"][1].from_text(original.dump())
        assert not fresh.adopt_index_state(state)
        _assert_identical_answers(fresh, original)

    def test_adopt_rejects_wrong_source(self, originals):
        state = originals["LocusLink"].export_index_state()
        assert not originals["OMIM"].adopt_index_state(state)

    def test_adopt_rejects_future_schema(self, originals):
        state = originals["GO"].export_index_state()
        state["schema"] = INDEX_STATE_SCHEMA + 1
        fresh = _REGISTRY["GO"][1].from_text(originals["GO"].dump())
        assert not fresh.adopt_index_state(state)

    def test_adopt_rejects_future_counter_schema(self, originals):
        state = originals["GO"].export_index_state()
        state["counter_schema"] = FETCH_COUNTER_SCHEMA + 1
        fresh = _REGISTRY["GO"][1].from_text(originals["GO"].dump())
        assert not fresh.adopt_index_state(state)

    @pytest.mark.parametrize(
        "garbage",
        [None, "not a dict", 7, {}, {"schema": INDEX_STATE_SCHEMA},
         {"schema": INDEX_STATE_SCHEMA, "counter_schema": 0,
          "source": "PubMed", "record_count": 40, "fields": 5}],
    )
    def test_adopt_never_raises_on_garbage(self, originals, garbage):
        fresh = _REGISTRY["PubMed"][1].from_text(originals["PubMed"].dump())
        assert fresh.adopt_index_state(garbage) is False
        _assert_identical_answers(fresh, originals["PubMed"])

    def test_mutation_discards_adopted_state(self, originals):
        from repro.sources.pubmedlike.citation import Citation

        original = originals["PubMed"]
        fresh = _REGISTRY["PubMed"][1].from_text(
            original.dump(), index_state=original.export_index_state()
        )
        assert fresh.fetch_stats()["index_builds"] == 0
        fresh.add(
            Citation(pmid=999_999, title="late arrival",
                     journal="Nature", year=2004, locus_ids=[])
        )
        [hit] = fresh.native_query(
            [NativeCondition("Pmid", "=", 999_999)]
        )
        assert hit["Title"] == "late arrival"
        # The version bump discarded the adopted state: the index that
        # answered was rebuilt over the mutated extent.
        assert fresh.fetch_stats()["index_builds"] >= 1

    def test_adopted_index_is_thread_safe(self, originals):
        original = originals["LocusLink"]
        fresh = _REGISTRY["LocusLink"][1].from_text(
            original.dump(), index_state=original.export_index_state()
        )
        probes = _probe_conditions(original)
        expected = [original.native_query([probe]) for probe in probes]
        failures = []

        def worker():
            for probe, want in zip(probes, expected):
                if fresh.native_query([probe]) != want:
                    failures.append(probe.render())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestPersistedSnapshots:
    def test_save_writes_index_files_and_manifest_keys(
        self, snapshot_dir, originals
    ):
        manifest = load_manifest(snapshot_dir)
        for name, entry in manifest["sources"].items():
            index = entry["index"]
            assert (snapshot_dir / index["file"]).is_file()
            assert index["schema"] == INDEX_STATE_SCHEMA
            assert index["version"] == originals[name].version
            assert len(index["digest"]) == 64
            assert len(index["data_digest"]) == 64

    def test_load_adopts_with_zero_rebuilds(self, snapshot_dir, originals):
        stores = load_stores(snapshot_dir)
        for name, original in originals.items():
            _assert_identical_answers(stores[name], original)
        assert (
            sum(s.fetch_stats()["index_builds"] for s in stores.values())
            == 0
        )
        assert all(
            s.fetch_stats()["index_adoptions"] > 0 for s in stores.values()
        )

    def test_save_without_indexes(self, corpus, originals, tmp_path):
        manifest = save_corpus(
            corpus, tmp_path,
            citations=originals["PubMed"],
            proteins=originals["SwissProt"],
            indexes=False,
        )
        assert all(
            "index" not in entry for entry in manifest["sources"].values()
        )
        assert not list(tmp_path.glob("*.idx"))
        stores = load_stores(tmp_path)
        _assert_identical_answers(
            stores["LocusLink"], originals["LocusLink"]
        )

    def test_adopt_persisted_indexes_explicitly(
        self, snapshot_dir, originals
    ):
        stores = load_stores(snapshot_dir, adopt_indexes=False)
        assert all(
            s.fetch_stats()["index_adoptions"] == 0
            for s in stores.values()
        )
        adopted = adopt_persisted_indexes(snapshot_dir, stores)
        assert adopted == {name: True for name in originals}
        _assert_identical_answers(stores["OMIM"], originals["OMIM"])
        assert stores["OMIM"].fetch_stats()["index_builds"] == 0


def _edit_manifest(directory, mutate):
    manifest = load_manifest(directory)
    mutate(manifest)
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest), encoding="utf-8"
    )


class TestCorruptionFallback:
    """Every corruption falls back to lazy rebuild: a warning, then
    answers identical to a fresh parse — never stale index data."""

    def _assert_falls_back(self, directory, originals, source="LocusLink"):
        with pytest.warns(RuntimeWarning, match="rebuilt lazily"):
            stores = load_stores(directory)
        fresh = stores[source]
        assert fresh.fetch_stats()["index_adoptions"] == 0
        _assert_identical_answers(fresh, originals[source])
        assert fresh.fetch_stats()["index_builds"] > 0
        return stores

    def test_truncated_index_file(self, snapshot_dir, originals):
        path = snapshot_dir / "locuslink.ll_tmpl.idx"
        path.write_bytes(path.read_bytes()[:64])
        self._assert_falls_back(snapshot_dir, originals)

    def test_tampered_index_file(self, snapshot_dir, originals):
        path = snapshot_dir / "locuslink.ll_tmpl.idx"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        self._assert_falls_back(snapshot_dir, originals)

    def test_missing_index_file(self, snapshot_dir, originals):
        (snapshot_dir / "locuslink.ll_tmpl.idx").unlink()
        self._assert_falls_back(snapshot_dir, originals)

    def test_stale_version(self, snapshot_dir, originals):
        _edit_manifest(
            snapshot_dir,
            lambda m: m["sources"]["LocusLink"]["index"].__setitem__(
                "version",
                m["sources"]["LocusLink"]["index"]["version"] + 1,
            ),
        )
        self._assert_falls_back(snapshot_dir, originals)

    def test_future_index_schema(self, snapshot_dir, originals):
        _edit_manifest(
            snapshot_dir,
            lambda m: m["sources"]["LocusLink"]["index"].__setitem__(
                "schema", 99
            ),
        )
        self._assert_falls_back(snapshot_dir, originals)

    def test_undecodable_payload_with_matching_digest(
        self, snapshot_dir, originals
    ):
        import hashlib

        garbage = b"\x80\x05definitely not a pickle"
        (snapshot_dir / "locuslink.ll_tmpl.idx").write_bytes(garbage)
        _edit_manifest(
            snapshot_dir,
            lambda m: m["sources"]["LocusLink"]["index"].__setitem__(
                "digest", hashlib.sha256(garbage).hexdigest()
            ),
        )
        self._assert_falls_back(snapshot_dir, originals)

    def test_payload_for_wrong_store_with_matching_digest(
        self, snapshot_dir, originals
    ):
        import hashlib

        blob = pickle.dumps(originals["OMIM"].export_index_state())
        (snapshot_dir / "locuslink.ll_tmpl.idx").write_bytes(blob)
        _edit_manifest(
            snapshot_dir,
            lambda m: m["sources"]["LocusLink"]["index"].update(
                digest=hashlib.sha256(blob).hexdigest(),
                version=originals["OMIM"].version,
            ),
        )
        self._assert_falls_back(snapshot_dir, originals)

    def test_flat_file_edited_after_snapshot_never_serves_stale_index(
        self, snapshot_dir, originals
    ):
        """The key correctness case: the data changed underneath the
        index.  The edited file must answer from its *own* content."""
        path = snapshot_dir / "locuslink.ll_tmpl"
        text = path.read_text(encoding="utf-8")
        symbol = originals["LocusLink"].records()[0]["Symbol"]
        edited = text.replace(symbol, "ZZT9X")
        assert edited != text
        path.write_text(edited, encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="flat file changed"):
            stores = load_stores(snapshot_dir)
        fresh = stores["LocusLink"]
        assert fresh.native_query(
            [NativeCondition("Symbol", "=", "ZZT9X")]
        ), "edited content must be queryable"
        assert not fresh.native_query(
            [NativeCondition("Symbol", "=", symbol)]
        ), "stale index must not resurrect the old symbol"
