"""Tests for cross-source integrity auditing."""

import pytest

from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.integrity import IntegrityAuditor


@pytest.fixture(scope="module")
def clean_corpus():
    return AnnotationCorpus.generate(
        seed=101,
        parameters=CorpusParameters(loci=100, go_terms=60, omim_entries=40),
    )


@pytest.fixture(scope="module")
def conflicted_corpus():
    return AnnotationCorpus.generate(
        seed=103,
        parameters=CorpusParameters(
            loci=250, go_terms=120, omim_entries=80, conflict_rate=0.5
        ),
    )


def stores_of(corpus, citations=None, proteins=None):
    stores = {
        "LocusLink": corpus.locuslink,
        "GO": corpus.go,
        "OMIM": corpus.omim,
    }
    if citations is not None:
        stores["PubMed"] = citations
    if proteins is not None:
        stores["SwissProt"] = proteins
    return stores


class TestCleanCorpus:
    def test_no_findings(self, clean_corpus):
        report = IntegrityAuditor(stores_of(clean_corpus)).audit()
        assert report.count() == 0
        assert report.checked_references > 0

    def test_five_source_clean(self, clean_corpus):
        citations = clean_corpus.make_citation_store(count=40)
        proteins = clean_corpus.make_protein_store()
        report = IntegrityAuditor(
            stores_of(clean_corpus, citations, proteins)
        ).audit()
        assert report.count() == 0

    def test_render_mentions_counts(self, clean_corpus):
        report = IntegrityAuditor(stores_of(clean_corpus)).audit()
        assert "0 findings" in report.render()


class TestConflictedCorpus:
    def test_injected_conflicts_detected(self, conflicted_corpus):
        report = IntegrityAuditor(stores_of(conflicted_corpus)).audit()
        truth_kinds = {
            conflict.kind
            for conflict in conflicted_corpus.ground_truth.conflicts
        }
        finding_kinds = set(report.kinds())
        if "stale_go" in truth_kinds:
            assert "obsolete_go_annotation" in finding_kinds
        if "dangling_omim" in truth_kinds:
            assert "dangling_omim_reference" in finding_kinds
        if "symbol_case" in truth_kinds:
            assert "case_variant_symbol" in finding_kinds
        if "symbol_alias" in truth_kinds:
            assert "alias_symbol" in finding_kinds

    def test_finding_counts_match_injections(self, conflicted_corpus):
        report = IntegrityAuditor(stores_of(conflicted_corpus)).audit()
        truth = conflicted_corpus.ground_truth
        injected_dangling = sum(
            1 for c in truth.conflicts if c.kind == "dangling_omim"
        )
        assert report.count("dangling_omim_reference") == injected_dangling
        injected_case = sum(
            1 for c in truth.conflicts if c.kind == "symbol_case"
        )
        assert report.count("case_variant_symbol") >= injected_case

    def test_render_limit(self, conflicted_corpus):
        report = IntegrityAuditor(stores_of(conflicted_corpus)).audit()
        rendered = report.render(limit=3)
        if report.count() > 3:
            assert "more" in rendered


class TestPartialFederations:
    def test_missing_sources_skip_their_audits(self, conflicted_corpus):
        report = IntegrityAuditor(
            {"LocusLink": conflicted_corpus.locuslink}
        ).audit()
        assert report.count() == 0
        assert report.checked_references == 0

    def test_symbol_disagreement_detected(self, clean_corpus):
        proteins = clean_corpus.make_protein_store()
        curated = next(
            record
            for record in proteins.all_records()
            if record.locus_id
        )
        curated.gene_symbol = "WRONG99"
        try:
            report = IntegrityAuditor(
                stores_of(clean_corpus, proteins=proteins)
            ).audit()
            assert report.count("symbol_disagreement") == 1
        finally:
            locus = clean_corpus.locuslink.get(curated.locus_id)
            curated.gene_symbol = locus.symbol
