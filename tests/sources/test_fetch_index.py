"""Tests for the source-level equality-index fetch path.

The hash index must be an invisible optimization: same answers as the
scan (including Lorel's coercing equality), invalidated by any store
mutation, and accounted in ``fetch_stats``.
"""

import pytest

from repro.sources.base import DataSource, NativeCondition
from repro.sources.locuslink import LocusRecord
from repro.sources.locuslink.store import LocusLinkStore
from repro.util.errors import QueryError


@pytest.fixture()
def store():
    return LocusLinkStore(
        [
            LocusRecord(
                locus_id=2354,
                organism="Homo sapiens",
                symbol="FOSB",
                description="FBJ murine osteosarcoma viral oncogene",
                go_ids=["GO:0003700", "GO:0005634"],
                omim_ids=[164772],
            ),
            LocusRecord(
                locus_id=11303,
                organism="Mus musculus",
                symbol="Abcd1",
                description="ATP-binding cassette transporter",
                go_ids=["GO:0005634"],
            ),
            LocusRecord(
                locus_id=7157,
                organism="Homo sapiens",
                symbol="TP53",
                description="tumor protein p53",
                omim_ids=[191170],
            ),
        ]
    )


class TestIndexedEquality:
    def test_same_answer_as_scan(self, store):
        conditions = [NativeCondition("Organism", "=", "Homo sapiens")]
        assert store.native_query(conditions, use_index=True) == (
            store.native_query(conditions, use_index=False)
        )

    def test_point_lookup(self, store):
        [record] = store.native_query(
            [NativeCondition("LocusID", "=", 2354)], use_index=True
        )
        assert record["Symbol"] == "FOSB"

    def test_string_probe_matches_integer_key(self, store):
        # Lorel's coercing equality: "2354" == 2354.
        [record] = store.native_query(
            [NativeCondition("LocusID", "=", "2354")], use_index=True
        )
        assert record["LocusID"] == 2354

    def test_padded_string_probe_matches_scan_semantics(self, store):
        # "02354" coerces numerically against the integer key, so both
        # paths must agree (and they must keep agreeing if the coercion
        # rules ever change — the index mirrors compare(), not a guess).
        indexed = store.native_query(
            [NativeCondition("LocusID", "=", "02354")], use_index=True
        )
        scan = store.native_query(
            [NativeCondition("LocusID", "=", "02354")], use_index=False
        )
        assert indexed == scan

    def test_list_field_membership(self, store):
        matched = store.native_query(
            [NativeCondition("GoIDs", "=", "GO:0005634")], use_index=True
        )
        assert [record["LocusID"] for record in matched] == [2354, 11303]

    def test_secondary_conditions_filter_index_hits(self, store):
        matched = store.native_query(
            [
                NativeCondition("Organism", "=", "Homo sapiens"),
                NativeCondition("Description", "contains", "p53"),
            ],
            use_index=True,
        )
        assert [record["LocusID"] for record in matched] == [7157]

    def test_records_order_preserved(self, store):
        indexed = store.native_query(
            [NativeCondition("Organism", "=", "Homo sapiens")],
            use_index=True,
        )
        assert [record["LocusID"] for record in indexed] == [2354, 7157]

    def test_unsupported_condition_rejected(self, store):
        with pytest.raises(QueryError):
            store.native_query([NativeCondition("Description", "=", "x")])


class TestInOperator:
    def test_batched_lookup(self, store):
        matched = store.native_query(
            [NativeCondition("LocusID", "in", (7157, 2354))],
            use_index=True,
        )
        assert [record["LocusID"] for record in matched] == [2354, 7157]

    def test_mixed_type_candidates(self, store):
        # String and integer candidates coerce individually.
        matched = store.native_query(
            [NativeCondition("LocusID", "in", ("7157", 2354, 999))],
            use_index=True,
        )
        assert [record["LocusID"] for record in matched] == [2354, 7157]

    def test_same_answer_as_scan(self, store):
        conditions = [NativeCondition("OmimIDs", "in", (191170, "164772"))]
        assert store.native_query(conditions, use_index=True) == (
            store.native_query(conditions, use_index=False)
        )

    def test_empty_candidate_set(self, store):
        assert store.native_query(
            [NativeCondition("LocusID", "in", ())], use_index=True
        ) == []

    def test_value_normalized_to_tuple(self):
        condition = NativeCondition("LocusID", "in", [1, 2])
        assert condition.value == (1, 2)

    def test_string_value_rejected(self):
        # A bare string iterates into characters; reject it outright.
        with pytest.raises(QueryError):
            NativeCondition("Symbol", "in", "FOSB")

    def test_non_iterable_rejected(self):
        with pytest.raises(QueryError):
            NativeCondition("LocusID", "in", 2354)


class TestInvalidation:
    def test_added_record_visible_to_index(self, store):
        assert store.native_query(
            [NativeCondition("LocusID", "=", 555)], use_index=True
        ) == []
        store.add(
            LocusRecord(locus_id=555, organism="Homo sapiens", symbol="NEW1")
        )
        [record] = store.native_query(
            [NativeCondition("LocusID", "=", 555)], use_index=True
        )
        assert record["Symbol"] == "NEW1"

    def test_removed_record_gone_from_index(self, store):
        store.native_query(
            [NativeCondition("LocusID", "=", 7157)], use_index=True
        )
        store.remove(7157)
        assert store.native_query(
            [NativeCondition("LocusID", "=", 7157)], use_index=True
        ) == []

    def test_index_results_are_copies(self, store):
        [record] = store.native_query(
            [NativeCondition("LocusID", "=", 2354)], use_index=True
        )
        record["Symbol"] = "MUTATED"
        [again] = store.native_query(
            [NativeCondition("LocusID", "=", 2354)], use_index=True
        )
        assert again["Symbol"] == "FOSB"


class TestAccounting:
    def test_index_hits_counted(self, store):
        before = store.fetch_stats()["index_hits"]
        store.native_query(
            [NativeCondition("LocusID", "=", 2354)], use_index=True
        )
        assert store.fetch_stats()["index_hits"] == before + 1

    def test_scans_counted(self, store):
        before = store.fetch_stats()["scan_queries"]
        store.native_query(
            [NativeCondition("LocusID", "=", 2354)], use_index=False
        )
        assert store.fetch_stats()["scan_queries"] == before + 1

    def test_use_indexes_flag_forces_scan(self, store):
        store.use_indexes = False
        before = store.fetch_stats()["scan_queries"]
        store.native_query([NativeCondition("LocusID", "=", 2354)])
        assert store.fetch_stats()["scan_queries"] == before + 1

    def test_non_equality_query_scans(self, store):
        before = store.fetch_stats()["scan_queries"]
        store.native_query(
            [NativeCondition("Description", "contains", "p53")]
        )
        assert store.fetch_stats()["scan_queries"] == before + 1


class _UnhashableText(str):
    """A string that cannot be hashed (so it cannot be an index key)."""

    __hash__ = None


class _UnhashableSource(DataSource):
    """A source whose ``Blob`` field holds unhashable values."""

    name = "unhashable"

    def fields(self):
        return ("Key", "Blob")

    def capabilities(self):
        return frozenset({("Key", "="), ("Blob", "=")})

    def records(self):
        return [
            {"Key": 1, "Blob": _UnhashableText("alpha")},
            {"Key": 2, "Blob": _UnhashableText("beta")},
        ]

    def count(self):
        return 2

    @property
    def version(self):
        return 0


class TestUnindexableFallback:
    def test_unhashable_field_falls_back_to_scan(self):
        source = _UnhashableSource()
        [record] = source.native_query(
            [NativeCondition("Blob", "=", "beta")], use_index=True
        )
        assert record["Key"] == 2
        assert source.fetch_stats()["scan_queries"] == 1
        assert source.fetch_stats()["index_hits"] == 0

    def test_hashable_sibling_field_still_indexed(self):
        source = _UnhashableSource()
        source.native_query(
            [NativeCondition("Blob", "=", "alpha")], use_index=True
        )
        [record] = source.native_query(
            [NativeCondition("Key", "=", 2)], use_index=True
        )
        assert record["Key"] == 2
        assert source.fetch_stats()["index_hits"] == 1
