"""Tests for the LocusLink source: record, LL_tmpl format, store, generator."""

import pytest

from repro.sources.base import NativeCondition
from repro.sources.locuslink import (
    LocusLinkGenerator,
    LocusLinkStore,
    LocusRecord,
    parse_ll_tmpl,
    write_ll_tmpl,
)
from repro.util.errors import DataFormatError, QueryError
from repro.util.rng import DeterministicRng


@pytest.fixture
def fosb():
    return LocusRecord(
        locus_id=2354,
        organism="Homo sapiens",
        symbol="FOSB",
        description="FBJ murine osteosarcoma viral oncogene homolog B",
        position="19q13.32",
        aliases=["G0S3"],
        go_ids=["GO:0003700"],
        omim_ids=[164772],
        pubmed_ids=[8889548],
    )


class TestRecord:
    def test_validation_rejects_bad_locus_id(self):
        with pytest.raises(DataFormatError):
            LocusRecord(locus_id=0, organism="Homo sapiens", symbol="A1")

    def test_validation_rejects_empty_symbol(self):
        with pytest.raises(DataFormatError):
            LocusRecord(locus_id=1, organism="Homo sapiens", symbol="")

    def test_web_link_carries_locus_id(self, fosb):
        assert "l=2354" in fosb.web_link()

    def test_as_dict_copies_lists(self, fosb):
        view = fosb.as_dict()
        view["GoIDs"].append("GO:9999999")
        assert fosb.go_ids == ["GO:0003700"]


class TestFormat:
    def test_write_layout(self, fosb):
        text = write_ll_tmpl([fosb])
        lines = text.splitlines()
        assert lines[0] == ">>2354"
        assert "LOCUSID: 2354" in lines
        assert "OFFICIAL_SYMBOL: FOSB" in lines
        assert "GO: GO:0003700" in lines
        assert "OMIM: 164772" in lines

    def test_round_trip(self, fosb):
        parsed = parse_ll_tmpl(write_ll_tmpl([fosb]))
        assert parsed == [fosb]

    def test_round_trip_many(self):
        records = LocusLinkGenerator(DeterministicRng(3)).generate(25)
        assert parse_ll_tmpl(write_ll_tmpl(records)) == records

    def test_empty_input(self):
        assert parse_ll_tmpl("") == []
        assert write_ll_tmpl([]) == ""

    def test_unknown_tags_tolerated(self):
        text = ">>5\nLOCUSID: 5\nORGANISM: Homo sapiens\n" \
               "OFFICIAL_SYMBOL: X1\nNM: NM_006732\n"
        records = parse_ll_tmpl(text)
        assert records[0].symbol == "X1"

    @pytest.mark.parametrize(
        "bad",
        [
            "LOCUSID: 5\n",  # field before separator
            ">>abc\nLOCUSID: 5\n",  # non-numeric separator
            ">>5\nLOCUSID: five\n",  # non-numeric LOCUSID
            ">>5\nORGANISM: Homo sapiens\nOFFICIAL_SYMBOL: X1\n",  # no LOCUSID
            ">>5\nLOCUSID: 6\nORGANISM: H\nOFFICIAL_SYMBOL: X1\n",  # mismatch
            ">>5\nLOCUSID: 5\nbroken line\n",  # untagged line
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(DataFormatError):
            parse_ll_tmpl(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(DataFormatError) as excinfo:
            parse_ll_tmpl(">>5\nLOCUSID: five\n")
        assert excinfo.value.line_number == 2


class TestStore:
    def test_indexes(self, fosb):
        store = LocusLinkStore([fosb])
        assert store.get(2354) is fosb
        assert store.by_symbol("FOSB") == [fosb]
        assert store.get(1) is None

    def test_duplicate_rejected(self, fosb):
        store = LocusLinkStore([fosb])
        with pytest.raises(DataFormatError):
            store.add(fosb)

    def test_remove(self, fosb):
        store = LocusLinkStore([fosb])
        store.remove(2354)
        assert store.count() == 0
        assert store.by_symbol("FOSB") == []
        with pytest.raises(DataFormatError):
            store.remove(2354)

    def test_version_bumps_on_mutation(self, fosb):
        store = LocusLinkStore()
        assert store.version == 0
        store.add(fosb)
        assert store.version == 1
        store.remove(2354)
        assert store.version == 2

    def test_dump_from_text_round_trip(self, fosb):
        store = LocusLinkStore([fosb])
        rebuilt = LocusLinkStore.from_text(store.dump())
        assert rebuilt.records() == store.records()


class TestNativeQuery:
    @pytest.fixture
    def store(self):
        records = LocusLinkGenerator(DeterministicRng(1)).generate(50)
        return LocusLinkStore(records)

    def test_equality_on_key(self, store):
        locus_id = store.locus_ids()[10]
        hits = store.native_query([NativeCondition("LocusID", "=", locus_id)])
        assert [hit["LocusID"] for hit in hits] == [locus_id]

    def test_range_on_key(self, store):
        cutoff = store.locus_ids()[25]
        hits = store.native_query([NativeCondition("LocusID", "<", cutoff)])
        assert len(hits) == 25

    def test_organism_filter(self, store):
        hits = store.native_query(
            [NativeCondition("Organism", "=", "Mus musculus")]
        )
        assert hits
        assert all(hit["Organism"] == "Mus musculus" for hit in hits)

    def test_contains_on_description(self, store):
        hits = store.native_query(
            [NativeCondition("Description", "contains", "kinase")]
        )
        assert all("kinase" in hit["Description"].lower() for hit in hits)

    def test_multivalued_field_equality(self):
        record = LocusRecord(
            locus_id=7,
            organism="Homo sapiens",
            symbol="AB1",
            go_ids=["GO:0000001", "GO:0000002"],
        )
        store = LocusLinkStore([record])
        hits = store.native_query(
            [NativeCondition("GoIDs", "=", "GO:0000002")]
        )
        assert len(hits) == 1

    def test_unsupported_condition_rejected(self, store):
        with pytest.raises(QueryError):
            store.native_query(
                [NativeCondition("Description", "=", "anything")]
            )

    def test_conjunction(self, store):
        cutoff = store.locus_ids()[-1]
        hits = store.native_query(
            [
                NativeCondition("Organism", "=", "Homo sapiens"),
                NativeCondition("LocusID", "<=", cutoff),
            ]
        )
        assert all(hit["Organism"] == "Homo sapiens" for hit in hits)

    def test_describe_mentions_capabilities(self, store):
        description = store.describe()
        assert "LocusLink" in description
        assert "Symbol" in description


class TestGenerator:
    def test_deterministic(self):
        a = LocusLinkGenerator(DeterministicRng(9)).generate(30)
        b = LocusLinkGenerator(DeterministicRng(9)).generate(30)
        assert a == b

    def test_unique_ids_and_symbols(self):
        records = LocusLinkGenerator(DeterministicRng(2)).generate(200)
        ids = [record.locus_id for record in records]
        symbols = [record.symbol for record in records]
        assert len(set(ids)) == len(ids)
        assert len(set(symbols)) == len(symbols)

    def test_organism_mix(self):
        records = LocusLinkGenerator(DeterministicRng(4)).generate(300)
        organisms = {record.organism for record in records}
        assert "Homo sapiens" in organisms
        assert len(organisms) >= 2

    def test_no_links_before_corpus_wiring(self):
        records = LocusLinkGenerator(DeterministicRng(5)).generate(10)
        assert all(not record.go_ids for record in records)
        assert all(not record.omim_ids for record in records)
