"""Tests for the SwissProt-like protein source."""

import pytest

from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.base import NativeCondition
from repro.sources.swissprotlike import (
    ProteinGenerator,
    ProteinRecord,
    ProteinStore,
    parse_dat,
    write_dat,
)
from repro.util.errors import DataFormatError
from repro.util.rng import DeterministicRng


@pytest.fixture
def fosb_protein():
    return ProteinRecord(
        accession="P53539",
        protein_name="Protein fosB",
        organism="Homo sapiens",
        gene_symbol="FOSB",
        locus_id=2354,
        sequence_length=338,
        keywords=["Transcription", "Nuclear protein"],
    )


class TestRecord:
    def test_accession_format_enforced(self):
        with pytest.raises(DataFormatError):
            ProteinRecord(accession="X1", protein_name="p", organism="o")
        with pytest.raises(DataFormatError):
            ProteinRecord(
                accession="p53539", protein_name="p", organism="o"
            )

    def test_name_required(self):
        with pytest.raises(DataFormatError):
            ProteinRecord(accession="P53539", protein_name="", organism="o")

    def test_web_link(self, fosb_protein):
        assert "P53539" in fosb_protein.web_link()


class TestDatFormat:
    def test_write_layout(self, fosb_protein):
        text = write_dat([fosb_protein])
        lines = text.splitlines()
        assert lines[0].startswith("ID   FOSB_HOMSA")
        assert "338 AA." in lines[0]
        assert "AC   P53539" in lines
        assert "DR   LocusLink; 2354" in lines
        assert "KW   Transcription; Nuclear protein" in lines
        assert lines[-1] == "//"

    def test_round_trip(self, fosb_protein):
        assert parse_dat(write_dat([fosb_protein])) == [fosb_protein]

    def test_round_trip_generated(self):
        corpus = AnnotationCorpus.generate(
            seed=2,
            parameters=CorpusParameters(
                loci=40, go_terms=20, omim_entries=10
            ),
        )
        generator = ProteinGenerator(DeterministicRng(5))
        records = generator.generate(corpus.locuslink.all_records())
        assert records
        assert parse_dat(write_dat(records)) == records

    def test_uncurated_entry_has_no_dr_line(self):
        record = ProteinRecord(
            accession="Q12345",
            protein_name="p",
            organism="o",
            gene_symbol="AB1",
        )
        text = write_dat([record])
        assert "DR" not in text
        assert parse_dat(text)[0].locus_id == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "AC   P53539\n//\n",  # field before ID
            "ID   X_Y Reviewed; 10 AA.\nAC   P53539\n",  # missing //
            "ID   X_Y Reviewed; 10 AA.\nID   Z_W Reviewed; 5 AA.\n//\n",
            "//\n",  # terminator without entry
            "ID   X_Y Reviewed; no length\nAC   P53539\n//\n",
            "ID   X_Y Reviewed; 10 AA.\nAC   P53539\n"
            "DE   p\nOS   o\nDR   LocusLink; abc\n//\n",
            "ID   X_Y Reviewed; 10 AA.\nbadline\n//\n",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(DataFormatError):
            parse_dat(bad)

    def test_unknown_line_codes_tolerated(self, fosb_protein):
        text = write_dat([fosb_protein]).replace(
            "//", "SQ   SEQUENCE 338 AA;\n//"
        )
        assert parse_dat(text) == [fosb_protein]


class TestStore:
    def test_indexes(self, fosb_protein):
        store = ProteinStore([fosb_protein])
        assert store.get("P53539") is fosb_protein
        assert store.by_locus(2354) == [fosb_protein]
        assert store.by_locus(1) == []

    def test_duplicate_rejected(self, fosb_protein):
        store = ProteinStore([fosb_protein])
        with pytest.raises(DataFormatError):
            store.add(fosb_protein)

    def test_dump_round_trip(self, fosb_protein):
        store = ProteinStore([fosb_protein])
        assert (
            ProteinStore.from_text(store.dump()).records()
            == store.records()
        )

    def test_native_queries(self, fosb_protein):
        store = ProteinStore([fosb_protein])
        assert store.native_query(
            [NativeCondition("Keywords", "=", "Transcription")]
        )
        assert store.native_query(
            [NativeCondition("SequenceLength", ">=", 300)]
        )
        assert not store.native_query(
            [NativeCondition("SequenceLength", "<", 300)]
        )


class TestGenerator:
    @pytest.fixture(scope="class")
    def corpus(self):
        return AnnotationCorpus.generate(
            seed=3,
            parameters=CorpusParameters(
                loci=100, go_terms=40, omim_entries=20
            ),
        )

    def test_deterministic_via_corpus(self, corpus):
        a = corpus.make_protein_store()
        b = corpus.make_protein_store()
        assert a.dump() == b.dump()

    def test_coverage_and_curation_mix(self, corpus):
        store = corpus.make_protein_store(
            coverage=0.6, uncurated_rate=0.3
        )
        assert 30 <= store.count() <= 90
        curated = [r for r in store.all_records() if r.locus_id]
        uncurated = [r for r in store.all_records() if not r.locus_id]
        assert curated and uncurated

    def test_proteins_reference_real_loci(self, corpus):
        store = corpus.make_protein_store()
        for record in store.all_records():
            if record.locus_id:
                locus = corpus.locuslink.get(record.locus_id)
                assert locus is not None
                assert locus.symbol == record.gene_symbol
