"""Tests for the PubMed-like citation source."""

import pytest

from repro.sources.base import NativeCondition
from repro.sources.pubmedlike import (
    Citation,
    CitationGenerator,
    CitationStore,
    parse_medline,
    write_medline,
)
from repro.util.errors import DataFormatError
from repro.util.rng import DeterministicRng


@pytest.fixture
def citation():
    return Citation(
        pmid=8889548,
        title="Induction of osteosarcoma transformation by FosB.",
        journal="Nature",
        year=1996,
        locus_ids=[2354],
    )


class TestCitation:
    def test_year_range_enforced(self):
        with pytest.raises(DataFormatError):
            Citation(pmid=1, title="T", journal="J", year=2049)

    def test_web_link(self, citation):
        assert "8889548" in citation.web_link()


class TestFormat:
    def test_round_trip(self, citation):
        assert parse_medline(write_medline([citation])) == [citation]

    def test_round_trip_generated(self):
        citations = CitationGenerator(DeterministicRng(1)).generate(
            30, [10, 20, 30]
        )
        assert parse_medline(write_medline(citations)) == citations

    def test_blank_line_separates_citations(self, citation):
        other = Citation(pmid=1, title="T", journal="J", year=2000)
        text = write_medline([citation, other])
        assert parse_medline(text) == [citation, other]

    @pytest.mark.parametrize(
        "bad",
        [
            "TI  - before pmid\n",
            "PMID- abc\n",
            "PMID- 1\nTI  - T\nTA  - J\nDP  - soon\n",
            "PMID- 1\nbroken\n",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(DataFormatError):
            parse_medline(bad)


class TestStore:
    def test_by_locus_index(self, citation):
        store = CitationStore([citation])
        assert store.by_locus(2354) == [citation]
        assert store.by_locus(999) == []

    def test_native_year_range(self, citation):
        store = CitationStore([citation])
        assert store.native_query([NativeCondition("Year", ">=", 1996)])
        assert not store.native_query([NativeCondition("Year", "<", 1996)])

    def test_dump_round_trip(self, citation):
        store = CitationStore([citation])
        assert (
            CitationStore.from_text(store.dump()).records()
            == store.records()
        )


class TestGenerator:
    def test_links_drawn_from_pool(self):
        pool = [5, 10, 15]
        citations = CitationGenerator(DeterministicRng(2)).generate(50, pool)
        for citation in citations:
            assert all(locus in pool for locus in citation.locus_ids)

    def test_empty_pool_allowed(self):
        citations = CitationGenerator(DeterministicRng(3)).generate(5, [])
        assert all(not citation.locus_ids for citation in citations)
