"""Tests for the GO source: term model, OBO format, ontology DAG, generator."""

import pytest

from repro.sources.base import NativeCondition
from repro.sources.go import (
    GoGenerator,
    GoOntology,
    GoTerm,
    NAMESPACES,
    parse_obo,
    write_obo,
)
from repro.sources.go.term import make_go_id
from repro.util.errors import DataFormatError
from repro.util.rng import DeterministicRng


def small_ontology():
    """mf_root <- binding <- dna_binding; binding <- protein_binding."""
    return GoOntology(
        [
            GoTerm("GO:0000001", "molecular_function", "molecular_function"),
            GoTerm(
                "GO:0000002",
                "binding",
                "molecular_function",
                is_a=["GO:0000001"],
            ),
            GoTerm(
                "GO:0000003",
                "DNA binding",
                "molecular_function",
                definition="Interacting selectively with DNA.",
                is_a=["GO:0000002"],
                synonyms=["deoxyribonucleic acid binding"],
            ),
            GoTerm(
                "GO:0000004",
                "protein binding",
                "molecular_function",
                is_a=["GO:0000002"],
            ),
        ]
    )


class TestTerm:
    def test_accession_format_enforced(self):
        with pytest.raises(DataFormatError):
            GoTerm("GO:123", "x", "molecular_function")
        with pytest.raises(DataFormatError):
            GoTerm("0000001", "x", "molecular_function")

    def test_namespace_enforced(self):
        with pytest.raises(DataFormatError):
            GoTerm("GO:0000001", "x", "molecular_funk")

    def test_make_go_id(self):
        assert make_go_id(42) == "GO:0000042"
        with pytest.raises(DataFormatError):
            make_go_id(10**8)

    def test_web_link(self):
        term = GoTerm("GO:0003700", "tf activity", "molecular_function")
        assert "GO:0003700" in term.web_link()


class TestObo:
    def test_write_layout(self):
        text = small_ontology().dump()
        assert text.startswith("format-version: 1.2")
        assert "[Term]" in text
        assert "id: GO:0000003" in text
        assert 'def: "Interacting selectively with DNA."' in text
        assert "is_a: GO:0000002" in text

    def test_round_trip(self):
        ontology = small_ontology()
        rebuilt = GoOntology.from_text(ontology.dump())
        assert rebuilt.records() == ontology.records()

    def test_round_trip_generated(self):
        terms = GoGenerator(DeterministicRng(1)).generate(60)
        assert parse_obo(write_obo(terms)) == terms

    def test_is_a_comment_stripped(self):
        text = (
            "[Term]\nid: GO:0000001\nname: root\n"
            "namespace: molecular_function\n\n"
            "[Term]\nid: GO:0000002\nname: child\n"
            "namespace: molecular_function\nis_a: GO:0000001 ! root\n"
        )
        terms = parse_obo(text)
        assert terms[1].is_a == ["GO:0000001"]

    def test_escaped_quotes_in_def(self):
        term = GoTerm(
            "GO:0000001",
            "root",
            "molecular_function",
            definition='the "root" term \\ backslash',
        )
        rebuilt = parse_obo(write_obo([term]))
        assert rebuilt[0].definition == term.definition

    def test_non_term_stanzas_skipped(self):
        text = (
            "[Typedef]\nid: part_of\nname: part of\n\n"
            "[Term]\nid: GO:0000001\nname: root\n"
            "namespace: molecular_function\n"
        )
        terms = parse_obo(text)
        assert len(terms) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "[Term]\nid: GO:0000001\nname: x\nnamespace: bad_ns\n",
            "[Term]\nname: x\nnamespace: molecular_function\n",
            "[Term]\nid: GO:0000001\nname: x\n"
            "namespace: molecular_function\ndef: unquoted\n",
            "[Term]\nid: GO:0000001\nbroken line\n",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(DataFormatError):
            parse_obo(bad)


class TestOntologyGraph:
    def test_parents_children(self):
        ontology = small_ontology()
        assert [t.go_id for t in ontology.parents("GO:0000003")] == [
            "GO:0000002"
        ]
        assert {t.go_id for t in ontology.children("GO:0000002")} == {
            "GO:0000003",
            "GO:0000004",
        }

    def test_ancestors_transitive(self):
        ontology = small_ontology()
        assert ontology.ancestors("GO:0000003") == {
            "GO:0000002",
            "GO:0000001",
        }

    def test_descendants_transitive(self):
        ontology = small_ontology()
        assert ontology.descendants("GO:0000001") == {
            "GO:0000002",
            "GO:0000003",
            "GO:0000004",
        }

    def test_is_ancestor(self):
        ontology = small_ontology()
        assert ontology.is_ancestor("GO:0000001", "GO:0000004")
        assert not ontology.is_ancestor("GO:0000004", "GO:0000001")

    def test_depth(self):
        ontology = small_ontology()
        assert ontology.depth("GO:0000001") == 0
        assert ontology.depth("GO:0000003") == 2

    def test_roots(self):
        ontology = small_ontology()
        assert [t.go_id for t in ontology.roots()] == ["GO:0000001"]

    def test_search_by_name_includes_synonyms(self):
        ontology = small_ontology()
        assert [
            t.go_id for t in ontology.search_by_name("deoxyribonucleic")
        ] == ["GO:0000003"]
        assert len(ontology.search_by_name("binding")) == 3

    def test_unknown_term_raises(self):
        with pytest.raises(DataFormatError):
            small_ontology().parents("GO:9999999")

    def test_duplicate_rejected(self):
        ontology = small_ontology()
        with pytest.raises(DataFormatError):
            ontology.add(
                GoTerm("GO:0000001", "again", "molecular_function")
            )


class TestValidation:
    def test_well_formed_validates(self):
        assert small_ontology().validate() == []

    def test_missing_parent_detected(self):
        ontology = GoOntology(
            [
                GoTerm(
                    "GO:0000002",
                    "orphan",
                    "molecular_function",
                    is_a=["GO:0000001"],
                )
            ]
        )
        assert any("missing term" in p for p in ontology.validate())

    def test_cross_namespace_edge_detected(self):
        ontology = GoOntology(
            [
                GoTerm("GO:0000001", "root", "molecular_function"),
                GoTerm(
                    "GO:0000002",
                    "child",
                    "biological_process",
                    is_a=["GO:0000001"],
                ),
            ]
        )
        assert any("crosses namespaces" in p for p in ontology.validate())

    def test_cycle_detected(self):
        ontology = GoOntology(
            [
                GoTerm(
                    "GO:0000001",
                    "a",
                    "molecular_function",
                    is_a=["GO:0000002"],
                ),
                GoTerm(
                    "GO:0000002",
                    "b",
                    "molecular_function",
                    is_a=["GO:0000001"],
                ),
            ]
        )
        assert any("cycle" in p for p in ontology.validate())


class TestNativeQuery:
    def test_namespace_filter(self):
        ontology = small_ontology()
        hits = ontology.native_query(
            [NativeCondition("Namespace", "=", "molecular_function")]
        )
        assert len(hits) == 4

    def test_is_a_equality(self):
        ontology = small_ontology()
        hits = ontology.native_query(
            [NativeCondition("IsA", "=", "GO:0000002")]
        )
        assert {hit["GoID"] for hit in hits} == {"GO:0000003", "GO:0000004"}

    def test_name_contains(self):
        ontology = small_ontology()
        hits = ontology.native_query(
            [NativeCondition("Name", "contains", "BINDING")]
        )
        assert len(hits) == 3


class TestGenerator:
    def test_deterministic(self):
        a = GoGenerator(DeterministicRng(6)).generate(100)
        b = GoGenerator(DeterministicRng(6)).generate(100)
        assert a == b

    def test_generated_ontology_is_valid(self):
        terms = GoGenerator(DeterministicRng(7)).generate(250)
        ontology = GoOntology(terms)
        assert ontology.validate() == []

    def test_all_namespaces_rooted(self):
        terms = GoGenerator(DeterministicRng(8)).generate(100)
        ontology = GoOntology(terms)
        for namespace in NAMESPACES:
            assert len(ontology.roots(namespace)) == 1

    def test_some_multi_parent_terms(self):
        terms = GoGenerator(DeterministicRng(9)).generate(300)
        assert any(len(term.is_a) > 1 for term in terms)

    def test_some_obsolete_terms(self):
        terms = GoGenerator(DeterministicRng(10)).generate(500)
        assert any(term.obsolete for term in terms)
