"""Tests for the OMIM source: record, omim.txt format, store, generator."""

import pytest

from repro.sources.base import NativeCondition
from repro.sources.omim import (
    OmimGenerator,
    OmimRecord,
    OmimStore,
    parse_omim_txt,
    write_omim_txt,
)
from repro.util.errors import DataFormatError
from repro.util.rng import DeterministicRng


@pytest.fixture
def fosb_entry():
    return OmimRecord(
        mim_number=164772,
        title="FBJ MURINE OSTEOSARCOMA VIRAL ONCOGENE HOMOLOG B; FOSB",
        gene_symbols=["FOSB"],
        text="FosB is a member of the Fos gene family.",
        inheritance="autosomal dominant",
    )


class TestRecord:
    def test_mim_number_must_be_six_digits(self):
        with pytest.raises(DataFormatError):
            OmimRecord(mim_number=999, title="X")
        with pytest.raises(DataFormatError):
            OmimRecord(mim_number=1000000, title="X")

    def test_title_required(self):
        with pytest.raises(DataFormatError):
            OmimRecord(mim_number=100050, title="")

    def test_web_link(self, fosb_entry):
        assert "164772" in fosb_entry.web_link()


class TestFormat:
    def test_write_layout(self, fosb_entry):
        text = write_omim_txt([fosb_entry])
        lines = text.splitlines()
        assert lines[0] == "*RECORD*"
        assert "*FIELD* NO" in lines
        assert "164772" in lines
        assert "*FIELD* GS" in lines
        assert "FOSB" in lines

    def test_round_trip(self, fosb_entry):
        assert parse_omim_txt(write_omim_txt([fosb_entry])) == [fosb_entry]

    def test_round_trip_generated(self):
        records = OmimGenerator(DeterministicRng(2)).generate(40)
        for index, record in enumerate(records):
            record.gene_symbols = [f"SYM{index}"]
        assert parse_omim_txt(write_omim_txt(records)) == records

    def test_title_prefix_stripped(self):
        text = (
            "*RECORD*\n*FIELD* NO\n164772\n"
            "*FIELD* TI\n164772 SOME TITLE\n"
        )
        assert parse_omim_txt(text)[0].title == "SOME TITLE"

    def test_empty_input(self):
        assert parse_omim_txt("") == []

    @pytest.mark.parametrize(
        "bad",
        [
            "*FIELD* NO\n164772\n",  # field before record
            "*RECORD*\n*FIELD* TI\n164772 T\n",  # missing NO
            "*RECORD*\n*FIELD* NO\nabc\n*FIELD* TI\nT\n",  # non-numeric NO
            "*RECORD*\n*FIELD* NO\n164772\n",  # missing TI
            "*RECORD*\nstray content\n",  # content outside FIELD
            "*RECORD*\n*FIELD*\n164772\n",  # FIELD without tag
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(DataFormatError):
            parse_omim_txt(bad)


class TestStore:
    def test_indexes(self, fosb_entry):
        store = OmimStore([fosb_entry])
        assert store.get(164772) is fosb_entry
        assert store.by_gene_symbol("FOSB") == [fosb_entry]
        assert store.by_gene_symbol("NOPE") == []

    def test_duplicate_rejected(self, fosb_entry):
        store = OmimStore([fosb_entry])
        with pytest.raises(DataFormatError):
            store.add(fosb_entry)

    def test_dump_round_trip(self, fosb_entry):
        store = OmimStore([fosb_entry])
        assert OmimStore.from_text(store.dump()).records() == store.records()

    def test_native_title_contains(self, fosb_entry):
        store = OmimStore([fosb_entry])
        hits = store.native_query(
            [NativeCondition("Title", "contains", "osteosarcoma")]
        )
        assert len(hits) == 1

    def test_native_symbol_equality_is_case_sensitive(self, fosb_entry):
        # The raw source matches symbols exactly — case-insensitive
        # matching is reconciliation work, done at the mediator.
        store = OmimStore([fosb_entry])
        assert store.native_query(
            [NativeCondition("GeneSymbols", "=", "fosb")]
        ) == []


class TestGenerator:
    def test_deterministic(self):
        a = OmimGenerator(DeterministicRng(3)).generate(30)
        b = OmimGenerator(DeterministicRng(3)).generate(30)
        assert a == b

    def test_distinct_mim_numbers(self):
        records = OmimGenerator(DeterministicRng(4)).generate(100)
        numbers = [record.mim_number for record in records]
        assert len(set(numbers)) == len(numbers)

    def test_retitle_for_symbol(self):
        generator = OmimGenerator(DeterministicRng(5))
        record = generator.generate(1)[0]
        generator.retitle_for_symbol(record, "FOSB")
        assert "FOSB" in record.title
