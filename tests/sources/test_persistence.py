"""Tests for flat-file federation persistence."""

import json

import pytest

from repro.core import Annoda
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.persistence import (
    MANIFEST_NAME,
    load_manifest,
    load_stores,
    save_corpus,
    save_stores,
    wrappers_for,
)
from repro.util.errors import DataFormatError


@pytest.fixture(scope="module")
def corpus():
    return AnnotationCorpus.generate(
        seed=71,
        parameters=CorpusParameters(loci=60, go_terms=40, omim_entries=20),
    )


class TestSaveLoad:
    def test_three_source_round_trip(self, corpus, tmp_path):
        manifest = save_corpus(corpus, tmp_path)
        assert set(manifest["sources"]) == {"LocusLink", "GO", "OMIM"}
        stores = load_stores(tmp_path)
        assert stores["LocusLink"].dump() == corpus.locuslink.dump()
        assert stores["GO"].dump() == corpus.go.dump()
        assert stores["OMIM"].dump() == corpus.omim.dump()

    def test_five_source_round_trip(self, corpus, tmp_path):
        citations = corpus.make_citation_store(count=30)
        proteins = corpus.make_protein_store()
        save_corpus(
            corpus, tmp_path, citations=citations, proteins=proteins
        )
        stores = load_stores(tmp_path)
        assert stores["PubMed"].dump() == citations.dump()
        assert stores["SwissProt"].dump() == proteins.dump()

    def test_files_use_native_formats(self, corpus, tmp_path):
        save_corpus(corpus, tmp_path)
        assert (tmp_path / "locuslink.ll_tmpl").read_text().startswith(">>")
        assert (tmp_path / "gene_ontology.obo").read_text().startswith(
            "format-version"
        )
        assert (tmp_path / "omim.txt").read_text().startswith("*RECORD*")

    def test_manifest_metadata(self, corpus, tmp_path):
        save_corpus(corpus, tmp_path, metadata={"release": "2005.1"})
        manifest = load_manifest(tmp_path)
        assert manifest["metadata"]["seed"] == 71
        assert manifest["metadata"]["release"] == "2005.1"

    def test_wrappers_for_canonical_order(self, corpus, tmp_path):
        save_corpus(
            corpus, tmp_path, proteins=corpus.make_protein_store()
        )
        wrappers = wrappers_for(load_stores(tmp_path))
        assert [wrapper.name for wrapper in wrappers] == [
            "LocusLink",
            "GO",
            "OMIM",
            "SwissProt",
        ]


    def test_citations_only_round_trip(self, corpus, tmp_path):
        citations = corpus.make_citation_store(count=25)
        manifest = save_corpus(corpus, tmp_path, citations=citations)
        assert set(manifest["sources"]) == {
            "LocusLink", "GO", "OMIM", "PubMed",
        }
        stores = load_stores(tmp_path)
        assert stores["PubMed"].dump() == citations.dump()
        assert stores["PubMed"].count() == citations.count()

    def test_proteins_only_round_trip(self, corpus, tmp_path):
        proteins = corpus.make_protein_store()
        manifest = save_corpus(corpus, tmp_path, proteins=proteins)
        assert set(manifest["sources"]) == {
            "LocusLink", "GO", "OMIM", "SwissProt",
        }
        stores = load_stores(tmp_path)
        assert stores["SwissProt"].dump() == proteins.dump()
        assert stores["SwissProt"].count() == proteins.count()


class TestCorruptionHandling:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_stores(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DataFormatError):
            load_stores(tmp_path)

    def test_load_manifest_missing_raises_data_format_error(self, tmp_path):
        with pytest.raises(DataFormatError, match="not a"):
            load_manifest(tmp_path)

    def test_load_manifest_corrupt_json_raises_data_format_error(
        self, tmp_path
    ):
        (tmp_path / MANIFEST_NAME).write_text('{"format": "annoda-')
        with pytest.raises(DataFormatError, match="corrupt manifest"):
            load_manifest(tmp_path)

    def test_unsupported_format_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format": "annoda-federation/99", "sources": {}})
        )
        with pytest.raises(DataFormatError):
            load_stores(tmp_path)

    def test_missing_listed_file(self, corpus, tmp_path):
        save_corpus(corpus, tmp_path)
        (tmp_path / "omim.txt").unlink()
        with pytest.raises(DataFormatError):
            load_stores(tmp_path)

    def test_record_count_mismatch(self, corpus, tmp_path):
        save_corpus(corpus, tmp_path)
        manifest = load_manifest(tmp_path)
        manifest["sources"]["OMIM"]["records"] = 999
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(DataFormatError):
            load_stores(tmp_path)

    def test_corrupt_source_file(self, corpus, tmp_path):
        save_corpus(corpus, tmp_path)
        (tmp_path / "locuslink.ll_tmpl").write_text(">>abc\nbroken\n")
        with pytest.raises(DataFormatError):
            load_stores(tmp_path)


class TestAtomicSave:
    """A save that dies midway must leave the previous snapshot
    loadable: every file goes through temp + rename, and the manifest
    — written last — is the commit point."""

    def test_failed_save_leaves_previous_snapshot_intact(
        self, corpus, monkeypatch, tmp_path
    ):
        from repro.sources import persistence

        save_corpus(corpus, tmp_path)
        before = {
            item.name: item.read_bytes()
            for item in tmp_path.iterdir()
        }

        def failing_replace(src, dst):
            raise OSError("disk full")

        other = AnnotationCorpus.generate(
            seed=72,
            parameters=CorpusParameters(
                loci=30, go_terms=20, omim_entries=10
            ),
        )
        monkeypatch.setattr(persistence.os, "replace", failing_replace)
        with pytest.raises(OSError):
            save_corpus(other, tmp_path)
        monkeypatch.undo()

        # No temp litter, no torn files: the rename never happened, so
        # every file is byte-identical to the previous snapshot and the
        # directory still loads as the *previous* federation.
        assert not list(tmp_path.glob("*.tmp"))
        assert {
            item.name: item.read_bytes() for item in tmp_path.iterdir()
        } == before
        stores = load_stores(tmp_path)
        assert stores["LocusLink"].count() == corpus.locuslink.count()

    def test_failed_manifest_write_is_loud_not_silent(
        self, corpus, monkeypatch, tmp_path
    ):
        from repro.sources import persistence

        real_replace = persistence.os.replace

        def failing_replace(src, dst):
            if str(dst).endswith(MANIFEST_NAME):
                raise OSError("disk full")
            return real_replace(src, dst)

        monkeypatch.setattr(persistence.os, "replace", failing_replace)
        with pytest.raises(OSError):
            save_corpus(corpus, tmp_path)
        monkeypatch.undo()

        # Data files landed but the commit point didn't: the directory
        # is not a federation snapshot, and loading says so loudly.
        assert (tmp_path / "locuslink.ll_tmpl").is_file()
        assert not (tmp_path / MANIFEST_NAME).exists()
        with pytest.raises(DataFormatError):
            load_stores(tmp_path)


class TestAnnodaIntegration:
    def test_save_then_from_directory(self, tmp_path):
        original = Annoda.with_default_sources(
            seed=73,
            parameters=CorpusParameters(
                loci=50, go_terms=30, omim_entries=15
            ),
        )
        original.save(tmp_path / "federation")
        reloaded = Annoda.from_directory(tmp_path / "federation")
        assert reloaded.sources() == original.sources()
        question = "find genes associated with some OMIM disease"
        assert set(
            reloaded.ask(question, enrich_links=False).gene_ids()
        ) == set(original.ask(question, enrich_links=False).gene_ids())

    def test_reloaded_federation_navigates(self, tmp_path):
        original = Annoda.with_default_sources(
            seed=73,
            parameters=CorpusParameters(
                loci=50, go_terms=30, omim_entries=15
            ),
        )
        original.save(tmp_path / "federation")
        reloaded = Annoda.from_directory(tmp_path / "federation")
        locus_id = original.corpus.locuslink.locus_ids()[0]
        view = reloaded.navigate(
            "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi"
            f"?l={locus_id}"
        )
        assert dict(view.field_items())["LocusID"] == locus_id
