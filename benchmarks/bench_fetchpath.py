"""Fetch-path benchmark: indexed vs scan, batched vs N+1, cache hits.

The federated fetch path bottoms out in ``DataSource.native_query``;
this harness proves the three-layer optimisation (source equality
indexes, executor batching, mediator enrichment caches) pays off:

1. **equality fetch** — one ``LocusID =`` native query, equality index
   on vs off, swept over corpus size;
2. **semijoin execution** — the selective-link semijoin query executed
   with batched ``in`` anchor fetch + indexes vs the seed's per-id
   scan loop (N+1);
3. **flagship counters** — the Figure-5(b) query run through the
   mediator, asserting nonzero ``index_hits``/``batched_fetches`` on
   the first execution and ``enrichment_cache_hits`` on the repeat.

Writes ``benchmarks/results/fetchpath.txt`` and the machine-readable
trajectory ``BENCH_fetchpath.json`` at the repo root.
"""

import json
import pathlib

from benchmarks.conftest import write_artifact
from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    Mediator,
    OptimizerOptions,
)
from repro.mediator.decompose import Condition
from repro.mediator.executor import Executor
from repro.questions.catalog import QuestionCatalog
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.base import NativeCondition
from repro.util.text import table
from repro.util.timer import Timer
from repro.wrappers import default_wrappers

SIZES = (100, 500, 1000, 2000)
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Equality-fetch repetitions per timing sample (amortizes timer noise).
EQ_QUERIES = 50
#: Best-of rounds per measurement.
ROUNDS = 3


def _corpus(loci):
    return AnnotationCorpus.generate(
        seed=11,
        parameters=CorpusParameters(
            loci=loci,
            go_terms=max(60, loci // 4),
            omim_entries=max(30, loci // 8),
        ),
    )


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        with Timer() as timer:
            run()
        best = min(best, timer.elapsed)
    return best


def _semijoin_query():
    """Anchor unconditioned; the GO link is highly selective, so the
    optimizer lets it drive the anchor fetch by link-id."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(Condition("Title", "contains", "kinase"),),
            ),
        ),
    )


def _mediator(corpus, **options):
    mediator = Mediator(optimizer_options=OptimizerOptions(**options))
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator


def _set_indexes(corpus, enabled):
    for store in (corpus.locuslink, corpus.go, corpus.omim):
        store.use_indexes = enabled


def _sweep_equality(store):
    """(scan_seconds, indexed_seconds) per EQ_QUERIES point lookups."""
    locus_ids = store.locus_ids()
    probes = [
        locus_ids[(index * 37) % len(locus_ids)]
        for index in range(EQ_QUERIES)
    ]

    def run(use_index):
        for locus_id in probes:
            store.native_query(
                [NativeCondition("LocusID", "=", locus_id)],
                use_index=use_index,
            )

    run(True)  # warm: builds the index outside the timed region
    indexed = _best_of(ROUNDS, lambda: run(True))
    scan = _best_of(ROUNDS, lambda: run(False))
    return scan, indexed


def _sweep_semijoin(corpus):
    """(n_plus_1_seconds, batched_seconds) for the semijoin query."""
    mediator = _mediator(corpus, enable_semijoin=True)
    query = _semijoin_query()
    plan = mediator.plan(query)
    assert plan.anchor.semijoin is not None, "semijoin must drive the anchor"

    def run(batch, indexes):
        _set_indexes(corpus, indexes)
        executor = Executor(
            mediator._wrappers,
            mediator.mapping_module,
            mediator.reconciler,
            enrichment_cache={},
            batch_fetch=batch,
        )
        return executor.execute(plan, query, enrich_links=False)

    fast_result = run(batch=True, indexes=True)
    slow_result = run(batch=False, indexes=False)
    assert fast_result.gene_ids() == slow_result.gene_ids()
    assert fast_result.stats.batched_fetches > 0
    batched = _best_of(ROUNDS, lambda: run(batch=True, indexes=True))
    n_plus_1 = _best_of(ROUNDS, lambda: run(batch=False, indexes=False))
    _set_indexes(corpus, True)
    return n_plus_1, batched


def test_fetchpath_sweep(results_dir):
    rows = []
    trajectory = []
    for loci in SIZES:
        corpus = _corpus(loci)
        scan, indexed = _sweep_equality(corpus.locuslink)
        n_plus_1, batched = _sweep_semijoin(corpus)
        eq_speedup = scan / max(indexed, 1e-9)
        semi_speedup = n_plus_1 / max(batched, 1e-9)
        rows.append(
            [
                loci,
                f"{scan * 1e3:.2f}",
                f"{indexed * 1e3:.2f}",
                f"{eq_speedup:.1f}x",
                f"{n_plus_1 * 1e3:.2f}",
                f"{batched * 1e3:.2f}",
                f"{semi_speedup:.1f}x",
            ]
        )
        trajectory.append(
            {
                "loci": loci,
                "equality_scan_s": scan,
                "equality_indexed_s": indexed,
                "equality_speedup": eq_speedup,
                "semijoin_n_plus_1_s": n_plus_1,
                "semijoin_batched_s": batched,
                "semijoin_speedup": semi_speedup,
            }
        )
        if loci == max(SIZES):
            # The acceptance bar: indexed/batched at least 5x faster
            # than the seed's scan/N+1 path at the 2000-loci corpus.
            assert eq_speedup >= 5.0, f"equality speedup only {eq_speedup:.1f}x"
            assert semi_speedup >= 5.0, (
                f"semijoin speedup only {semi_speedup:.1f}x"
            )

    flagship = _flagship_counters()

    rendered = table(
        [
            "loci",
            f"eq scan ms/{EQ_QUERIES}",
            f"eq index ms/{EQ_QUERIES}",
            "eq speedup",
            "semijoin N+1 ms",
            "semijoin batch ms",
            "semijoin speedup",
        ],
        rows,
    )
    counter_lines = "\n".join(
        f"  {name}: {value}" for name, value in sorted(flagship.items())
    )
    artifact = (
        "Fetch-path optimisation: indexed vs scan, batched vs N+1\n"
        "(identical answers asserted between fast and slow paths)\n\n"
        + rendered
        + "\n\nFigure-5(b) flagship query counters "
        "(first run / cached repeat):\n"
        + counter_lines
        + "\n"
    )
    write_artifact(results_dir, "fetchpath.txt", artifact)
    (REPO_ROOT / "BENCH_fetchpath.json").write_text(
        json.dumps(
            {"benchmark": "fetchpath", "sweep": trajectory,
             "flagship": flagship},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )


def _flagship_counters():
    """Run Figure 5(b) through a default mediator twice and collect the
    fetch-path counters the acceptance criteria name."""
    corpus = _corpus(500)
    mediator = _mediator(corpus)
    query = QuestionCatalog.figure5b().to_global_query()
    first = mediator.query(query, use_cache=False)
    repeat = mediator.query(query, use_cache=False)
    assert first.gene_ids() == repeat.gene_ids()
    assert first.stats.index_hits > 0
    assert first.stats.batched_fetches > 0
    assert repeat.stats.enrichment_cache_hits > 0
    return {
        "first_index_hits": first.stats.index_hits,
        "first_scan_fetches": first.stats.scan_fetches,
        "first_batched_fetches": first.stats.batched_fetches,
        "first_enrichment_cache_hits": first.stats.enrichment_cache_hits,
        "repeat_index_hits": repeat.stats.index_hits,
        "repeat_scan_fetches": repeat.stats.scan_fetches,
        "repeat_batched_fetches": repeat.stats.batched_fetches,
        "repeat_enrichment_cache_hits": repeat.stats.enrichment_cache_hits,
    }
