"""Fetch-path benchmark: indexed vs scan, batched vs N+1, cache hits.

The federated fetch path bottoms out in ``DataSource.native_query``;
this harness proves the layered optimisation (source equality indexes,
executor batching, columnar batches, stage artifacts, mediator
enrichment caches) pays off:

1. **equality fetch** — one ``LocusID =`` native query, equality index
   on vs off, swept over corpus size;
2. **semijoin execution** — the selective-link semijoin query executed
   with batched ``in`` anchor fetch + indexes vs the seed's per-id
   scan loop (N+1);
3. **columnar sweep** — the same semijoin query at 10k–100k loci (1M
   behind ``--full``), record-at-a-time vs columnar RecordBatch
   execution vs columnar with a warm content-addressed stage artifact
   cache;
4. **flagship counters** — the Figure-5(b) query run through the
   mediator, asserting nonzero ``index_hits``/``batched_fetches`` on
   the first execution and ``enrichment_cache_hits`` on the repeat,
   plus the cold-vs-warm artifact latency ratio.

Writes ``benchmarks/results/fetchpath.txt`` and the machine-readable
trajectory ``BENCH_fetchpath.json`` at the repo root.  Run directly
(``python benchmarks/bench_fetchpath.py [--smoke|--full]``) for the CI
smoke or the 1M-loci point.
"""

import argparse
import gc
import json
import pathlib
import sys

if __package__ in (None, ""):  # direct script execution
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from benchmarks.conftest import write_artifact
from repro.mediator import (
    ArtifactStore,
    GlobalQuery,
    LinkConstraint,
    Mediator,
    OptimizerOptions,
)
from repro.mediator.decompose import Condition
from repro.mediator.executor import Executor
from repro.questions.catalog import QuestionCatalog
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.sources.base import NativeCondition
from repro.util.text import table
from repro.util.timer import Timer
from repro.wrappers import default_wrappers

SIZES = (100, 500, 1000, 2000)
#: Columnar-vs-record sweep sizes; ``--full`` appends the 1M point.
COLUMNAR_SIZES = (10_000, 100_000)
COLUMNAR_SIZES_FULL = COLUMNAR_SIZES + (1_000_000,)
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Equality-fetch repetitions per timing sample (amortizes timer noise).
EQ_QUERIES = 50
#: Best-of rounds per measurement.
ROUNDS = 3
#: Rounds for the interleaved record/columnar/warm comparison — more
#: than ROUNDS because the sweep asserts an ordering between modes.
COLUMNAR_ROUNDS = 5


def _corpus(loci):
    return AnnotationCorpus.generate(
        seed=11,
        parameters=CorpusParameters(
            loci=loci,
            go_terms=max(60, loci // 4),
            omim_entries=max(30, loci // 8),
        ),
    )


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        # Collect leftovers from the previous round outside the timed
        # region, so a GC pause triggered by *earlier* allocations
        # cannot land inside a later measurement and flip a comparison.
        gc.collect()
        with Timer() as timer:
            run()
        best = min(best, timer.elapsed)
    return best


def _semijoin_query():
    """Anchor unconditioned; the GO link is highly selective, so the
    optimizer lets it drive the anchor fetch by link-id."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(Condition("Title", "contains", "kinase"),),
            ),
        ),
    )


def _mediator(corpus, **options):
    mediator = Mediator(optimizer_options=OptimizerOptions(**options))
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    return mediator


def _set_indexes(corpus, enabled):
    for store in (corpus.locuslink, corpus.go, corpus.omim):
        store.use_indexes = enabled


def _sweep_equality(store):
    """(scan_seconds, indexed_seconds) per EQ_QUERIES point lookups."""
    locus_ids = store.locus_ids()
    probes = [
        locus_ids[(index * 37) % len(locus_ids)]
        for index in range(EQ_QUERIES)
    ]

    def run(use_index):
        for locus_id in probes:
            store.native_query(
                [NativeCondition("LocusID", "=", locus_id)],
                use_index=use_index,
            )

    run(True)  # warm: builds the index outside the timed region
    indexed = _best_of(ROUNDS, lambda: run(True))
    scan = _best_of(ROUNDS, lambda: run(False))
    return scan, indexed


def _sweep_semijoin(corpus):
    """(n_plus_1_seconds, batched_seconds) for the semijoin query."""
    mediator = _mediator(corpus, enable_semijoin=True)
    query = _semijoin_query()
    plan = mediator.plan(query)
    assert plan.anchor.semijoin is not None, "semijoin must drive the anchor"

    def run(batch, indexes):
        _set_indexes(corpus, indexes)
        executor = Executor(
            mediator._wrappers,
            mediator.mapping_module,
            mediator.reconciler,
            enrichment_cache={},
            batch_fetch=batch,
        )
        return executor.execute(plan, query, enrich_links=False)

    fast_result = run(batch=True, indexes=True)
    slow_result = run(batch=False, indexes=False)
    assert fast_result.gene_ids() == slow_result.gene_ids()
    assert fast_result.stats.batched_fetches > 0
    batched = _best_of(ROUNDS, lambda: run(batch=True, indexes=True))
    n_plus_1 = _best_of(ROUNDS, lambda: run(batch=False, indexes=False))
    _set_indexes(corpus, True)
    return n_plus_1, batched


def _fetch_layer(corpus):
    """Source-layer throughput of the anchor in-fetch: record-at-a-time
    ``native_query`` vs columnar ``native_query_batch`` over the same
    id probe (the batch side also reads the key column, since that is
    what the executor's semijoin consumes).  Interleaved best-of, so
    load drift cannot bias one side."""
    store = corpus.locuslink
    ids = store.locus_ids()
    conditions = [NativeCondition("LocusID", "in", ids[: len(ids) // 2])]
    store.native_query(conditions)
    store.native_query_batch(conditions)  # warm index + column caches
    best_record = best_batch = float("inf")
    for _ in range(COLUMNAR_ROUNDS):
        gc.collect()
        with Timer() as timer:
            store.native_query(conditions)
        best_record = min(best_record, timer.elapsed)
        with Timer() as timer:
            store.native_query_batch(conditions).values("LocusID")
        best_batch = min(best_batch, timer.elapsed)
    return best_record, best_batch


def _sweep_columnar(loci):
    """Record-at-a-time vs columnar vs columnar + warm artifacts, for
    the semijoin query at one corpus size, plus the source-layer fetch
    comparison.  Returns one measurement dict (see the trajectory keys
    in ``_columnar_sweep_rows``)."""
    corpus = _corpus(loci)
    mediator = _mediator(corpus, enable_semijoin=True)
    query = _semijoin_query()
    plan = mediator.plan(query)

    def run(columnar, artifacts=None):
        executor = Executor(
            mediator._wrappers,
            mediator.mapping_module,
            mediator.reconciler,
            enrichment_cache={},
            columnar=columnar,
            artifacts=artifacts,
        )
        return executor.execute(plan, query, enrich_links=False)

    record_result = run(columnar=False)
    columnar_result = run(columnar=True)
    assert record_result.gene_ids() == columnar_result.gene_ids()
    assert columnar_result.stats.batch_rows > 0

    store = ArtifactStore()
    run(columnar=True, artifacts=store)  # fill the store (cold)
    warm_result = run(columnar=True, artifacts=store)
    assert warm_result.gene_ids() == record_result.gene_ids()
    assert warm_result.stats.artifact_hits > 0

    # Interleave the three modes round by round: machine-load drift
    # over the measurement window then biases every mode equally
    # instead of penalizing whichever block runs last.
    modes = {
        "record": lambda: run(columnar=False),
        "columnar": lambda: run(columnar=True),
        "warm": lambda: run(columnar=True, artifacts=store),
    }
    best = {name: float("inf") for name in modes}
    for _ in range(COLUMNAR_ROUNDS):
        for name, mode in modes.items():
            gc.collect()
            with Timer() as timer:
                mode()
            best[name] = min(best[name], timer.elapsed)
    fetch_record, fetch_batch = _fetch_layer(corpus)
    return {
        "loci": loci,
        "fetch_record_s": fetch_record,
        "fetch_batch_s": fetch_batch,
        "fetch_speedup": fetch_record / max(fetch_batch, 1e-9),
        "record_s": best["record"],
        "columnar_s": best["columnar"],
        "columnar_speedup": (
            best["record"] / max(best["columnar"], 1e-9)
        ),
        "artifact_warm_s": best["warm"],
        "artifact_warm_speedup": (
            best["record"] / max(best["warm"], 1e-9)
        ),
        "artifact_hits": warm_result.stats.artifact_hits,
    }


def _columnar_sweep_rows(sizes, log=print):
    rows = []
    trajectory = []
    for loci in sizes:
        log(f"columnar sweep: {loci} loci ...")
        point = _sweep_columnar(loci)
        rows.append(
            [
                loci,
                f"{point['fetch_speedup']:.2f}x",
                f"{point['record_s'] * 1e3:.1f}",
                f"{point['columnar_s'] * 1e3:.1f}",
                f"{point['columnar_speedup']:.2f}x",
                f"{point['artifact_warm_s'] * 1e3:.1f}",
                f"{point['artifact_warm_speedup']:.2f}x",
            ]
        )
        trajectory.append(point)
    # The throughput bar lives at the fetch layer, where the columnar
    # path structurally does less work (no per-record dict copies).
    # The end-to-end columns are reported data: there OEM answer
    # construction dominates both modes identically, so the ordering
    # sits inside scheduler noise at small sizes; the whole-stage
    # artifact reuse bar is the flagship repeat (_artifact_flagship).
    for point in trajectory:
        assert point["fetch_speedup"] >= 1.0, point
    return rows, trajectory


def _artifact_flagship():
    """Cold vs artifact-warm latency for the flagship query: the warm
    repeat must reuse stages (``artifact_hits > 0``) and answer at
    least 5x faster than the cold run."""
    corpus = _corpus(2000)
    store = ArtifactStore()
    mediator = Mediator(artifacts=store)
    for wrapper in default_wrappers(corpus):
        mediator.register_wrapper(wrapper)
    query = QuestionCatalog.figure5b().to_global_query()
    with Timer() as cold_timer:
        cold = mediator.query(query, use_cache=False)
    warm = mediator.query(query, use_cache=False)
    warm_time = _best_of(
        ROUNDS, lambda: mediator.query(query, use_cache=False)
    )
    assert warm.gene_ids() == cold.gene_ids()
    assert warm.stats.artifact_hits > 0
    ratio = cold_timer.elapsed / max(warm_time, 1e-9)
    assert ratio >= 5.0, (
        f"artifact-warm repeat only {ratio:.1f}x faster than cold"
    )
    return {
        "cold_s": cold_timer.elapsed,
        "warm_s": warm_time,
        "speedup": ratio,
        "warm_artifact_hits": warm.stats.artifact_hits,
        "cold_artifact_misses": cold.stats.artifact_misses,
    }


def test_fetchpath_sweep(results_dir):
    _run(COLUMNAR_SIZES, results_dir, log=lambda *_: None)


def _run(columnar_sizes, results_dir, log=print):
    rows = []
    trajectory = []
    for loci in SIZES:
        log(f"fetch-path sweep: {loci} loci ...")
        corpus = _corpus(loci)
        scan, indexed = _sweep_equality(corpus.locuslink)
        n_plus_1, batched = _sweep_semijoin(corpus)
        eq_speedup = scan / max(indexed, 1e-9)
        semi_speedup = n_plus_1 / max(batched, 1e-9)
        rows.append(
            [
                loci,
                f"{scan * 1e3:.2f}",
                f"{indexed * 1e3:.2f}",
                f"{eq_speedup:.1f}x",
                f"{n_plus_1 * 1e3:.2f}",
                f"{batched * 1e3:.2f}",
                f"{semi_speedup:.1f}x",
            ]
        )
        trajectory.append(
            {
                "loci": loci,
                "equality_scan_s": scan,
                "equality_indexed_s": indexed,
                "equality_speedup": eq_speedup,
                "semijoin_n_plus_1_s": n_plus_1,
                "semijoin_batched_s": batched,
                "semijoin_speedup": semi_speedup,
            }
        )
        if loci == max(SIZES):
            # The acceptance bar: indexed/batched at least 5x faster
            # than the seed's scan/N+1 path at the 2000-loci corpus.
            assert eq_speedup >= 5.0, f"equality speedup only {eq_speedup:.1f}x"
            assert semi_speedup >= 5.0, (
                f"semijoin speedup only {semi_speedup:.1f}x"
            )

    columnar_rows, columnar_trajectory = _columnar_sweep_rows(
        columnar_sizes, log=log
    )
    flagship = _flagship_counters()
    log("artifact flagship: cold vs warm ...")
    artifact_flagship = _artifact_flagship()

    rendered = table(
        [
            "loci",
            f"eq scan ms/{EQ_QUERIES}",
            f"eq index ms/{EQ_QUERIES}",
            "eq speedup",
            "semijoin N+1 ms",
            "semijoin batch ms",
            "semijoin speedup",
        ],
        rows,
    )
    columnar_rendered = table(
        [
            "loci",
            "fetch speedup",
            "record ms",
            "columnar ms",
            "columnar speedup",
            "artifact-warm ms",
            "warm speedup",
        ],
        columnar_rows,
    )
    counter_lines = "\n".join(
        f"  {name}: {value}" for name, value in sorted(flagship.items())
    )
    artifact = (
        "Fetch-path optimisation: indexed vs scan, batched vs N+1\n"
        "(identical answers asserted between fast and slow paths)\n\n"
        + rendered
        + "\n\nColumnar batch execution and stage artifacts "
        "(semijoin query):\n\n"
        + columnar_rendered
        + "\n\nFlagship artifact repeat: "
        + f"cold {artifact_flagship['cold_s'] * 1e3:.1f} ms, "
        + f"warm {artifact_flagship['warm_s'] * 1e3:.1f} ms "
        + f"({artifact_flagship['speedup']:.1f}x, "
        + f"{artifact_flagship['warm_artifact_hits']} stage hits)\n"
        + "\nFigure-5(b) flagship query counters "
        "(first run / cached repeat):\n"
        + counter_lines
        + "\n"
    )
    write_artifact(results_dir, "fetchpath.txt", artifact)
    (REPO_ROOT / "BENCH_fetchpath.json").write_text(
        json.dumps(
            {
                "benchmark": "fetchpath",
                "sweep": trajectory,
                "columnar_sweep": columnar_trajectory,
                "artifact_flagship": artifact_flagship,
                "flagship": flagship,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    return artifact


def _flagship_counters():
    """Run Figure 5(b) through a default mediator twice and collect the
    fetch-path counters the acceptance criteria name."""
    corpus = _corpus(500)
    mediator = _mediator(corpus)
    query = QuestionCatalog.figure5b().to_global_query()
    first = mediator.query(query, use_cache=False)
    repeat = mediator.query(query, use_cache=False)
    assert first.gene_ids() == repeat.gene_ids()
    assert first.stats.index_hits > 0
    assert first.stats.batched_fetches > 0
    assert repeat.stats.enrichment_cache_hits > 0
    return {
        "first_index_hits": first.stats.index_hits,
        "first_scan_fetches": first.stats.scan_fetches,
        "first_batched_fetches": first.stats.batched_fetches,
        "first_enrichment_cache_hits": first.stats.enrichment_cache_hits,
        "first_batch_rows": first.stats.batch_rows,
        "repeat_index_hits": repeat.stats.index_hits,
        "repeat_scan_fetches": repeat.stats.scan_fetches,
        "repeat_batched_fetches": repeat.stats.batched_fetches,
        "repeat_enrichment_cache_hits": repeat.stats.enrichment_cache_hits,
    }


def _smoke():
    """The CI gate: at 10k loci the columnar fetch layer must at least
    match record-at-a-time throughput, and a warm artifact store must
    serve stage hits."""
    point = _sweep_columnar(10_000)
    assert point["fetch_speedup"] >= 1.0, (
        f"columnar fetch {point['fetch_batch_s'] * 1e3:.1f} ms slower "
        f"than record-at-a-time {point['fetch_record_s'] * 1e3:.1f} ms "
        f"at 10k loci"
    )
    assert point["artifact_hits"] > 0
    print(
        f"smoke ok: fetch layer {point['fetch_speedup']:.2f}x, "
        f"end-to-end record {point['record_s'] * 1e3:.1f} ms / "
        f"columnar {point['columnar_s'] * 1e3:.1f} ms "
        f"({point['columnar_speedup']:.2f}x), "
        f"artifact-warm {point['artifact_warm_s'] * 1e3:.1f} ms "
        f"({point['artifact_hits']} stage hits)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="10k-loci columnar-vs-record gate only (CI)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="extend the columnar sweep to 1M loci",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        _smoke()
        return
    from benchmarks.conftest import RESULTS_DIR

    RESULTS_DIR.mkdir(exist_ok=True)
    sizes = COLUMNAR_SIZES_FULL if arguments.full else COLUMNAR_SIZES
    print(_run(sizes, RESULTS_DIR))


if __name__ == "__main__":
    main()
