"""Benchmarks result re-organization (future-work item 4) — the
machinery behind "supporting automated large-scale analysis tasks"."""

import pytest

from benchmarks.conftest import write_artifact
from repro.mediator import GlobalQuery, LinkConstraint
from repro.reorganize import Reorganizer, to_csv
from repro.util.text import table


@pytest.fixture(scope="module")
def result(annoda):
    return annoda.ask(
        GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint("GO", "include", via="AnnotationID"),
                LinkConstraint(
                    "OMIM", "include", via="DiseaseID", symbol_join=True
                ),
            ),
        )
    )


def test_pivot_by_annotation(benchmark, result):
    groups = benchmark(Reorganizer(result).by_annotation)
    assert groups
    assert all(group["genes"] for group in groups.values())


def test_incidence_matrix(benchmark, result):
    gene_ids, go_ids, rows = benchmark(
        Reorganizer(result).incidence_matrix, "GO"
    )
    assert len(rows) == len(gene_ids)
    assert all(len(row) == len(go_ids) for row in rows)


def test_csv_export(benchmark, result):
    text = benchmark(to_csv, result)
    assert text.startswith("GeneID,")


def test_reorganization_artifact(benchmark, result, results_dir):
    def run():
        reorganizer = Reorganizer(result)
        summary = reorganizer.summary()
        top_terms = sorted(
            reorganizer.by_annotation().items(),
            key=lambda item: -len(item[1]["genes"]),
        )[:8]
        return summary, top_terms

    summary, top_terms = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [go_id, group["title"] or "-", len(group["genes"])]
        for go_id, group in top_terms
    ]
    artifact = (
        "Result re-organization: disease genes grouped by GO term\n"
        f"(genes={summary['genes']}, "
        f"annotation groups={summary['annotation_groups']}, "
        f"disease groups={summary['disease_groups']})\n\n"
        + table(["GO term", "title", "genes"], rows)
    )
    write_artifact(results_dir, "reorganization.txt", artifact)
    print()
    print(artifact)
    assert summary["genes"] > 0
    assert summary["annotation_groups"] > 0
