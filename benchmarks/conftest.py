"""Shared benchmark fixtures and result-artifact plumbing.

Every benchmark regenerates a table or figure of the paper (or an
ablation DESIGN.md calls out) and writes the regenerated artifact to
``benchmarks/results/`` so the evidence persists after the run.
"""

import pathlib

import pytest

from repro.core import Annoda
from repro.sources import AnnotationCorpus, CorpusParameters

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper-scale corpus used by the figure/table regenerations.
DEFAULT_PARAMETERS = CorpusParameters(
    loci=500, go_terms=300, omim_entries=150
)

CONFLICTED_PARAMETERS = CorpusParameters(
    loci=500, go_terms=300, omim_entries=150, conflict_rate=0.4
)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def corpus():
    return AnnotationCorpus.generate(seed=7, parameters=DEFAULT_PARAMETERS)


@pytest.fixture(scope="session")
def conflicted_corpus():
    return AnnotationCorpus.generate(
        seed=7, parameters=CONFLICTED_PARAMETERS
    )


@pytest.fixture(scope="session")
def annoda(corpus):
    instance = Annoda()
    instance.corpus = corpus
    from repro.wrappers import default_wrappers

    for wrapper in default_wrappers(corpus):
        instance.add_source(wrapper)
    return instance


def write_artifact(results_dir, name, text):
    """Persist one regenerated artifact and return its path."""
    path = results_dir / name
    path.write_text(text, encoding="utf-8")
    return path
