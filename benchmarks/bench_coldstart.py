"""Cold-start benchmark: time-to-first-indexed-answer from a persisted
snapshot versus a lazy index rebuild.

A federation restarting from flat files pays the same two costs either
way — reading and parsing the dumps.  What the persisted index
snapshot removes is the third cost: building every equality index
before the first indexed probe can answer from a hash lookup.  The
harness saves a corpus (five sources, all fields indexed), then for
each size measures the indexed-probe phase twice over freshly parsed
stores:

- **lazy**: probe one ``=`` condition per indexed field per source;
  the first probe of each field pays the full extent scan that builds
  its index;
- **adopted**: :func:`~repro.sources.persistence.adopt_persisted_indexes`
  installs the snapshot, then the same probes run as dict lookups.

Answers are asserted oid-for-oid identical between the two paths and
against the original in-memory stores, and the adopted path is
asserted to have rebuilt **zero** indexes (``fetch_stats``).  The
acceptance bar: adopted beats lazy by ``min_speedup`` at the largest
corpus.

Writes ``benchmarks/results/coldstart.txt`` and the machine-readable
``BENCH_coldstart.json`` at the repo root.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_coldstart.py --smoke
"""

import argparse
import json
import pathlib
import tempfile

from repro.sources import AnnotationCorpus, CorpusParameters, NativeCondition
from repro.sources.persistence import adopt_persisted_indexes, load_stores, save_corpus
from repro.util.timer import Timer

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = {
    "sizes": (2000, 10000),
    "rounds": 3,
    "min_speedup": 3.0,
}
SMOKE = {
    "sizes": (300,),
    "rounds": 1,
    # Tiny extents keep the absolute gap small; the smoke run guards
    # the machinery (identity + zero rebuilds), not the headline ratio.
    "min_speedup": 1.0,
}


def _corpus(loci):
    return AnnotationCorpus.generate(
        seed=23,
        parameters=CorpusParameters(
            loci=loci,
            go_terms=max(60, loci // 4),
            omim_entries=max(30, loci // 8),
        ),
    )


def _originals(corpus, loci):
    """All five stores, citations wired before any index is built."""
    citations = corpus.make_citation_store(count=max(40, loci // 2))
    proteins = corpus.make_protein_store()
    return {
        store.name: store
        for store in list(corpus.sources()) + [citations, proteins]
    }


def _probe_plan(originals):
    """One present-value ``=`` probe per indexed field per source —
    the first indexed question a restarted federation would face."""
    plan = []
    for name, store in sorted(originals.items()):
        for field in store.indexed_fields():
            value = None
            for record in store.records():
                candidate = record.get(field)
                if isinstance(candidate, (list, tuple)):
                    candidate = candidate[0] if candidate else None
                if candidate is not None:
                    value = candidate
                    break
            if value is not None:
                plan.append((name, NativeCondition(field, "=", value)))
    return plan


def _run_probes(stores, plan):
    answers = []
    with Timer() as timer:
        for name, condition in plan:
            answers.append(stores[name].native_query([condition]))
    return timer.elapsed, answers


def _measure(directory, plan, rounds, adopt):
    """Best-of-``rounds`` indexed-probe phase over freshly parsed
    stores; with ``adopt`` the timed phase includes installing the
    persisted snapshot (that *is* the cold-start cost being bought)."""
    best_seconds, best_answers, best_stores = float("inf"), None, None
    for _ in range(rounds):
        stores = load_stores(directory, adopt_indexes=False)
        with Timer() as timer:
            if adopt:
                adopted = adopt_persisted_indexes(directory, stores)
                assert all(adopted.values()), f"adoption failed: {adopted}"
            probe_seconds, answers = _run_probes(stores, plan)
        seconds = timer.elapsed if adopt else probe_seconds
        if seconds < best_seconds:
            best_seconds, best_answers, best_stores = (
                seconds, answers, stores,
            )
    return best_seconds, best_answers, best_stores


def _sweep(config, log=print):
    trajectory = []
    for loci in config["sizes"]:
        corpus = _corpus(loci)
        originals = _originals(corpus, loci)
        plan = _probe_plan(originals)
        expected = [
            originals[name].native_query([condition])
            for name, condition in plan
        ]
        with tempfile.TemporaryDirectory() as directory:
            save_corpus(
                corpus,
                directory,
                citations=originals["PubMed"],
                proteins=originals["SwissProt"],
            )
            lazy_seconds, lazy_answers, lazy_stores = _measure(
                directory, plan, config["rounds"], adopt=False
            )
            adopted_seconds, adopted_answers, adopted_stores = _measure(
                directory, plan, config["rounds"], adopt=True
            )
        assert lazy_answers == expected, "lazy path answer drifted"
        assert adopted_answers == expected, "adopted path answer drifted"
        rebuilt = sum(
            store.fetch_stats()["index_builds"]
            for store in adopted_stores.values()
        )
        assert rebuilt == 0, f"adopted path rebuilt {rebuilt} index(es)"
        assert all(
            store.fetch_stats()["index_builds"] > 0
            for store in lazy_stores.values()
        ), "lazy path must actually pay the rebuilds"
        speedup = lazy_seconds / adopted_seconds
        trajectory.append(
            {
                "loci": loci,
                "probes": len(plan),
                "lazy_seconds": lazy_seconds,
                "adopted_seconds": adopted_seconds,
                "speedup": speedup,
                "indexes_rebuilt_lazy": sum(
                    store.fetch_stats()["index_builds"]
                    for store in lazy_stores.values()
                ),
                "indexes_adopted": sum(
                    store.fetch_stats()["index_adoptions"]
                    for store in adopted_stores.values()
                ),
            }
        )
        log(
            f"  loci={loci} probes={len(plan)}: lazy "
            f"{lazy_seconds * 1e3:.1f} ms, adopted "
            f"{adopted_seconds * 1e3:.1f} ms ({speedup:.1f}x)"
        )
    largest = trajectory[-1]
    assert largest["speedup"] >= config["min_speedup"], (
        f"cold-start speedup only {largest['speedup']:.2f}x at "
        f"{largest['loci']} loci (need >= {config['min_speedup']}x)"
    )
    return trajectory


def _render(trajectory):
    from repro.util.text import table

    rows = [
        [
            point["loci"],
            point["probes"],
            f"{point['lazy_seconds'] * 1e3:.1f}",
            f"{point['adopted_seconds'] * 1e3:.1f}",
            f"{point['speedup']:.1f}x",
            point["indexes_adopted"],
        ]
        for point in trajectory
    ]
    return (
        "Cold start: time-to-first-indexed-answer, lazy rebuild vs "
        "persisted snapshot\n(identical answers asserted; adopted path "
        "rebuilds zero indexes)\n\n"
        + table(
            ["loci", "probes", "lazy ms", "adopted ms", "speedup",
             "indexes adopted"],
            rows,
        )
        + "\n"
    )


def _write(trajectory, results_dir):
    results_dir.mkdir(exist_ok=True)
    artifact = _render(trajectory)
    (results_dir / "coldstart.txt").write_text(artifact, encoding="utf-8")
    (REPO_ROOT / "BENCH_coldstart.json").write_text(
        json.dumps(
            {"benchmark": "coldstart", "sweep": trajectory},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    return artifact


def test_coldstart_sweep(results_dir):
    trajectory = _sweep(FULL, log=lambda *_: None)
    _write(trajectory, results_dir)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced corpus for CI",
    )
    arguments = parser.parse_args(argv)
    config = SMOKE if arguments.smoke else FULL
    print(
        f"cold-start bench ({'smoke' if arguments.smoke else 'full'}): "
        f"sizes={config['sizes']}"
    )
    trajectory = _sweep(config)
    artifact = _write(trajectory, RESULTS_DIR)
    print()
    print(artifact)


if __name__ == "__main__":
    main()
