"""Ablation: MDSM's Hungarian method vs greedy and random assignment.

DESIGN.md decision 3.  The paper's mapping module uses the Hungarian
method to map object correspondences; this bench quantifies what that
buys over a greedy matcher on (a) the real four-source matching task
and (b) synthetic perturbed-schema populations where near-synonym
clusters create greedy traps, plus raw solver performance.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.matching import MdsmMatcher, solve_assignment
from repro.mediator.global_schema import GlobalSchema
from repro.oem import OEMType
from repro.util.rng import DeterministicRng
from repro.util.text import table
from repro.wrappers import default_wrappers
from repro.wrappers.schema import SchemaElement

#: The correct correspondences of the three paper sources (and the
#: matching ground truth also asserted in tests/mediator/test_mapping).
EXPECTED = {
    "LocusLink": {
        "LocusID": "GeneID",
        "Organism": "Species",
        "Symbol": "GeneSymbol",
        "Description": "Definition",
        "Position": "MapPosition",
        "Alias": "AliasSymbol",
        "GoID": "AnnotationID",
        "OmimID": "DiseaseID",
        "PubmedID": "CitationID",
    },
    "GO": {
        "GoID": "AnnotationID",
        "Name": "Title",
        "Namespace": "Aspect",
        "Definition": "Definition",
        "IsA": "ParentTerm",
        "Synonym": "AliasSymbol",
        "Obsolete": "Obsolete",
    },
    "OMIM": {
        "MimNumber": "DiseaseID",
        "Title": "Title",
        "GeneSymbol": "GeneSymbol",
        "Text": "Definition",
        "Inheritance": "Inheritance",
    },
}


def _synthetic_population(size, rng):
    """A matching task built from *greedy traps*.

    Each trap group holds two locals and two globals whose instance
    (sample) overlaps form the classic assignment trap: the locally
    best pair (LA, GP) is globally wrong — taking it forces the poor
    (LB, GQ) leftover, while the optimal matching crosses over.  The
    intended correspondence (the one maximizing total similarity, by
    construction the populations the samples were drawn from) is
    LA -> GQ, LB -> GP.

    Sample Jaccard matrix per group (locals x globals)::

        [[0.90, 0.83],      greedy total  = 0.90 + 0.67
         [0.89, 0.67]]      optimal total = 0.83 + 0.89
    """
    universe = [f"v{draw}" for draw in range(12)]
    locals_ = []
    globals_ = []
    expected = {}
    groups = max(1, size // 2)
    for index in range(groups):
        tag = lambda sample: f"g{index}-{sample}"  # noqa: E731
        local_a = SchemaElement(
            f"L{index}A", OEMType.STRING,
            samples=tuple(tag(s) for s in universe[:10]),
        )
        global_p = SchemaElement(
            f"G{index}P", OEMType.STRING,
            samples=tuple(tag(s) for s in universe[:9]),
        )
        local_b = SchemaElement(
            f"L{index}B", OEMType.STRING,
            samples=tuple(tag(s) for s in universe[:8]),
        )
        global_q = SchemaElement(
            f"G{index}Q", OEMType.STRING,
            samples=tuple(tag(s) for s in universe[:12]),
        )
        locals_.extend([local_a, local_b])
        globals_.extend([global_p, global_q])
        expected[local_a.name] = global_q.name
        expected[local_b.name] = global_p.name
    rng.shuffle(globals_)
    return locals_, globals_, expected


@pytest.mark.parametrize("strategy", ["hungarian", "greedy", "random"])
def test_matching_strategy_quality(benchmark, corpus, strategy):
    """F1 of each strategy on the real LocusLink matching task."""
    wrapper = default_wrappers(corpus)[0]
    local_elements = wrapper.schema_elements()
    global_elements = GlobalSchema().elements()
    matcher = MdsmMatcher(strategy=strategy, threshold=0.0)

    result = benchmark(
        matcher.match, "LocusLink", local_elements, global_elements
    )
    scores = MdsmMatcher.score_against(
        list(result), EXPECTED["LocusLink"]
    )
    if strategy == "hungarian":
        assert scores["f1"] == 1.0
    elif strategy == "random":
        assert scores["f1"] < 0.75


def test_matching_ablation_artifact(benchmark, corpus, results_dir):
    """The full quality table across sources and synthetic sizes."""

    def run_ablation():
        global_elements = GlobalSchema().elements()
        rows = []
        for wrapper in default_wrappers(corpus):
            for strategy in ("hungarian", "greedy", "random"):
                matcher = MdsmMatcher(strategy=strategy, threshold=0.0)
                result = matcher.match(
                    wrapper.name,
                    wrapper.schema_elements(),
                    global_elements,
                )
                scores = MdsmMatcher.score_against(
                    list(result), EXPECTED[wrapper.name]
                )
                rows.append(
                    [
                        wrapper.name,
                        strategy,
                        f"{scores['precision']:.2f}",
                        f"{scores['recall']:.2f}",
                        f"{scores['f1']:.2f}",
                    ]
                )
        for size in (16, 48):
            rng = DeterministicRng(13)
            locals_, globals_, expected = _synthetic_population(size, rng)
            for strategy in ("hungarian", "greedy", "random"):
                matcher = MdsmMatcher(strategy=strategy, threshold=0.0)
                result = matcher.match("synthetic", locals_, globals_)
                scores = MdsmMatcher.score_against(list(result), expected)
                rows.append(
                    [
                        f"synthetic-{size}",
                        strategy,
                        f"{scores['precision']:.2f}",
                        f"{scores['recall']:.2f}",
                        f"{scores['f1']:.2f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rendered = table(
        ["task", "strategy", "precision", "recall", "f1"], rows
    )
    artifact = "MDSM assignment-strategy ablation\n\n" + rendered
    write_artifact(results_dir, "matching_ablation.txt", artifact)
    print()
    print(artifact)

    by_key = {(row[0], row[1]): float(row[4]) for row in rows}
    for task in ("LocusLink", "GO", "OMIM", "synthetic-16", "synthetic-48"):
        assert by_key[(task, "hungarian")] >= by_key[(task, "greedy")]
        assert by_key[(task, "hungarian")] > by_key[(task, "random")]


@pytest.mark.parametrize("size", [10, 30, 60])
def test_hungarian_solver_performance(benchmark, size):
    """Raw O(n^3) solver cost on dense random matrices."""
    rng = DeterministicRng(size)
    matrix = [
        [rng.random() for _ in range(size)] for _ in range(size)
    ]
    assignment, _cost = benchmark(solve_assignment, matrix)
    assert len(assignment) == size
