"""Ablation: multi-system query optimization (DESIGN.md decision 4).

Requirement 3 of the paper: *"the system should serve a query
optimization across multiple systems."*  Measures what selection
pushdown and link-fetch pruning buy, holding the answer fixed (the
equivalence is asserted): rows shipped from sources, mediator residual
evaluations, and wall time.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core import Annoda
from repro.mediator import GlobalQuery, LinkConstraint, OptimizerOptions
from repro.mediator.decompose import Condition
from repro.util.text import table
from repro.wrappers import default_wrappers

CONFIGS = {
    "full optimizer": OptimizerOptions(),
    "no pushdown": OptimizerOptions(enable_pushdown=False),
    "no pruning": OptimizerOptions(enable_pruning=False),
    "no optimization": OptimizerOptions(
        enable_pushdown=False, enable_pruning=False, enable_ordering=False
    ),
}

#: The future-work strategy is measured on its natural workload (a
#: highly selective link) separately, against the same plan without it.
SEMIJOIN_CONFIGS = {
    "scan anchor": OptimizerOptions(),
    "semijoin anchor": OptimizerOptions(enable_semijoin=True),
}


def _query():
    return GlobalQuery(
        anchor_source="LocusLink",
        conditions=(Condition("Species", "=", "Homo sapiens"),),
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(
                    Condition("Aspect", "=", "molecular_function"),
                ),
            ),
            LinkConstraint("OMIM", "exclude", via="DiseaseID"),
        ),
    )


def _annoda_with(corpus, options):
    annoda = Annoda()
    annoda.corpus = corpus
    annoda.mediator.optimizer_options = options
    for wrapper in default_wrappers(corpus):
        annoda.add_source(wrapper)
    return annoda


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_optimizer_config_latency(benchmark, corpus, config_name):
    annoda = _annoda_with(corpus, CONFIGS[config_name])
    query = _query()
    result = benchmark(
        annoda.ask, query, enrich_links=False, use_cache=False
    )
    assert len(result) > 0


def test_optimizer_ablation_artifact(benchmark, corpus, results_dir):
    def run_ablation():
        rows = []
        reference_answer = None
        for name, options in CONFIGS.items():
            annoda = _annoda_with(corpus, options)
            result = annoda.ask(_query(), enrich_links=False)
            answer = set(result.gene_ids())
            if reference_answer is None:
                reference_answer = answer
            # Optimization never changes the answer.
            assert answer == reference_answer
            rows.append(
                [
                    name,
                    result.stats.total_rows_fetched(),
                    result.stats.residual_evaluations,
                    f"{result.stats.wall_seconds:.4f}",
                    f"{annoda.mediator.plan(_query()).estimated_cost:.0f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rendered = table(
        [
            "configuration",
            "rows fetched",
            "residual evals",
            "seconds",
            "est. cost",
        ],
        rows,
    )
    artifact = (
        "Optimizer ablation on the conditioned Figure-5(b) query\n"
        "(identical answers asserted across configurations)\n\n" + rendered
    )
    write_artifact(results_dir, "optimizer_ablation.txt", artifact)
    print()
    print(artifact)

    by_name = {row[0]: row for row in rows}
    # Pushdown cuts rows shipped; disabling everything ships the most.
    assert (
        by_name["full optimizer"][1] < by_name["no pushdown"][1]
    )
    assert (
        by_name["full optimizer"][1] <= by_name["no optimization"][1]
    )
    # Without pushdown the mediator does the filtering itself.
    assert (
        by_name["no pushdown"][2] > by_name["full optimizer"][2]
    )


def test_semijoin_extension_artifact(benchmark, corpus, results_dir):
    """The future-work optimizer: a selective link drives the anchor."""
    selective = GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(Condition("Title", "contains", "kinase"),),
            ),
        ),
    )

    def run():
        rows = []
        reference = None
        for name, options in SEMIJOIN_CONFIGS.items():
            annoda = _annoda_with(corpus, options)
            result = annoda.ask(selective, enrich_links=False)
            answer = set(result.gene_ids())
            if reference is None:
                reference = answer
            assert answer == reference
            rows.append(
                [
                    name,
                    result.stats.rows_fetched.get("LocusLink", 0),
                    result.stats.total_rows_fetched(),
                    f"{result.stats.wall_seconds:.4f}",
                    len(answer),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = table(
        ["strategy", "anchor rows", "total rows", "seconds", "answers"],
        rows,
    )
    artifact = (
        "Semijoin extension on a selective-link query "
        "(GO Title contains 'kinase')\n\n" + rendered
    )
    write_artifact(results_dir, "semijoin_extension.txt", artifact)
    print()
    print(artifact)

    by_name = {row[0]: row for row in rows}
    assert by_name["semijoin anchor"][1] < by_name["scan anchor"][1]
