"""Regenerates Figures 1-5 of the paper as text artifacts."""

import pytest

from benchmarks.conftest import write_artifact
from repro.evaluation import FigureGenerator


@pytest.fixture(scope="module")
def generator(annoda):
    return FigureGenerator(annoda)


def test_figure1_architecture(benchmark, generator, results_dir):
    text = benchmark(generator.figure1)
    assert "Mediator" in text and "Wrapper[LocusLink]" in text
    write_artifact(results_dir, "figure1.txt", text)
    print()
    print(text)


def test_figure2_oml_graph(benchmark, generator, results_dir):
    text = benchmark(generator.figure2)
    assert "objects (vertices):" in text
    assert "--LocusID-->" in text
    write_artifact(results_dir, "figure2.txt", text)
    print()
    print(text)


def test_figure3_oml_serialization(benchmark, generator, results_dir):
    text = benchmark(generator.figure3)
    # The paper's layout: label &oid type 'value', root = &1.
    assert text.startswith("LocusLink &1 Complex")
    assert "LocusID &2 Integer" in text
    write_artifact(results_dir, "figure3.txt", text)
    print()
    print(text)


def test_figure4_gml_model(benchmark, generator, results_dir):
    text = benchmark(generator.figure4)
    assert text.startswith("ANNODA-GML &1 Complex")
    for source in ("LocusLink", "GO", "OMIM"):
        assert f"'{source}'" in text
    write_artifact(results_dir, "figure4.txt", text)
    print()
    print("\n".join(text.splitlines()[:40]))


def test_figure5a_query_interface(benchmark, generator, results_dir):
    text = benchmark(generator.figure5a)
    assert "[anchor] LocusLink" in text
    assert "[include] GO" in text
    assert "[exclude] OMIM" in text
    write_artifact(results_dir, "figure5a.txt", text)
    print()
    print(text)


def test_figure5b_integrated_view(benchmark, generator, annoda,
                                  results_dir):
    text = benchmark.pedantic(
        generator.figure5b, rounds=1, iterations=1
    )
    assert "Annotation integrated view" in text
    # Every shown gene must have GO annotations and no diseases.
    result = annoda.ask(annoda.catalog.figure5b(), enrich_links=False)
    assert set(result.gene_ids()) == (
        annoda.corpus.ground_truth.figure5b_expected()
    )
    write_artifact(results_dir, "figure5b.txt", text)
    print()
    print(text)


def test_figure5c_object_view(benchmark, generator, results_dir):
    text = benchmark.pedantic(generator.figure5c, rounds=1, iterations=1)
    assert "Web links" in text
    write_artifact(results_dir, "figure5c.txt", text)
    print()
    print(text)
