"""Ablation: reconciliation quality across conflict rates (DESIGN.md
decision 5).

Requirement 5: *"resolve the semantic conflicts and contradictions"*.
Sweeps injected conflict rates and reports answer quality (against
corpus ground truth) for the reconciling mediator vs a naive one —
the quantitative version of Table 1's "incorrectness" row.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core import Annoda
from repro.evaluation.metrics import answer_quality
from repro.mediator import (
    GlobalQuery,
    LinkConstraint,
    ReconciliationPolicy,
    Reconciler,
)
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.text import table
from repro.wrappers import default_wrappers

CONFLICT_RATES = (0.0, 0.2, 0.4, 0.6)


def _association_query():
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "OMIM", "include", via="DiseaseID", symbol_join=True
            ),
        ),
    )


def _conflicted(rate):
    return AnnotationCorpus.generate(
        seed=7,
        parameters=CorpusParameters(
            loci=400,
            go_terms=200,
            omim_entries=120,
            omim_link_rate=0.4,
            conflict_rate=rate,
        ),
    )


def _annoda(corpus, reconcile):
    annoda = Annoda()
    annoda.corpus = corpus
    if not reconcile:
        annoda.mediator.reconciler = Reconciler(
            ReconciliationPolicy.naive()
        )
    for wrapper in default_wrappers(corpus):
        annoda.add_source(wrapper)
    return annoda


@pytest.mark.parametrize("reconcile", [True, False],
                         ids=["reconciled", "naive"])
def test_reconciliation_latency(benchmark, reconcile):
    corpus = _conflicted(0.4)
    annoda = _annoda(corpus, reconcile)
    result = benchmark.pedantic(
        annoda.ask,
        args=(_association_query(),),
        kwargs={"enrich_links": False, "use_cache": False},
        rounds=3,
        iterations=1,
    )
    assert len(result) > 0


def test_reconciliation_sweep_artifact(benchmark, results_dir):
    def sweep():
        rows = []
        for rate in CONFLICT_RATES:
            corpus = _conflicted(rate)
            truth = corpus.ground_truth.loci_with_omim()
            for label, reconcile in (("reconciled", True),
                                     ("naive", False)):
                annoda = _annoda(corpus, reconcile)
                result = annoda.ask(
                    _association_query(), enrich_links=False
                )
                quality = answer_quality(result.gene_ids(), truth)
                rows.append(
                    [
                        f"{rate:.1f}",
                        label,
                        f"{quality['recall']:.3f}",
                        f"{quality['precision']:.3f}",
                        quality["errors"],
                        result.reconciliation.count(),
                        result.reconciliation.repaired_count(),
                    ]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = table(
        [
            "conflict rate",
            "mediator",
            "recall",
            "precision",
            "errors",
            "conflicts seen",
            "repaired",
        ],
        rows,
    )
    artifact = (
        "Reconciliation sweep: gene-disease association recovery\n"
        "(truth = corpus ground truth; errors = FP + FN)\n\n" + rendered
    )
    write_artifact(results_dir, "reconcile_sweep.txt", artifact)
    print()
    print(artifact)

    by_key = {(row[0], row[1]): row for row in rows}
    for rate in CONFLICT_RATES:
        key = f"{rate:.1f}"
        reconciled = by_key[(key, "reconciled")]
        naive = by_key[(key, "naive")]
        # The reconciling mediator is never worse, and achieves full
        # recall at every conflict rate.
        assert float(reconciled[2]) == 1.0
        assert float(reconciled[2]) >= float(naive[2])
    # At high conflict rates the naive mediator measurably loses.
    assert float(by_key[("0.6", "naive")][2]) < 1.0


def test_cross_validation_artifact(benchmark, results_dir):
    """The introduction's cross-validation benefit, made runnable: the
    integrity auditor surfaces every injected cross-source conflict."""
    from repro.sources.integrity import IntegrityAuditor

    corpus = _conflicted(0.5)

    def audit():
        return IntegrityAuditor(
            {
                "LocusLink": corpus.locuslink,
                "GO": corpus.go,
                "OMIM": corpus.omim,
            }
        ).audit()

    report = benchmark.pedantic(audit, rounds=3, iterations=1)
    injected = len(corpus.ground_truth.conflicts)
    assert report.count() >= injected
    artifact = (
        "Cross-source validation audit (conflict rate 0.5, 400 loci)\n"
        f"(corpus injected {injected} conflicts)\n\n"
        + report.render(limit=12)
    )
    write_artifact(results_dir, "cross_validation.txt", artifact)
    print()
    print(artifact)
