"""Regenerates Table 1: the four-system comparison matrix.

Paper artifact: Table 1 (the only table).  The regenerated matrix is
rendered from implemented systems' traits, with behavioural probes
backing the reconciliation / freshness / extensibility cells.
"""

from benchmarks.conftest import write_artifact
from repro.evaluation import build_table1
from repro.evaluation.table1 import CRITERIA


def test_table1_regeneration(benchmark, corpus, conflicted_corpus,
                             results_dir):
    table1 = benchmark.pedantic(
        build_table1,
        args=(corpus, conflicted_corpus),
        rounds=1,
        iterations=1,
    )
    # Shape: 15 criteria x 4 systems, as in the paper.
    assert len(table1.rows()) == len(CRITERIA) == 15
    assert table1.headers()[1:] == [
        "K2/Kleisli",
        "DiscoveryLink",
        "Warehouse (GUS)",
        "ANNODA",
    ]
    # The differentiating cells the paper highlights.
    cells = {row[0]: row[1:] for row in table1.rows()}
    assert cells["Incorrectness due to inconsistent and incompatible data"][
        3
    ] == "Reconciliation of results"
    assert cells["Low-level treatment of data"][3] == (
        "Supported (self-describing model)"
    )
    rendered = table1.render()
    write_artifact(results_dir, "table1.txt", rendered)
    print()
    print(rendered)
