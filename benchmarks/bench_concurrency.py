"""Concurrency benchmark: the federated fetch boundary under load.

Each per-source fetch is wrapped in a :class:`FlakyWrapper` that
sleeps a fixed latency (emulating a remote annotation database's
round-trip) and optionally injects deterministic faults.  The harness
then answers a two-link conditioned query (five mutually independent
per-source fetches: anchor, two link steps, two enrichment details)
while sweeping the federation's worker count x the injected fault
rate, asserting:

1. the concurrent configurations return gene-for-gene identical
   answers to the sequential one (with retries absorbing the faults);
2. the concurrent wall-clock beats the sequential wall-clock at the
   2000-loci corpus (the acceptance bar);
3. a blacked-out source under a degrading policy yields a *partial*
   answer whose report marks the source degraded — no exception.

Writes ``benchmarks/results/concurrency.txt`` and the
machine-readable ``BENCH_concurrency.json`` at the repo root.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_concurrency.py --smoke
"""

import argparse
import json
import pathlib

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.mediator.fetch import FederationPolicy, FlakyWrapper
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.text import table
from repro.util.timer import Timer
from repro.wrappers import default_wrappers

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = {
    "sizes": (500, 2000),
    "workers": (1, 2, 4, 8),
    "fault_rates": (0.0, 0.4),
    "latency": 0.05,
    "rounds": 2,
    "min_speedup": 1.3,
}
SMOKE = {
    "sizes": (200,),
    "workers": (1, 4),
    "fault_rates": (0.0, 0.4),
    "latency": 0.01,
    "rounds": 1,
    "min_speedup": 1.05,
}

#: Retry budget generous enough that every fault-rate sweep converges.
RETRIES = 8

#: Shard sweep (``--shards``): the stage scheduler fans each logical
#: fetch across the (shard, replica) grid, so with a per-row remote
#: scan-cost model the wall-clock should fall near-linearly with shard
#: count.  ``min_speedup`` is the acceptance bar at 4 shards vs 1.
SHARD_FULL = {
    "loci": 100_000,
    "shards": (1, 2, 4, 8),
    "replicas": 2,
    "workers": 8,
    "scan_latency_per_row": 1e-4,
    "rounds": 2,
    "min_speedup": 2.5,
}
SHARD_SMOKE = {
    "loci": 2000,
    "shards": (1, 2, 4),
    "replicas": 2,
    "workers": 8,
    "scan_latency_per_row": 1e-4,
    "rounds": 1,
    "min_speedup": 1.2,
}


def _bench_query():
    """Two conditioned include links: the anchor fetch, both link
    fetches and both enrichment fetches are mutually independent, so
    the concurrent boundary has real work to overlap."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(
                    Condition("Aspect", "=", "molecular_function"),
                ),
            ),
            LinkConstraint(
                "OMIM",
                "include",
                via="DiseaseID",
                conditions=(Condition("Inheritance", "=", "X-linked"),),
            ),
        ),
    )


def _corpus(loci):
    return AnnotationCorpus.generate(
        seed=11,
        parameters=CorpusParameters(
            loci=loci,
            go_terms=max(60, loci // 4),
            omim_entries=max(30, loci // 8),
        ),
    )


def _mediator(corpus, policy, latency=0.0, fault_rate=0.0, blackout=()):
    """A fresh federation whose wrappers emulate remote sources."""
    mediator = Mediator(federation=policy)
    for index, wrapper in enumerate(default_wrappers(corpus)):
        mediator.register_wrapper(
            FlakyWrapper(
                wrapper,
                latency=latency,
                error_rate=fault_rate,
                blackout=wrapper.name in blackout,
                # Seeds chosen so the fault-rate sweep actually injects
                # failures within each wrapper's first few draws.
                seed=2003 + 4 * index,
            )
        )
    return mediator


def _run_once(corpus, workers, fault_rate, latency):
    """(seconds, result) for one cold federated execution."""
    policy = FederationPolicy(
        max_workers=workers,
        retries=RETRIES if fault_rate else 0,
        backoff=0.0,
    )
    mediator = _mediator(
        corpus, policy, latency=latency, fault_rate=fault_rate
    )
    query = _bench_query()
    with Timer() as timer:
        result = mediator.query(query, use_cache=False)
    return timer.elapsed, result


def _best_of(rounds, run):
    best_seconds, best_result = float("inf"), None
    for _ in range(rounds):
        seconds, result = run()
        if seconds < best_seconds:
            best_seconds, best_result = seconds, result
    return best_seconds, best_result


def _sweep(config, log=print):
    rows, trajectory = [], []
    for loci in config["sizes"]:
        corpus = _corpus(loci)
        baseline_ids = None
        sequential_clean = None
        for fault_rate in config["fault_rates"]:
            for workers in config["workers"]:
                seconds, result = _best_of(
                    config["rounds"],
                    lambda w=workers, r=fault_rate: _run_once(
                        corpus, w, r, config["latency"]
                    ),
                )
                if baseline_ids is None:
                    baseline_ids = result.gene_ids()
                assert result.gene_ids() == baseline_ids, (
                    f"answer drifted at workers={workers} "
                    f"fault_rate={fault_rate}"
                )
                assert result.report.ok, "no degradation expected here"
                if fault_rate == 0.0 and workers == 1:
                    sequential_clean = seconds
                speedup = (
                    sequential_clean / seconds
                    if sequential_clean and fault_rate == 0.0
                    else None
                )
                rows.append(
                    [
                        loci,
                        workers,
                        f"{fault_rate:.1f}",
                        f"{seconds * 1e3:.1f}",
                        result.report.retries,
                        f"{speedup:.2f}x" if speedup else "-",
                    ]
                )
                trajectory.append(
                    {
                        "loci": loci,
                        "workers": workers,
                        "fault_rate": fault_rate,
                        "seconds": seconds,
                        "retries": result.report.retries,
                        "concurrent_batches": (
                            result.report.concurrent_batches
                        ),
                        "genes": len(result),
                        "speedup_vs_sequential": speedup,
                    }
                )
                log(
                    f"  loci={loci} workers={workers} "
                    f"faults={fault_rate:.1f}: {seconds * 1e3:.1f} ms"
                )
        # The acceptance bar: at the largest corpus, the widest clean
        # configuration must beat the sequential one on wall-clock.
        if loci == max(config["sizes"]):
            widest = [
                point for point in trajectory
                if point["loci"] == loci
                and point["fault_rate"] == 0.0
                and point["workers"] == max(config["workers"])
            ][0]
            speedup = sequential_clean / widest["seconds"]
            assert speedup >= config["min_speedup"], (
                f"concurrent speedup only {speedup:.2f}x "
                f"(need >= {config['min_speedup']}x)"
            )
            log(
                f"  concurrency speedup at {loci} loci: {speedup:.2f}x "
                f"({max(config['workers'])} workers vs sequential)"
            )
    return rows, trajectory


def _blackout_scenario(config, log=print):
    """One source fully dark under a degrading policy: the query still
    answers, partially, and says so."""
    corpus = _corpus(min(config["sizes"]))
    policy = FederationPolicy(
        max_workers=max(config["workers"]), on_failure="degrade"
    )
    mediator = _mediator(
        corpus, policy, latency=config["latency"], blackout=("GO",)
    )
    query = _bench_query()
    result = mediator.query(query, use_cache=False)
    assert "GO" in result.report.degraded, "GO must be marked degraded"
    assert not result.report.ok
    log(
        f"  blackout: partial answer of {len(result)} genes, "
        f"degraded={list(result.report.degraded)}"
    )
    return {
        "degraded": list(result.report.degraded),
        "genes": len(result),
        "sources": {
            name: report.status
            for name, report in result.report.sources.items()
        },
    }


def _shard_mediator(corpus, config, shards, blackout_replica=None):
    """A federation on a (shard, replica) grid whose wrappers charge a
    per-row remote partition-scan cost — the cost the scheduler's
    fan-out amortizes."""
    policy = FederationPolicy(max_workers=config["workers"])
    mediator = Mediator(federation=policy)
    groups = [
        default_wrappers(corpus, shards=shards)
        for _ in range(config["replicas"])
    ]
    for index, replica_wrappers in enumerate(zip(*groups)):
        wrapped = [
            FlakyWrapper(
                wrapper,
                scan_latency_per_row=config["scan_latency_per_row"],
                blackout=(
                    replica_index == blackout_replica
                    and wrapper.name == "GO"
                ),
                seed=3001 + 4 * index + replica_index,
            )
            for replica_index, wrapper in enumerate(replica_wrappers)
        ]
        if len(wrapped) == 1:
            mediator.register_wrapper(wrapped[0])
        else:
            mediator.register_replicas(wrapped)
    return mediator


def _shard_sweep(config, log=print):
    """Wall-clock vs shard count at a fixed worker pool, identical
    answers asserted against the single-shard baseline."""
    corpus = _corpus(config["loci"])
    query = _bench_query()
    rows, trajectory = [], []
    baseline_ids, baseline_seconds = None, None
    for shards in config["shards"]:
        # One mediator per grid shape, timed over several rounds: the
        # best round measures the steady state (warm per-shard
        # indexes), so the sweep isolates the scan cost the grid
        # amortizes instead of the one-time index builds.
        mediator = _shard_mediator(corpus, config, shards)

        def run(m=mediator):
            with Timer() as timer:
                result = m.query(query, use_cache=False)
            return timer.elapsed, result

        run()  # cold round: builds the per-shard indexes
        seconds, result = _best_of(config["rounds"], run)
        if baseline_ids is None:
            baseline_ids = result.gene_ids()
            baseline_seconds = seconds
        assert result.gene_ids() == baseline_ids, (
            f"answer drifted at {shards} shard(s)"
        )
        assert result.report.ok
        speedup = baseline_seconds / seconds
        rows.append(
            [
                config["loci"],
                shards,
                config["replicas"],
                f"{seconds * 1e3:.1f}",
                result.stats.shard_fans,
                f"{speedup:.2f}x",
            ]
        )
        trajectory.append(
            {
                "loci": config["loci"],
                "shards": shards,
                "replicas": config["replicas"],
                "workers": config["workers"],
                "seconds": seconds,
                "shard_fans": result.stats.shard_fans,
                "genes": len(result),
                "speedup_vs_one_shard": speedup,
            }
        )
        log(
            f"  loci={config['loci']} shards={shards} "
            f"replicas={config['replicas']}: {seconds * 1e3:.1f} ms "
            f"({speedup:.2f}x)"
        )
    at_four = [point for point in trajectory if point["shards"] == 4][0]
    assert at_four["speedup_vs_one_shard"] >= config["min_speedup"], (
        f"shard speedup only {at_four['speedup_vs_one_shard']:.2f}x at "
        f"4 shards (need >= {config['min_speedup']}x)"
    )
    log(
        f"  shard speedup at {config['loci']} loci: "
        f"{at_four['speedup_vs_one_shard']:.2f}x (4 shards vs 1)"
    )
    return rows, trajectory


def _dead_replica_scenario(config, log=print):
    """One GO replica dark: the sibling absorbs every placed fetch,
    the answer stays complete and nothing degrades."""
    shards = max(config["shards"])
    corpus = _corpus(min(2000, config["loci"]))
    query = _bench_query()
    healthy = _shard_mediator(corpus, config, shards)
    baseline = healthy.query(query, use_cache=False)
    mediator = _shard_mediator(
        corpus, config, shards, blackout_replica=0
    )
    result = mediator.query(query, use_cache=False)
    assert result.gene_ids() == baseline.gene_ids()
    assert result.report.ok
    assert result.stats.replica_failovers > 0
    assert result.stats.degraded_sources == []
    log(
        f"  dead replica: complete answer of {len(result)} genes, "
        f"{result.stats.replica_failovers} failover(s), none degraded"
    )
    return {
        "shards": shards,
        "replicas": config["replicas"],
        "genes": len(result),
        "replica_failovers": result.stats.replica_failovers,
        "degraded": list(result.report.degraded),
    }


def _render(rows, blackout):
    rendered = table(
        ["loci", "workers", "fault rate", "ms", "retries", "speedup"],
        rows,
    )
    return (
        "Federated fetch concurrency: workers x fault-rate sweep\n"
        f"(per-fetch injected latency emulates remote sources; "
        "identical answers asserted across all configurations)\n\n"
        + rendered
        + "\n\nBlackout scenario (GO dark, degrading policy): "
        + f"partial answer, degraded={blackout['degraded']}\n"
    )


def _render_shards(rows, dead_replica):
    rendered = table(
        ["loci", "shards", "replicas", "ms", "shard fans", "speedup"],
        rows,
    )
    return (
        "Shard sweep: wall-clock vs shard count at a fixed worker "
        "pool\n(per-row injected scan latency emulates remote "
        "partition scans; identical answers asserted at every grid "
        "shape)\n\n"
        + rendered
        + "\n\nDead-replica scenario (one GO replica dark): complete "
        + f"answer, {dead_replica['replica_failovers']} failover(s), "
        + f"degraded={dead_replica['degraded']}\n"
    )


def _write_json(payload):
    """Merge fresh sections into ``BENCH_concurrency.json``, keeping
    whichever sections this run did not regenerate."""
    path = REPO_ROOT / "BENCH_concurrency.json"
    merged = {"benchmark": "concurrency"}
    if path.exists():
        merged.update(json.loads(path.read_text(encoding="utf-8")))
    merged.update(payload)
    path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _write(rows, trajectory, blackout, results_dir):
    results_dir.mkdir(exist_ok=True)
    artifact = _render(rows, blackout)
    (results_dir / "concurrency.txt").write_text(
        artifact, encoding="utf-8"
    )
    _write_json({"sweep": trajectory, "blackout": blackout})
    return artifact


def _write_shards(rows, trajectory, dead_replica, results_dir):
    results_dir.mkdir(exist_ok=True)
    artifact = _render_shards(rows, dead_replica)
    (results_dir / "concurrency_shards.txt").write_text(
        artifact, encoding="utf-8"
    )
    _write_json(
        {"shard_sweep": trajectory, "dead_replica": dead_replica}
    )
    return artifact


def test_concurrency_sweep(results_dir):
    rows, trajectory = _sweep(FULL, log=lambda *_: None)
    blackout = _blackout_scenario(FULL, log=lambda *_: None)
    _write(rows, trajectory, blackout, results_dir)


def test_shard_sweep(results_dir):
    rows, trajectory = _shard_sweep(SHARD_SMOKE, log=lambda *_: None)
    dead = _dead_replica_scenario(SHARD_SMOKE, log=lambda *_: None)
    _write_shards(rows, trajectory, dead, results_dir)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced corpus and sweep for CI",
    )
    parser.add_argument(
        "--shards",
        action="store_true",
        help="run the shard-grid sweep instead of the worker sweep",
    )
    arguments = parser.parse_args(argv)
    mode = "smoke" if arguments.smoke else "full"
    if arguments.shards:
        config = SHARD_SMOKE if arguments.smoke else SHARD_FULL
        print(
            f"shard sweep ({mode}): loci={config['loci']} "
            f"shards={config['shards']} replicas={config['replicas']} "
            f"workers={config['workers']}"
        )
        rows, trajectory = _shard_sweep(config)
        dead = _dead_replica_scenario(config)
        artifact = _write_shards(rows, trajectory, dead, RESULTS_DIR)
        print()
        print(artifact)
        return
    config = SMOKE if arguments.smoke else FULL
    print(
        f"concurrency bench ({mode}): "
        f"sizes={config['sizes']} workers={config['workers']} "
        f"fault_rates={config['fault_rates']}"
    )
    rows, trajectory = _sweep(config)
    blackout = _blackout_scenario(config)
    artifact = _write(rows, trajectory, blackout, RESULTS_DIR)
    print()
    print(artifact)


if __name__ == "__main__":
    main()
