"""Concurrency benchmark: the federated fetch boundary under load.

Each per-source fetch is wrapped in a :class:`FlakyWrapper` that
sleeps a fixed latency (emulating a remote annotation database's
round-trip) and optionally injects deterministic faults.  The harness
then answers a two-link conditioned query (five mutually independent
per-source fetches: anchor, two link steps, two enrichment details)
while sweeping the federation's worker count x the injected fault
rate, asserting:

1. the concurrent configurations return gene-for-gene identical
   answers to the sequential one (with retries absorbing the faults);
2. the concurrent wall-clock beats the sequential wall-clock at the
   2000-loci corpus (the acceptance bar);
3. a blacked-out source under a degrading policy yields a *partial*
   answer whose report marks the source degraded — no exception.

Writes ``benchmarks/results/concurrency.txt`` and the
machine-readable ``BENCH_concurrency.json`` at the repo root.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_concurrency.py --smoke
"""

import argparse
import json
import pathlib

from repro.mediator import GlobalQuery, LinkConstraint, Mediator
from repro.mediator.decompose import Condition
from repro.mediator.fetch import FederationPolicy, FlakyWrapper
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.text import table
from repro.util.timer import Timer
from repro.wrappers import default_wrappers

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = {
    "sizes": (500, 2000),
    "workers": (1, 2, 4, 8),
    "fault_rates": (0.0, 0.4),
    "latency": 0.05,
    "rounds": 2,
    "min_speedup": 1.3,
}
SMOKE = {
    "sizes": (200,),
    "workers": (1, 4),
    "fault_rates": (0.0, 0.4),
    "latency": 0.01,
    "rounds": 1,
    "min_speedup": 1.05,
}

#: Retry budget generous enough that every fault-rate sweep converges.
RETRIES = 8


def _bench_query():
    """Two conditioned include links: the anchor fetch, both link
    fetches and both enrichment fetches are mutually independent, so
    the concurrent boundary has real work to overlap."""
    return GlobalQuery(
        anchor_source="LocusLink",
        links=(
            LinkConstraint(
                "GO",
                "include",
                via="AnnotationID",
                conditions=(
                    Condition("Aspect", "=", "molecular_function"),
                ),
            ),
            LinkConstraint(
                "OMIM",
                "include",
                via="DiseaseID",
                conditions=(Condition("Inheritance", "=", "X-linked"),),
            ),
        ),
    )


def _corpus(loci):
    return AnnotationCorpus.generate(
        seed=11,
        parameters=CorpusParameters(
            loci=loci,
            go_terms=max(60, loci // 4),
            omim_entries=max(30, loci // 8),
        ),
    )


def _mediator(corpus, policy, latency=0.0, fault_rate=0.0, blackout=()):
    """A fresh federation whose wrappers emulate remote sources."""
    mediator = Mediator(federation=policy)
    for index, wrapper in enumerate(default_wrappers(corpus)):
        mediator.register_wrapper(
            FlakyWrapper(
                wrapper,
                latency=latency,
                error_rate=fault_rate,
                blackout=wrapper.name in blackout,
                # Seeds chosen so the fault-rate sweep actually injects
                # failures within each wrapper's first few draws.
                seed=2003 + 4 * index,
            )
        )
    return mediator


def _run_once(corpus, workers, fault_rate, latency):
    """(seconds, result) for one cold federated execution."""
    policy = FederationPolicy(
        max_workers=workers,
        retries=RETRIES if fault_rate else 0,
        backoff=0.0,
    )
    mediator = _mediator(
        corpus, policy, latency=latency, fault_rate=fault_rate
    )
    query = _bench_query()
    with Timer() as timer:
        result = mediator.query(query, use_cache=False)
    return timer.elapsed, result


def _best_of(rounds, run):
    best_seconds, best_result = float("inf"), None
    for _ in range(rounds):
        seconds, result = run()
        if seconds < best_seconds:
            best_seconds, best_result = seconds, result
    return best_seconds, best_result


def _sweep(config, log=print):
    rows, trajectory = [], []
    for loci in config["sizes"]:
        corpus = _corpus(loci)
        baseline_ids = None
        sequential_clean = None
        for fault_rate in config["fault_rates"]:
            for workers in config["workers"]:
                seconds, result = _best_of(
                    config["rounds"],
                    lambda w=workers, r=fault_rate: _run_once(
                        corpus, w, r, config["latency"]
                    ),
                )
                if baseline_ids is None:
                    baseline_ids = result.gene_ids()
                assert result.gene_ids() == baseline_ids, (
                    f"answer drifted at workers={workers} "
                    f"fault_rate={fault_rate}"
                )
                assert result.report.ok, "no degradation expected here"
                if fault_rate == 0.0 and workers == 1:
                    sequential_clean = seconds
                speedup = (
                    sequential_clean / seconds
                    if sequential_clean and fault_rate == 0.0
                    else None
                )
                rows.append(
                    [
                        loci,
                        workers,
                        f"{fault_rate:.1f}",
                        f"{seconds * 1e3:.1f}",
                        result.report.retries,
                        f"{speedup:.2f}x" if speedup else "-",
                    ]
                )
                trajectory.append(
                    {
                        "loci": loci,
                        "workers": workers,
                        "fault_rate": fault_rate,
                        "seconds": seconds,
                        "retries": result.report.retries,
                        "concurrent_batches": (
                            result.report.concurrent_batches
                        ),
                        "genes": len(result),
                        "speedup_vs_sequential": speedup,
                    }
                )
                log(
                    f"  loci={loci} workers={workers} "
                    f"faults={fault_rate:.1f}: {seconds * 1e3:.1f} ms"
                )
        # The acceptance bar: at the largest corpus, the widest clean
        # configuration must beat the sequential one on wall-clock.
        if loci == max(config["sizes"]):
            widest = [
                point for point in trajectory
                if point["loci"] == loci
                and point["fault_rate"] == 0.0
                and point["workers"] == max(config["workers"])
            ][0]
            speedup = sequential_clean / widest["seconds"]
            assert speedup >= config["min_speedup"], (
                f"concurrent speedup only {speedup:.2f}x "
                f"(need >= {config['min_speedup']}x)"
            )
            log(
                f"  concurrency speedup at {loci} loci: {speedup:.2f}x "
                f"({max(config['workers'])} workers vs sequential)"
            )
    return rows, trajectory


def _blackout_scenario(config, log=print):
    """One source fully dark under a degrading policy: the query still
    answers, partially, and says so."""
    corpus = _corpus(min(config["sizes"]))
    policy = FederationPolicy(
        max_workers=max(config["workers"]), on_failure="degrade"
    )
    mediator = _mediator(
        corpus, policy, latency=config["latency"], blackout=("GO",)
    )
    query = _bench_query()
    result = mediator.query(query, use_cache=False)
    assert "GO" in result.report.degraded, "GO must be marked degraded"
    assert not result.report.ok
    log(
        f"  blackout: partial answer of {len(result)} genes, "
        f"degraded={list(result.report.degraded)}"
    )
    return {
        "degraded": list(result.report.degraded),
        "genes": len(result),
        "sources": {
            name: report.status
            for name, report in result.report.sources.items()
        },
    }


def _render(rows, blackout):
    rendered = table(
        ["loci", "workers", "fault rate", "ms", "retries", "speedup"],
        rows,
    )
    return (
        "Federated fetch concurrency: workers x fault-rate sweep\n"
        f"(per-fetch injected latency emulates remote sources; "
        "identical answers asserted across all configurations)\n\n"
        + rendered
        + "\n\nBlackout scenario (GO dark, degrading policy): "
        + f"partial answer, degraded={blackout['degraded']}\n"
    )


def _write(rows, trajectory, blackout, results_dir):
    results_dir.mkdir(exist_ok=True)
    artifact = _render(rows, blackout)
    (results_dir / "concurrency.txt").write_text(
        artifact, encoding="utf-8"
    )
    (REPO_ROOT / "BENCH_concurrency.json").write_text(
        json.dumps(
            {
                "benchmark": "concurrency",
                "sweep": trajectory,
                "blackout": blackout,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    return artifact


def test_concurrency_sweep(results_dir):
    rows, trajectory = _sweep(FULL, log=lambda *_: None)
    blackout = _blackout_scenario(FULL, log=lambda *_: None)
    _write(rows, trajectory, blackout, results_dir)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced corpus and sweep for CI",
    )
    arguments = parser.parse_args(argv)
    config = SMOKE if arguments.smoke else FULL
    print(
        f"concurrency bench ({'smoke' if arguments.smoke else 'full'}): "
        f"sizes={config['sizes']} workers={config['workers']} "
        f"fault_rates={config['fault_rates']}"
    )
    rows, trajectory = _sweep(config)
    blackout = _blackout_scenario(config)
    artifact = _write(rows, trajectory, blackout, RESULTS_DIR)
    print()
    print(artifact)


if __name__ == "__main__":
    main()
