"""Benchmarks the downstream-analysis claim: automated large-scale
analysis tasks over the federation (GO enrichment at paper scale)."""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis import EnrichmentAnalyzer


@pytest.fixture(scope="module")
def analyzer(annoda):
    return EnrichmentAnalyzer(annoda)


@pytest.fixture(scope="module")
def disease_result(annoda):
    return annoda.ask(
        "find genes associated with some OMIM disease",
        enrich_links=False,
    )


def test_annotation_gathering(benchmark, analyzer):
    per_gene = benchmark(analyzer.annotations)
    assert per_gene


def test_enrichment_of_disease_genes(benchmark, analyzer, disease_result,
                                     results_dir):
    results = benchmark.pedantic(
        analyzer.enrich_result, args=(disease_result,), rounds=3,
        iterations=1,
    )
    assert results
    lines = [
        "GO enrichment of the OMIM-associated gene set "
        f"({len(disease_result)} genes, 500-loci corpus):",
        "",
    ]
    lines.extend(f"  {hit.render()}" for hit in results[:10])
    artifact = "\n".join(lines)
    write_artifact(results_dir, "enrichment.txt", artifact)
    print()
    print(artifact)
