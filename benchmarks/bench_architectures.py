"""Quantifies the section-5 comparative discussion: the four
integration architectures on the Figure-5(b) workload.

Expected shape (paper section 5 + Table 1):

- the warehouse answers fastest but pays an up-front ETL and goes
  stale on source updates;
- hypertext navigation needs a number of user actions proportional to
  the corpus (no automated large-scale analysis);
- the unmediated multidatabase ships whole extents to the middleware
  and does not reconcile;
- ANNODA answers in one automated query, reconciled and always fresh.
"""


import pytest

from benchmarks.conftest import write_artifact
from repro.baselines import (
    HypertextNavigationSystem,
    K2KleisliSystem,
    WarehouseSystem,
)
from repro.core import Annoda
from repro.evaluation import AnnodaSystem
from repro.evaluation.metrics import answer_quality
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.text import table
from repro.util.timer import Timer
from repro.wrappers import default_wrappers

SIZES = (100, 300, 1000)


def _corpus(size):
    return AnnotationCorpus.generate(
        seed=7,
        parameters=CorpusParameters(
            loci=size,
            go_terms=max(30, size // 2),
            omim_entries=max(10, size // 4),
        ),
    )


def _systems(corpus):
    annoda = Annoda()
    annoda.corpus = corpus
    for wrapper in default_wrappers(corpus):
        annoda.add_source(wrapper)
    warehouse = WarehouseSystem(default_wrappers(corpus))
    warehouse.etl()
    return {
        "hypertext": HypertextNavigationSystem(default_wrappers(corpus)),
        "multidatabase": K2KleisliSystem(default_wrappers(corpus)),
        "warehouse": warehouse,
        "annoda": AnnodaSystem(annoda),
    }


@pytest.fixture(scope="module")
def medium_systems():
    corpus = _corpus(300)
    return corpus, _systems(corpus)


@pytest.mark.parametrize(
    "system_name", ["hypertext", "multidatabase", "warehouse", "annoda"]
)
def test_figure5b_workload_latency(benchmark, medium_systems, system_name):
    corpus, systems = medium_systems
    system = systems[system_name]
    answer, _effort = benchmark.pedantic(
        system.integrated_gene_disease_query, rounds=3, iterations=1
    )
    # On a clean corpus every architecture gets the right answer; the
    # differences are cost and freshness, not correctness.
    assert answer == corpus.ground_truth.figure5b_expected()


def test_architecture_comparison_artifact(benchmark, results_dir):
    """The full sweep: who wins, by what, where the crossover is."""
    headers = [
        "loci",
        "system",
        "seconds",
        "recall",
        "rows shipped",
        "user actions",
        "fresh?",
    ]

    def sweep():
        collected = []
        for size in SIZES:
            corpus = _corpus(size)
            systems = _systems(corpus)
            truth = corpus.ground_truth.figure5b_expected()
            for name, system in systems.items():
                with Timer() as timer:
                    answer, effort = (
                        system.integrated_gene_disease_query()
                    )
                elapsed = timer.elapsed
                quality = answer_quality(answer, truth)
                collected.append(
                    [
                        size,
                        name,
                        f"{elapsed:.4f}",
                        f"{quality['recall']:.2f}",
                        effort.get("rows_shipped", "-"),
                        effort.get("user_actions", "-"),
                        "no (stale on update)"
                        if name == "warehouse"
                        else "yes",
                    ]
                )
        return collected

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = table(headers, rows)
    artifact = (
        "Architecture comparison on the Figure-5(b) workload\n"
        "(clean corpus: all correct; cost and freshness differ)\n\n"
        + rendered
    )
    write_artifact(results_dir, "architectures.txt", artifact)
    print()
    print(artifact)

    # Shape assertions: hypertext's manual cost scales with the corpus.
    hypertext_actions = [
        int(row[5]) for row in rows if row[1] == "hypertext"
    ]
    assert hypertext_actions[0] < hypertext_actions[-1]
    assert hypertext_actions[-1] >= SIZES[-1]


def test_warehouse_pays_etl_and_staleness(benchmark, results_dir):
    """Freshness trade-off: warehouse query is fast, but after a source
    update it is wrong until the next (costly) ETL; ANNODA reflects the
    update immediately."""
    from repro.sources.locuslink import LocusRecord

    corpus = _corpus(300)
    systems = _systems(corpus)
    warehouse = systems["warehouse"]
    annoda = systems["annoda"]

    def freshness_experiment():
        new_locus = LocusRecord(
            locus_id=900001,
            organism="Homo sapiens",
            symbol="FRESH9",
            go_ids=[corpus.go.term_ids()[5]],
        )
        corpus.locuslink.add(new_locus)
        try:
            stale_answer, stale_effort = (
                warehouse.integrated_gene_disease_query()
            )
            fresh_answer, _ = annoda.integrated_gene_disease_query()
            with Timer() as timer:
                warehouse.etl()
            etl_cost = timer.elapsed
            reloaded_answer, _ = warehouse.integrated_gene_disease_query()
        finally:
            corpus.locuslink.remove(900001)
            warehouse.etl()
        return (
            stale_answer, stale_effort, fresh_answer, etl_cost,
            reloaded_answer,
        )

    (stale_answer, stale_effort, fresh_answer, etl_seconds,
     reloaded_answer) = benchmark.pedantic(
        freshness_experiment, rounds=1, iterations=1
    )
    assert 900001 not in stale_answer
    assert stale_effort["stale"] is True
    assert 900001 in fresh_answer
    assert 900001 in reloaded_answer
    artifact = (
        "Freshness experiment (300 loci):\n"
        f"  warehouse answer after source update: STALE "
        f"(missed the new locus)\n"
        f"  ANNODA answer after source update: fresh\n"
        f"  warehouse re-ETL cost: {etl_seconds:.4f}s\n"
    )
    write_artifact(results_dir, "freshness.txt", artifact)
    print()
    print(artifact)
