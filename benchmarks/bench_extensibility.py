"""Extensibility experiment: plugging a new source in at run time.

Requirement 2: *"a new annotation data source should be wrapped and
plugged in as it comes into existence."*  Measures the cost of the
two-step plug-in (MDSM matching + mediator interface) and verifies the
federation answers four-source questions immediately afterwards.
"""


import pytest

from benchmarks.conftest import write_artifact
from repro.core import Annoda
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.text import table
from repro.util.timer import Timer
from repro.wrappers import PubmedLikeWrapper, default_wrappers


def _fresh_annoda():
    corpus = AnnotationCorpus.generate(
        seed=7,
        parameters=CorpusParameters(
            loci=300, go_terms=150, omim_entries=100
        ),
    )
    annoda = Annoda()
    annoda.corpus = corpus
    for wrapper in default_wrappers(corpus):
        annoda.add_source(wrapper)
    return annoda


@pytest.mark.parametrize("citation_count", [50, 200, 800])
def test_plug_in_cost(benchmark, citation_count):
    """Wall time of one plug-in (schema matching dominates)."""
    annoda = _fresh_annoda()
    store = annoda.corpus.make_citation_store(count=citation_count)

    def plug_in():
        annoda.add_source(PubmedLikeWrapper(store))
        annoda.remove_source("PubMed")

    benchmark.pedantic(plug_in, rounds=5, iterations=1)


def test_extensibility_artifact(benchmark, results_dir):
    def experiment():
        annoda = _fresh_annoda()
        store = annoda.corpus.make_citation_store(count=200)

        with Timer() as timer:
            correspondences = annoda.add_source(PubmedLikeWrapper(store))
        plug_in_seconds = timer.elapsed

        with Timer() as timer:
            result = annoda.ask(
                "genes cited in some PubMed article", enrich_links=False
            )
        first_query_seconds = timer.elapsed

        gml_graph, gml_root = annoda.gml()
        source_names = [
            gml_graph.child_value(source, "Name")
            for source in gml_graph.children(gml_root, "Source")
        ]
        return (
            correspondences,
            plug_in_seconds,
            first_query_seconds,
            len(result),
            source_names,
        )

    (correspondences, plug_in_seconds, first_query_seconds, answered,
     source_names) = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # The paper's two-step procedure completed: mapped + queryable.
    assert len(correspondences) == 5
    assert correspondences.to_global("Pmid") == "CitationID"
    assert source_names == ["LocusLink", "GO", "OMIM", "PubMed"]
    assert answered > 0

    rows = [
        ["plug-in (MDSM + registration)", f"{plug_in_seconds:.4f}s"],
        ["first four-source query", f"{first_query_seconds:.4f}s"],
        ["correspondences discovered", len(correspondences)],
        ["genes answered", answered],
    ]
    artifact = (
        "Extensibility experiment: plugging in the PubMed-like source\n\n"
        + table(["measure", "value"], rows)
        + "\n\ncorrespondences:\n"
        + correspondences.render()
    )
    write_artifact(results_dir, "extensibility.txt", artifact)
    print()
    print(artifact)
