"""Benchmarks the section-4.1 Lorel example and core Lorel machinery."""

import pytest

from benchmarks.conftest import write_artifact

PAPER_QUERY = (
    'select X from ANNODA-GML.Source X where X.Name = "LocusLink"'
)


@pytest.fixture(scope="module")
def engine(annoda):
    return annoda.mediator.lorel_engine()


def test_section41_query(benchmark, engine, results_dir):
    result = benchmark(engine.query, PAPER_QUERY)
    assert len(result) >= 1
    selected = result.objects("Source")[0]
    assert engine.workspace.child_value(selected, "Name") == "LocusLink"
    rendered = engine.render_answer(result)
    write_artifact(results_dir, "section41_answer.txt", rendered)
    print()
    print(rendered.splitlines()[0])


def test_lorel_parse_throughput(benchmark):
    from repro.lorel import parse

    query = benchmark(parse, PAPER_QUERY)
    assert query.from_clauses[0].variable == "X"


def test_lorel_wildcard_query(benchmark, engine):
    result = benchmark(
        engine.query, "select N from ANNODA-GML.#.Name N"
    )
    assert len(result) > 3  # source names + structure element names
