"""Service benchmark: the admission-controlled query server under load.

Hundreds of in-process clients hammer one :class:`AnnodaService`
(threaded clients calling the blocking ``ask`` API — the same path the
HTTP shell uses, minus socket overhead) across four scenarios:

1. **cold** — every client bypasses the result cache, so each request
   runs the full mediator pipeline; p50/p99 latency and throughput.
2. **warm** — the same repeated-question workload after a cache warmup
   pass (result cache + whole-answer/stage artifacts); the acceptance
   bar is warm throughput >= ``min_warm_speedup`` x cold.
3. **shedding** — a burst far beyond a small queue's capacity: some
   requests must shed with 429, every ticket must resolve (no
   deadlock), the backlog never exceeds capacity.
4. **deadline** — slow sources plus a short per-request deadline:
   every answer comes back degraded within deadline + source latency
   + one scheduling quantum.

Writes ``benchmarks/results/service.txt`` and the machine-readable
``BENCH_service.json`` at the repo root.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke
"""

import argparse
import json
import pathlib
import threading

from repro.core.annoda import Annoda, AnnodaConfig
from repro.mediator.fetch import FederationPolicy, FlakyWrapper
from repro.service import AnnodaService, ServiceConfig, ServiceRequest
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.text import table
from repro.util.timer import Timer
from repro.wrappers import default_wrappers

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = {
    "clients": 240,
    "workers": 8,
    "shed_clients": 240,
    "shed_capacity": 16,
    "shed_workers": 4,
    "deadline_clients": 24,
    "deadline": 0.05,
    "source_latency": 0.2,
    "min_warm_speedup": 2.0,
}
SMOKE = {
    "clients": 32,
    "workers": 4,
    "shed_clients": 48,
    "shed_capacity": 4,
    "shed_workers": 2,
    "deadline_clients": 8,
    "deadline": 0.05,
    "source_latency": 0.1,
    "min_warm_speedup": 1.2,
}

#: Tolerated scheduling slack on top of deadline + one source latency.
QUANTUM = 1.0

SEED = 17
PARAMETERS = dict(loci=80, go_terms=40, omim_entries=25)

#: The repeated-question workload, round-robined across clients.
QUESTIONS = (
    ("figure5b", {}),
    ("disease_genes", {}),
    ("unannotated_genes", {}),
    ("genes_by_annotation_keyword", {"keyword": "binding"}),
)


def _build_annoda(policy=None, latency=0.0, stage_artifacts=False):
    corpus = AnnotationCorpus.generate(
        seed=SEED, parameters=CorpusParameters(**PARAMETERS)
    )
    annoda = Annoda(config=AnnodaConfig(
        federation=policy or FederationPolicy(on_failure="degrade"),
        stage_artifacts=stage_artifacts,
    ))
    annoda.corpus = corpus
    for wrapper in default_wrappers(corpus):
        if latency:
            wrapper = FlakyWrapper(wrapper, latency=latency)
        annoda.add_source(wrapper)
    return annoda


def _request(index, use_cache):
    name, params = QUESTIONS[index % len(QUESTIONS)]
    return ServiceRequest(question=name, params=params,
                          use_cache=use_cache)


def _fire(service, requests, timeout=300):
    """All requests at once, one client thread each; returns the list
    of (status, seconds, outcome) and the burst's wall-clock."""
    outcomes = [None] * len(requests)

    def client(slot, request):
        with Timer() as timer:
            response = service.ask(request, timeout=timeout)
        outcomes[slot] = (
            response.status, timer.elapsed,
            response.body.get("outcome"),
        )

    threads = [
        threading.Thread(target=client, args=(slot, request), daemon=True)
        for slot, request in enumerate(requests)
    ]
    with Timer() as wall:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=timeout)
    assert all(outcome is not None for outcome in outcomes), (
        "a client never got a response (deadlock?)"
    )
    return outcomes, wall.elapsed


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _latency_stats(outcomes, wall):
    latencies = [seconds for _status, seconds, _outcome in outcomes]
    return {
        "requests": len(outcomes),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "throughput_rps": len(outcomes) / wall if wall else float("inf"),
        "wall_seconds": wall,
    }


def _load_scenarios(config, log=print):
    """Cold vs warm throughput over the repeated-question workload."""
    annoda = _build_annoda(stage_artifacts=True)
    service = AnnodaService(annoda, ServiceConfig(
        queue_capacity=config["clients"], workers=config["workers"],
    )).start()
    try:
        cold_requests = [
            _request(index, use_cache=False)
            for index in range(config["clients"])
        ]
        cold = _latency_stats(*_fire(service, cold_requests))
        log(
            f"  cold: p50={cold['p50_ms']:.1f}ms "
            f"p99={cold['p99_ms']:.1f}ms "
            f"throughput={cold['throughput_rps']:.0f} req/s"
        )

        # Warm every question once, then measure the cached workload.
        for index in range(len(QUESTIONS)):
            response = service.ask(_request(index, use_cache=True),
                                   timeout=300)
            assert response.status == 200, response.body
        warm_requests = [
            _request(index, use_cache=True)
            for index in range(config["clients"])
        ]
        warm = _latency_stats(*_fire(service, warm_requests))
        log(
            f"  warm: p50={warm['p50_ms']:.1f}ms "
            f"p99={warm['p99_ms']:.1f}ms "
            f"throughput={warm['throughput_rps']:.0f} req/s"
        )
        snapshot = service.metrics.snapshot()["service"]
        assert snapshot["requests_failed"] == 0, snapshot
        assert snapshot["requests_shed"] == 0, (
            "load scenario must not shed (queue sized to the fleet)"
        )
    finally:
        service.shutdown(drain=True, timeout=300)
    speedup = warm["throughput_rps"] / cold["throughput_rps"]
    assert speedup >= config["min_warm_speedup"], (
        f"warm throughput only {speedup:.2f}x cold "
        f"(need >= {config['min_warm_speedup']}x)"
    )
    log(f"  warm/cold throughput: {speedup:.2f}x")
    return {"cold": cold, "warm": warm, "warm_speedup": speedup}


def _shedding_scenario(config, log=print):
    """A burst beyond capacity sheds with 429 and never deadlocks."""
    service = AnnodaService(_build_annoda(), ServiceConfig(
        queue_capacity=config["shed_capacity"],
        workers=config["shed_workers"],
    )).start()
    try:
        requests = [
            _request(index, use_cache=False)
            for index in range(config["shed_clients"])
        ]
        outcomes, wall = _fire(service, requests)
        statuses = [status for status, _seconds, _outcome in outcomes]
        shed = statuses.count(429)
        answered = statuses.count(200)
        assert shed > 0, (
            f"{config['shed_clients']} clients against "
            f"{config['shed_capacity']} seats never shed"
        )
        assert shed + answered == len(outcomes), statuses
        assert answered >= config["shed_workers"], statuses
        watermark = service.metrics.value("queue_high_watermark")
        assert watermark <= config["shed_capacity"]
        shed_latencies = [
            seconds for status, seconds, _outcome in outcomes
            if status == 429
        ]
        log(
            f"  shed {shed}/{len(outcomes)} "
            f"(answered {answered}) in {wall:.2f}s; "
            f"shed p99={_percentile(shed_latencies, 0.99) * 1e3:.1f}ms"
        )
        return {
            "clients": config["shed_clients"],
            "capacity": config["shed_capacity"],
            "shed": shed,
            "answered": answered,
            "queue_high_watermark": watermark,
            "wall_seconds": wall,
        }
    finally:
        service.shutdown(drain=True, timeout=300)


def _deadline_scenario(config, log=print):
    """Slow sources + short deadlines: degraded answers, bounded."""
    annoda = _build_annoda(latency=config["source_latency"])
    service = AnnodaService(annoda, ServiceConfig(
        queue_capacity=config["deadline_clients"],
        workers=config["shed_workers"],
    )).start()
    try:
        requests = [
            ServiceRequest(
                question="figure5b",
                deadline=config["deadline"],
                use_cache=False,
            )
            for _ in range(config["deadline_clients"])
        ]
        outcomes, wall = _fire(service, requests)
        bound = config["deadline"] + config["source_latency"] + QUANTUM
        worst = max(seconds for _s, seconds, _o in outcomes)
        for status, seconds, outcome in outcomes:
            assert status == 200, (status, outcome)
            assert outcome == "degraded", outcome
            assert seconds <= bound, (
                f"deadline-expired request took {seconds:.2f}s "
                f"(bound {bound:.2f}s)"
            )
        expired = service.metrics.value("deadline_expired")
        assert expired == len(requests), expired
        log(
            f"  {len(outcomes)} deadline-bounded requests degraded in "
            f"{wall:.2f}s (worst {worst * 1e3:.0f}ms, "
            f"bound {bound * 1e3:.0f}ms)"
        )
        return {
            "clients": config["deadline_clients"],
            "deadline": config["deadline"],
            "source_latency": config["source_latency"],
            "bound_seconds": bound,
            "worst_seconds": worst,
            "wall_seconds": wall,
        }
    finally:
        service.shutdown(drain=True, timeout=300)


def _render(load, shedding, deadline):
    rows = [
        [
            name,
            stats["requests"],
            f"{stats['p50_ms']:.1f}",
            f"{stats['p99_ms']:.1f}",
            f"{stats['throughput_rps']:.0f}",
        ]
        for name, stats in (("cold", load["cold"]), ("warm", load["warm"]))
    ]
    rendered = table(
        ["scenario", "requests", "p50 ms", "p99 ms", "req/s"], rows
    )
    return (
        "Annoda service under concurrent load "
        "(in-process clients, shared federation)\n\n"
        + rendered
        + f"\n\nwarm/cold throughput: {load['warm_speedup']:.2f}x\n"
        + (
            f"shedding: {shedding['shed']}/{shedding['clients']} shed "
            f"with 429 against {shedding['capacity']} seats "
            f"(watermark {shedding['queue_high_watermark']})\n"
        )
        + (
            f"deadlines: worst {deadline['worst_seconds'] * 1e3:.0f}ms "
            f"vs bound {deadline['bound_seconds'] * 1e3:.0f}ms "
            f"({deadline['clients']} clients, "
            f"{deadline['deadline'] * 1e3:.0f}ms deadline)\n"
        )
    )


def _write(load, shedding, deadline, results_dir):
    results_dir.mkdir(exist_ok=True)
    artifact = _render(load, shedding, deadline)
    (results_dir / "service.txt").write_text(artifact, encoding="utf-8")
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(
            {
                "benchmark": "service",
                "load": load,
                "shedding": shedding,
                "deadline": deadline,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    return artifact


def test_service_load(results_dir):
    quiet = lambda *_: None  # noqa: E731
    load = _load_scenarios(FULL, log=quiet)
    shedding = _shedding_scenario(FULL, log=quiet)
    deadline = _deadline_scenario(FULL, log=quiet)
    _write(load, shedding, deadline, results_dir)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced client fleet for CI",
    )
    arguments = parser.parse_args(argv)
    config = SMOKE if arguments.smoke else FULL
    print(
        f"service bench ({'smoke' if arguments.smoke else 'full'}): "
        f"{config['clients']} clients, {config['workers']} workers"
    )
    load = _load_scenarios(config)
    shedding = _shedding_scenario(config)
    deadline = _deadline_scenario(config)
    artifact = _write(load, shedding, deadline, RESULTS_DIR)
    print()
    print(artifact)


if __name__ == "__main__":
    main()
