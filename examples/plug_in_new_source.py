#!/usr/bin/env python3
"""Extensibility: plug a brand-new annotation source into a running
federation (paper requirement 2: "a new annotation data source should
be plugged in as it comes into existence").

The new source is a MEDLINE-style citation database.  Plugging it in
takes two artifacts — a store and a wrapper — and one call.  MDSM maps
its schema onto the global schema automatically; the GML gains a
Source entry; queries route to it immediately.

Run with::

    python examples/plug_in_new_source.py
"""

from repro import Annoda
from repro.sources.corpus import CorpusParameters
from repro.wrappers import PubmedLikeWrapper


def main():
    annoda = Annoda.with_default_sources(
        seed=55,
        parameters=CorpusParameters(loci=300, go_terms=150,
                                    omim_entries=100),
    )
    print(f"sources before: {annoda.sources()}")

    # A fourth source comes into existence...
    citations = annoda.corpus.make_citation_store(count=200)

    # ...and is plugged in with one call.  The returned correspondence
    # set is what MDSM discovered (step 1 of the paper's procedure).
    correspondences = annoda.add_source(PubmedLikeWrapper(citations))
    print(f"sources after:  {annoda.sources()}")
    print()
    print(correspondences.render())
    print()

    # The global model reflects the new member immediately.
    result = annoda.lorel(
        'select X.Name from ANNODA-GML.Source X'
    )
    print(f"GML now lists sources: {sorted(result.values())}")
    print()

    # And biological questions can range over it at once.
    question = (
        "find genes associated with some OMIM disease "
        "and cited in some PubMed article"
    )
    outcome = annoda.ask(question)
    print(annoda.render_query_form(question))
    print()
    print(
        f"{len(outcome)} genes are disease-associated AND have "
        "literature support:"
    )
    for gene in outcome.genes[:5]:
        pmids = gene["_links"].get("PubMed", [])
        print(
            f"  {gene['GeneSymbol']:<10} diseases="
            f"{gene['_links'].get('OMIM', [])} citations={pmids}"
        )


if __name__ == "__main__":
    main()
