#!/usr/bin/env python3
"""Quickstart: federate the three annotation sources and ask the
paper's flagship question.

Run with::

    python examples/quickstart.py
"""

from repro import Annoda

QUESTION = (
    "Find a set of LocusLink genes, which are annotated with some GO "
    "functions, but not associated with some OMIM disease"
)


def main():
    # One call builds a seeded synthetic corpus (LocusLink + GO + OMIM),
    # wraps each source, runs MDSM schema matching, and assembles the
    # federated mediator.
    annoda = Annoda.with_default_sources(seed=7)
    print(annoda.describe_sources())
    print()

    # Step 1-3 of the paper's interface, captured from plain English.
    print(annoda.render_query_form(QUESTION))
    print()

    # The mediator decomposes, optimizes, executes and reconciles.
    print(annoda.explain(QUESTION))
    print()

    result = annoda.ask(QUESTION)
    print(annoda.render_integrated_view(result, limit=10))
    print()
    print(result.reconciliation.render())
    print()

    # Interactive navigation: follow a web-link out of the answer.
    gene = result.graph.children(result.root, "Gene")[0]
    links = annoda.navigator.links_of(result.graph, gene)
    view = annoda.navigator.follow(links[0])
    print(annoda.render_object_view(view))


if __name__ == "__main__":
    main()
