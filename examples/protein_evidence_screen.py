#!/usr/bin/env python3
"""Five-source screening with protein-level evidence and result
re-organization.

Exercises the two future-work extensions together: the SwissProt-like
protein source (model variety, reverse + symbol joins) and the result
re-organization module (pivoting, incidence matrix, CSV export).

Scenario: find disease-associated genes whose protein product carries
the 'Kinase' keyword, group them by disease entry, and export the
analysis matrix.

Run with::

    python examples/protein_evidence_screen.py
"""

from repro import Annoda
from repro.questions import QuestionBuilder
from repro.reorganize import to_csv
from repro.sources.corpus import CorpusParameters
from repro.wrappers import SwissProtLikeWrapper


def main():
    annoda = Annoda.with_default_sources(
        seed=77,
        parameters=CorpusParameters(
            loci=600, go_terms=250, omim_entries=200, conflict_rate=0.15
        ),
    )
    proteins = annoda.corpus.make_protein_store(
        coverage=0.7, uncurated_rate=0.35
    )
    annoda.add_source(SwissProtLikeWrapper(proteins))
    print(f"federated sources: {annoda.sources()}")
    print()

    question = (
        QuestionBuilder(
            "disease genes whose protein is a kinase"
        )
        .include("OMIM")
        .include("SwissProt")
        .where_linked("Keyword", "=", "Kinase")
        .build()
    )
    print(annoda.explain(question))
    print()

    result = annoda.ask(question)
    print(annoda.render_integrated_view(result, limit=8))
    print()
    print(result.reconciliation.render())
    print()

    # Re-organize: which disease entries concentrate kinase genes?
    reorganizer = annoda.reorganize(result)
    print("top disease entries by kinase-gene count:")
    by_disease = sorted(
        reorganizer.by_disease().items(),
        key=lambda item: -len(item[1]["genes"]),
    )
    for mim, group in by_disease[:5]:
        print(f"  MIM {mim}  {group['title']}: {group['genes']}")
    print()

    # The analysis matrix and a CSV export for downstream tools.
    gene_ids, protein_ids, rows = reorganizer.incidence_matrix("SwissProt")
    density = sum(map(sum, rows)) / max(1, len(rows) * max(1, len(protein_ids)))
    print(
        f"gene x protein incidence matrix: {len(gene_ids)} x "
        f"{len(protein_ids)} (density {density:.2%})"
    )
    csv_text = to_csv(result)
    print(f"CSV export: {len(csv_text.splitlines()) - 1} data rows, "
          f"header: {csv_text.splitlines()[0]}")


if __name__ == "__main__":
    main()
