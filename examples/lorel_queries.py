#!/usr/bin/env python3
"""Raw Lorel against ANNODA-GML: the section-4.1 power-user path.

Reproduces the paper's example query and demonstrates Lorel's defining
behaviours: new answer objects, renaming, answer reuse, wildcards and
set operators.

Run with::

    python examples/lorel_queries.py
"""

from repro import Annoda
from repro.sources.corpus import CorpusParameters


def main():
    annoda = Annoda.with_default_sources(
        seed=3,
        parameters=CorpusParameters(loci=80, go_terms=50, omim_entries=30),
    )
    engine = annoda.mediator.lorel_engine()

    # The paper's example (section 4.1).
    print(">>> select X from ANNODA-GML.Source X "
          'where X.Name = "LocusLink"')
    result = engine.query(
        'select X from ANNODA-GML.Source X where X.Name = "LocusLink"'
    )
    print(engine.render_answer(result))

    # The answer object is new and reusable; a second query gets a
    # renamed root so 'answer' is not overwritten.
    print(">>> select Y.SourceID from answer.Source Y")
    reuse = engine.query("select Y.SourceID from answer.Source Y")
    print(f"{reuse.answer_name}: {reuse.values()}")
    print()

    # Wildcards tolerate unknown structure.
    print(">>> select X.Name from ANNODA-GML.% X  (any label)")
    wildcard = engine.query("select X.Name from ANNODA-GML.% X")
    print(sorted(wildcard.values()))

    print(">>> select N from ANNODA-GML.#.Name N  (any depth)")
    deep = engine.query("select N from ANNODA-GML.#.Name N")
    print(f"{len(deep)} Name objects found at any depth")
    print()

    # Aggregates, ordering and subqueries (the query-language half of
    # the paper's future work).
    print(">>> select count(X) from ANNODA-GML.Source X")
    counted = engine.query("select count(X) from ANNODA-GML.Source X")
    print(f"source count = {counted.values('count')[0]}")

    print(">>> sources ordered by name, descending")
    ordered = engine.query(
        "select X.Name from ANNODA-GML.Source X order by Name desc"
    )
    print(ordered.values())

    print(">>> sources whose name is among the OML-modelled ones")
    membership = engine.query(
        "select X.Name from ANNODA-GML.Source X where X.Name in "
        "(select Y.Name from ANNODA-GML.Source Y "
        "where Y.Structure.Model = 'ANNODA-OML')"
    )
    print(sorted(membership.values()))
    print()

    # Set operators.
    print(">>> sources except OMIM")
    difference = engine.query(
        "select X from ANNODA-GML.Source X "
        "except "
        "select Y from ANNODA-GML.Source Y where Y.Name = 'OMIM'"
    )
    names = [
        engine.workspace.child_value(obj, "Name")
        for obj in difference.objects()
    ]
    print(sorted(names))


if __name__ == "__main__":
    main()
