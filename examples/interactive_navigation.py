#!/usr/bin/env python3
"""Interactive navigation: browse the federation through web-links
(Figure 5(c)), with a history-keeping session.

Starts from an integrated query answer, opens a gene's report, hops to
one of its GO annotations, then to an OMIM entry, and walks back.

Run with::

    python examples/interactive_navigation.py
"""

from repro import Annoda
from repro.sources.corpus import CorpusParameters


def main():
    annoda = Annoda.with_default_sources(
        seed=9,
        parameters=CorpusParameters(loci=200, go_terms=120,
                                    omim_entries=80),
    )
    result = annoda.ask("find genes associated with some OMIM disease")
    print(annoda.render_integrated_view(result, limit=5))
    print()

    session = annoda.navigation_session()

    # Open the first gene's own report page.
    gene = result.graph.children(result.root, "Gene")[0]
    links = {
        link.label: link
        for link in annoda.navigator.links_of(result.graph, gene)
    }
    locus_view = session.visit(links["Self"])
    print(annoda.render_object_view(locus_view))
    print()

    # Hop along the first onward link (a GO annotation or OMIM entry).
    onward = locus_view.links[1] if len(locus_view.links) > 1 else (
        locus_view.links[0]
    )
    next_view = session.visit(onward)
    print(annoda.render_object_view(next_view))
    print()

    print(f"breadcrumb so far: {session.trail()}")
    session.back()
    print(f"after back():      {session.trail()}")
    session.forward()
    print(f"after forward():   {session.trail()}")


if __name__ == "__main__":
    main()
