#!/usr/bin/env python3
"""Gene-disease screening: the workload the paper's introduction
motivates — combine annotation sources to shortlist candidate genes.

Scenario: a group studies human kinases.  They want (1) human genes
annotated with a kinase-related GO molecular function, (2) split into
those already associated with an OMIM disease (known disease genes)
and those not yet associated (novel candidates), and (3) an audit of
every semantic conflict the integration had to repair.

Run with::

    python examples/gene_disease_screen.py
"""

from repro import Annoda
from repro.questions import QuestionBuilder
from repro.sources.corpus import CorpusParameters


def main():
    annoda = Annoda.with_default_sources(
        seed=101,
        parameters=CorpusParameters(
            loci=800,
            go_terms=400,
            omim_entries=250,
            conflict_rate=0.2,  # realistic curation noise
        ),
    )

    known = (
        QuestionBuilder("human kinase genes with a known disease")
        .where("Species", "=", "Homo sapiens")
        .include("GO")
        .where_linked("Title", "contains", "kinase")
        .include("OMIM")
        .build()
    )
    novel = (
        QuestionBuilder("human kinase genes with no known disease")
        .where("Species", "=", "Homo sapiens")
        .include("GO")
        .where_linked("Title", "contains", "kinase")
        .exclude("OMIM")
        .build()
    )

    known_result = annoda.ask(known)
    novel_result = annoda.ask(novel)

    print("=== known disease genes (kinase-annotated) ===")
    print(annoda.render_integrated_view(known_result, limit=8))
    print()
    print("=== novel candidates (kinase-annotated, no OMIM entry) ===")
    print(annoda.render_integrated_view(novel_result, limit=8))
    print()

    print("=== integration audit ===")
    print(known_result.reconciliation.render())
    repaired = known_result.reconciliation.repaired_count()
    print(f"conflicts repaired while joining: {repaired}")
    print()

    print("=== execution plans ===")
    print(annoda.explain(known))

    # Sanity: the two answers partition the kinase-annotated genes.
    overlap = set(known_result.gene_ids()) & set(novel_result.gene_ids())
    assert not overlap, "a gene cannot be both known and novel"
    print()
    print(
        f"{len(known_result)} known disease genes, "
        f"{len(novel_result)} novel candidates, no overlap."
    )
    print()

    # Downstream analysis: which GO terms are over-represented among
    # the known disease genes? (hypergeometric, BH-corrected)
    print("=== GO enrichment of the known disease genes ===")
    analyzer = annoda.enrichment_analyzer()
    for hit in analyzer.enrich_result(known_result)[:5]:
        print(f"  {hit.render()}")


if __name__ == "__main__":
    main()
