#!/usr/bin/env python3
"""MDSM walkthrough: how ANNODA maps a new source's schema onto the
global schema with the Hungarian method (section 3.1).

Shows the similarity matrix, the optimal assignment, and why the
*optimal* assignment beats the greedy one on an adversarial case.

Run with::

    python examples/schema_matching_demo.py
"""

from repro.matching import MdsmMatcher
from repro.mediator.global_schema import GlobalSchema
from repro.sources import AnnotationCorpus, CorpusParameters
from repro.util.text import table
from repro.wrappers import OmimWrapper


def main():
    corpus = AnnotationCorpus.generate(
        seed=5,
        parameters=CorpusParameters(loci=100, go_terms=60, omim_entries=40),
    )
    wrapper = OmimWrapper(corpus.omim)
    local_elements = wrapper.schema_elements()
    global_elements = GlobalSchema().elements()
    matcher = MdsmMatcher()

    # 1. The similarity matrix MDSM scores.
    matrix = matcher.similarity_matrix(local_elements, global_elements)
    headers = ["local \\ global"] + [e.name for e in global_elements]
    rows = [
        [local.name] + [f"{score:.2f}" for score in matrix[i]]
        for i, local in enumerate(local_elements)
    ]
    print("similarity matrix (OMIM local model vs ANNODA global schema):")
    print(table(headers, rows))
    print()

    # 2. The Hungarian assignment, thresholded into correspondences.
    result = matcher.match("OMIM", local_elements, global_elements)
    print(result.render())
    print()

    # 3. Why optimal beats greedy: an adversarial mini-matrix.
    from repro.matching.hungarian import solve_max_assignment

    adversarial = [
        [0.9, 0.8],
        [0.8, 0.0],
    ]
    assignment, total = solve_max_assignment(adversarial)
    greedy_total = 0.9 + 0.0  # greedy grabs (0,0) first, then is stuck
    print("adversarial 2x2 similarity matrix: [[0.9, 0.8], [0.8, 0.0]]")
    print(f"  greedy total    = {greedy_total:.1f}")
    print(f"  hungarian total = {total:.1f}  via {assignment}")
    print("  -> the Hungarian method avoids the greedy trap;")
    print("     benchmarks/bench_matching.py quantifies this at scale.")


if __name__ == "__main__":
    main()
