"""The ANNODA command-line interface.

Exposes the tool's surface without writing Python::

    python -m repro describe
    python -m repro ask "find genes associated with some OMIM disease"
    python -m repro ask "human genes annotated with some GO function" \\
        --format csv --limit 20
    python -m repro lorel 'select X from ANNODA-GML.Source X'
    python -m repro figures figure5b
    python -m repro table1

Corpus knobs (``--seed``, ``--loci``, ``--go-terms``,
``--omim-entries``, ``--conflict-rate``) apply to every command.
"""

import argparse
import sys

from repro.core.annoda import Annoda, AnnodaConfig
from repro.sources.corpus import CorpusParameters

FIGURE_NAMES = (
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5a",
    "figure5b",
    "figure5c",
)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "ANNODA: tool for integrating molecular-biological "
            "annotation data (ICDE 2005 reproduction)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7,
                        help="corpus seed (default 7)")
    parser.add_argument("--loci", type=int, default=500)
    parser.add_argument("--go-terms", type=int, default=300)
    parser.add_argument("--omim-entries", type=int, default=150)
    parser.add_argument("--conflict-rate", type=float, default=0.0)
    parser.add_argument(
        "--data-dir",
        help=(
            "load the federation from a directory of flat-file dumps "
            "(see 'snapshot') instead of generating a corpus"
        ),
    )
    parser.add_argument(
        "--snapshot-dir",
        help=(
            "like --data-dir, but also adopt the snapshot's persisted "
            "equality indexes for a cheap cold start (invalid index "
            "files fall back to lazy rebuild with a warning)"
        ),
    )
    parser.add_argument(
        "--artifact-dir",
        help=(
            "enable the content-addressed stage artifact cache and "
            "persist its artifacts under this directory (repeated "
            "queries reuse finished executor stages across runs)"
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help=(
            "key-range partitions per default source; fetches fan "
            "out across the shard grid with byte-identical answers"
        ),
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help=(
            "interchangeable wrappers per default source; a dead "
            "replica fails over to a sibling before the source "
            "degrades"
        ),
    )

    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "describe", help="list the federated sources and their schemas"
    )

    ask = commands.add_parser(
        "ask", help="answer a biological question in plain English"
    )
    ask.add_argument("question")
    ask.add_argument("--limit", type=int, default=15,
                     help="max rows shown in table format")
    ask.add_argument(
        "--format",
        choices=("table", "csv", "json"),
        default="table",
    )
    ask.add_argument("--explain", action="store_true",
                     help="also print the optimizer's plan")
    ask.add_argument("--audit", action="store_true",
                     help="also print the reconciliation report")

    explain = commands.add_parser(
        "explain",
        help=(
            "answer a question with the query flight recorder on and "
            "render the span tree (stages, wall-times, counters)"
        ),
    )
    explain.add_argument("question")
    explain.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the plan (logical tree, rule report, stage DAG) and "
            "the full trace (with timings) as JSON"
        ),
    )

    lorel = commands.add_parser(
        "lorel", help="evaluate raw Lorel against ANNODA-GML"
    )
    lorel.add_argument("query")

    figures = commands.add_parser(
        "figures", help="regenerate the paper's figures"
    )
    figures.add_argument(
        "name",
        nargs="?",
        default="all",
        choices=FIGURE_NAMES + ("all",),
    )

    commands.add_parser(
        "table1", help="regenerate the paper's Table 1 with probes"
    )

    snapshot = commands.add_parser(
        "snapshot",
        help=(
            "write the federation's data to flat files on disk, plus "
            "persisted equality indexes for cheap cold starts"
        ),
    )
    snapshot.add_argument("directory")
    snapshot.add_argument(
        "--no-indexes",
        action="store_true",
        help="skip the per-source index snapshots (data files only)",
    )

    validate = commands.add_parser(
        "validate",
        help="cross-validate every reference between the sources",
    )
    validate.add_argument(
        "--limit", type=int, default=20,
        help="max individual findings printed",
    )

    serve = commands.add_parser(
        "serve",
        help=(
            "run the federation as an HTTP query service "
            "(POST /query, GET /questions /metrics /requests /healthz)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="0 binds an ephemeral port")
    serve.add_argument(
        "--service-workers", type=int, default=4,
        help="query worker threads (default 4)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=64,
        help="admission queue seats; a full queue sheds with 429",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help=(
            "default per-request deadline in seconds (expired requests "
            "return degraded partial answers)"
        ),
    )
    serve.add_argument(
        "--max-requests", type=int, default=None,
        help=argparse.SUPPRESS,  # stop after N requests (tests)
    )

    return parser


def _build_annoda(args, federation=None):
    config = None
    config_kwargs = {}
    if getattr(args, "artifact_dir", None):
        config_kwargs.update(
            stage_artifacts=True, artifact_dir=args.artifact_dir
        )
    if getattr(args, "shards", 1) > 1:
        config_kwargs["shards"] = args.shards
    if getattr(args, "replicas", 1) > 1:
        config_kwargs["replicas"] = args.replicas
    if federation is not None:
        config_kwargs["federation"] = federation
    if config_kwargs:
        config = AnnodaConfig(**config_kwargs)
    if args.snapshot_dir:
        return Annoda.from_directory(
            args.snapshot_dir, config=config, adopt_indexes=True
        )
    if args.data_dir:
        return Annoda.from_directory(
            args.data_dir, config=config, adopt_indexes=False
        )
    parameters = CorpusParameters(
        loci=args.loci,
        go_terms=args.go_terms,
        omim_entries=args.omim_entries,
        conflict_rate=args.conflict_rate,
    )
    return Annoda.with_default_sources(
        seed=args.seed, parameters=parameters, config=config
    )


def _command_describe(annoda, _args, out):
    print(annoda.describe_sources(), file=out)
    print(file=out)
    for source_name in annoda.sources():
        print(
            annoda.mediator.correspondences(source_name).render(), file=out
        )


def _command_ask(annoda, args, out):
    result = annoda.ask(args.question)
    if args.explain:
        print(annoda.explain(args.question), file=out)
        print(file=out)
    if args.format == "csv":
        from repro.reorganize import to_csv

        print(to_csv(result), end="", file=out)
    elif args.format == "json":
        from repro.reorganize import to_json_records

        print(to_json_records(result), file=out)
    else:
        print(
            annoda.render_integrated_view(result, limit=args.limit),
            file=out,
        )
    if args.audit:
        print(file=out)
        print(result.reconciliation.render(), file=out)


def _command_explain(annoda, args, out):
    import json

    from repro.trace import render_trace, trace_to_dict

    result = annoda.trace(args.question)
    plan = annoda.plan(args.question)
    if args.json:
        payload = {
            "plan": plan.to_dict(),
            "trace": trace_to_dict(result.trace, timings=True),
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return
    print(annoda.explain(args.question), file=out)
    print(file=out)
    print(render_trace(result.trace), file=out)
    print(file=out)
    print(result.report.describe(), file=out)


def _command_lorel(annoda, args, out):
    engine = annoda.mediator.lorel_engine()
    result = engine.query(args.query)
    print(engine.render_answer(result), end="", file=out)


def _command_figures(annoda, args, out):
    from repro.evaluation.figures import FigureGenerator

    generator = FigureGenerator(annoda)
    names = FIGURE_NAMES if args.name == "all" else (args.name,)
    for name in names:
        print(f"=== {name} ===", file=out)
        print(getattr(generator, name)(), file=out)
        print(file=out)


def _command_serve(args, out):
    from repro.mediator.fetch import FederationPolicy
    from repro.service import ServiceConfig
    from repro.service import serve as serve_http

    # A service answers partial results instead of 500s: degraded
    # sources are reported in the response body, not fatal.
    annoda = _build_annoda(
        args, federation=FederationPolicy(on_failure="degrade")
    )
    config = ServiceConfig(
        queue_capacity=args.queue_capacity,
        workers=args.service_workers,
        default_deadline=args.deadline,
    )
    server = serve_http(
        annoda, host=args.host, port=args.port, config=config
    )
    host, port = server.server_address[:2]
    print(f"annoda service listening on http://{host}:{port}", file=out)
    print(
        "endpoints: POST /query | GET /questions /metrics /requests "
        "/healthz",
        file=out,
    )
    try:
        if args.max_requests is not None:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.server_close()
        server.service.shutdown(drain=True)
    print("annoda service stopped", file=out)


def _command_table1(args, out):
    from repro.evaluation import build_table1
    from repro.sources.corpus import AnnotationCorpus

    corpus = AnnotationCorpus.generate(
        seed=args.seed,
        parameters=CorpusParameters(
            loci=args.loci,
            go_terms=args.go_terms,
            omim_entries=args.omim_entries,
        ),
    )
    conflicted = AnnotationCorpus.generate(
        seed=args.seed,
        parameters=CorpusParameters(
            loci=args.loci,
            go_terms=args.go_terms,
            omim_entries=args.omim_entries,
            conflict_rate=max(args.conflict_rate, 0.4),
        ),
    )
    print(build_table1(corpus, conflicted).render(), file=out)


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "table1":
            _command_table1(args, out)
            return 0
        if args.command == "serve":
            _command_serve(args, out)
            return 0
        annoda = _build_annoda(args)
        if args.command == "describe":
            _command_describe(annoda, args, out)
        elif args.command == "ask":
            _command_ask(annoda, args, out)
        elif args.command == "explain":
            _command_explain(annoda, args, out)
        elif args.command == "lorel":
            _command_lorel(annoda, args, out)
        elif args.command == "figures":
            _command_figures(annoda, args, out)
        elif args.command == "snapshot":
            manifest = annoda.save(
                args.directory, indexes=not args.no_indexes
            )
            for name, entry in sorted(manifest["sources"].items()):
                suffix = (
                    f" + index snapshot {entry['index']['file']}"
                    if "index" in entry
                    else ""
                )
                print(
                    f"wrote {entry['file']} ({entry['records']} "
                    f"{name} records){suffix}",
                    file=out,
                )
        elif args.command == "validate":
            from repro.sources.integrity import IntegrityAuditor

            stores = {
                name: annoda.mediator.wrapper(name).source
                for name in annoda.sources()
            }
            report = IntegrityAuditor(stores).audit()
            print(report.render(limit=args.limit), file=out)
        return 0
    except Exception as exc:  # the CLI boundary reports, not crashes
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
