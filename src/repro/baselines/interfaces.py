"""The common contract of all integration-system implementations."""

import abc
from dataclasses import dataclass

from repro.util.errors import AnnodaError


class UnsupportedOperation(AnnodaError):
    """The architecture genuinely cannot perform the requested task —
    the inability itself is a Table-1 data point."""


@dataclass(frozen=True)
class SystemTraits:
    """Architecture traits behind the Table-1 rows.

    Most traits are structural facts about the implementation; the
    behavioural ones (reconciliation, freshness) are additionally
    verified by probes in :mod:`repro.evaluation.table1`.
    """

    shields_source_details: bool
    global_schema_model: str  # "object-oriented" | "relational" | "semistructured" | "none"
    single_access_point: bool
    requires_query_language_knowledge: bool
    comprehensive_query_capability: bool
    operations_on: str  # "integrated view" | "warehouse" | "per-source"
    reorganizes_results: bool
    reconciles_results: bool
    handles_uncertainty: bool
    integrates_via_global_schema: bool
    supports_annotations: bool
    self_describing_model: bool
    integrates_self_generated_data: bool
    new_evaluation_functions: bool
    archival_functionality: bool


class IntegrationSystem(abc.ABC):
    """One runnable integration architecture over the three sources."""

    #: Display name in the Table-1 column header.
    name = "abstract"
    #: One of the four section-2 approaches.
    approach = "abstract"

    @abc.abstractmethod
    def traits(self):
        """The system's :class:`SystemTraits`."""

    @abc.abstractmethod
    def integrated_gene_disease_query(self):
        """Answer "genes annotated with some GO function but not
        associated with some OMIM disease" (the Figure-5(b) workload)
        as well as this architecture can.

        Returns
        -------
        (gene_ids, effort):
            ``gene_ids`` — the answer set of LocusIDs; ``effort`` — a
            dict of work counters (rows fetched, user actions, ...).

        Raises
        ------
        UnsupportedOperation
            When the architecture cannot answer it as one task.
        """

    @abc.abstractmethod
    def disease_association_query(self):
        """Answer "genes associated with some OMIM disease (by id or
        symbol)" — the reconciliation-sensitive workload.  Returns
        ``(gene_ids, effort)``."""
