"""The hypertext-navigation baseline (Entrez / SRS style).

Section 2: the indexed-sources approach *"allows the users to
interactively navigate from a result of one query in one member
database to a result in another database, by using indexes and links"*
— but *"neither provides a mechanism to directly integrate data from
relational databases nor to perform data cleansing"*.

This implementation builds a keyword index per source and supports
link following.  The integrated gene-disease query is *not* a single
operation here; :meth:`integrated_gene_disease_query` simulates the
manual browsing session a scientist would need, counting every page
view so the architecture benchmark can report the interaction cost.
"""

from repro.baselines.interfaces import IntegrationSystem, SystemTraits
from repro.mediator.fetch import FetchRequest
from repro.navigation.links import resolve_url
from repro.util.errors import QueryError

_TRAITS = SystemTraits(
    shields_source_details=False,
    global_schema_model="none",
    single_access_point=True,
    requires_query_language_knowledge=False,
    comprehensive_query_capability=False,
    operations_on="per-source",
    reorganizes_results=False,
    reconciles_results=False,
    handles_uncertainty=False,
    integrates_via_global_schema=False,
    supports_annotations=False,
    self_describing_model=False,
    integrates_self_generated_data=False,
    new_evaluation_functions=False,
    archival_functionality=False,
)


class HypertextNavigationSystem(IntegrationSystem):
    """Keyword indexes plus link navigation, nothing more."""

    name = "Hypertext (Entrez/SRS)"
    approach = "hypertext navigation"

    def __init__(self, wrappers):
        self.wrappers = {wrapper.name: wrapper for wrapper in wrappers}
        self._indexes = {}
        for wrapper in wrappers:
            self._indexes[wrapper.name] = self._build_index(wrapper)

    @staticmethod
    def _build_index(wrapper):
        """Token -> record positions, over every textual field."""
        index = {}
        for position, record in enumerate(
            wrapper.fetch(FetchRequest(purpose="index-build"))
        ):
            tokens = set()
            for value in record.values():
                values = value if isinstance(value, list) else [value]
                for item in values:
                    for token in str(item).lower().split():
                        tokens.add(token.strip(".,;"))
            for token in tokens:
                index.setdefault(token, []).append(position)
        return index

    def traits(self):
        return _TRAITS

    # -- what the architecture can do ------------------------------------------

    def search(self, source_name, keyword):
        """Keyword search in one source's index (one 'page view')."""
        if source_name not in self.wrappers:
            raise QueryError(f"unknown source {source_name!r}")
        positions = self._indexes[source_name].get(keyword.lower(), [])
        records = self.wrappers[source_name].fetch(
            FetchRequest(purpose="page-view")
        )
        return [records[position] for position in positions]

    def follow_link(self, url):
        """Follow one web link to the referenced record."""
        source_name, target_id = resolve_url(url)
        wrapper = self.wrappers.get(source_name)
        if wrapper is None:
            raise QueryError(f"link leaves the indexed sources: {url}")
        key_label = {"LocusLink": "LocusID", "GO": "GoID",
                     "OMIM": "MimNumber", "PubMed": "Pmid"}[source_name]
        records = wrapper.fetch(
            FetchRequest(((key_label, "=", target_id),), purpose="follow-link")
        )
        return records[0] if records else None

    # -- the benchmark workloads -------------------------------------------------

    def integrated_gene_disease_query(self):
        """Simulate the manual session: page through every locus, open
        its GO links, open its OMIM links, keep the qualifying ones.

        The answer is computable but the effort is the point: one page
        view per locus plus one per link followed — exactly what the
        paper means by hypertext navigation not supporting *automated
        large-scale analysis tasks*.
        """
        locuslink = self.wrappers["LocusLink"]
        omim = self.wrappers["OMIM"]
        user_actions = 0
        answer = set()
        for record in locuslink.fetch(FetchRequest(purpose="browse")):
            user_actions += 1  # open the locus report page
            has_go = False
            for go_id in record.get("GoIDs", []):
                user_actions += 1  # follow the GO link
                if self.follow_link(
                    f"http://godatabase.org/cgi-bin/go.cgi?query={go_id}"
                ):
                    has_go = True
            has_omim = False
            for mim in record.get("OmimIDs", []):
                user_actions += 1  # follow the OMIM link
                if self.follow_link(
                    "http://www.ncbi.nlm.nih.gov/entrez/dispomim.cgi"
                    f"?id={mim}"
                ):
                    has_omim = True
            if not has_omim:
                # A careful user also searches OMIM for the symbol
                # (OMIM curation may be ahead of LocusLink).
                user_actions += 1
                if omim.fetch(
                    FetchRequest(
                        (("GeneSymbol", "=", record["Symbol"]),),
                        purpose="symbol-search",
                    )
                ):
                    has_omim = True
            if has_go and not has_omim:
                answer.add(record["LocusID"])
        return answer, {
            "user_actions": user_actions,
            "automated": False,
        }

    def disease_association_query(self):
        """Manual symbol lookups: search OMIM for each locus's symbol."""
        locuslink = self.wrappers["LocusLink"]
        omim = self.wrappers["OMIM"]
        user_actions = 0
        answer = set()
        for record in locuslink.fetch(FetchRequest(purpose="browse")):
            user_actions += 1
            if record.get("OmimIDs"):
                answer.add(record["LocusID"])
                continue
            # Search OMIM by exact symbol (no reconciliation possible).
            user_actions += 1
            hits = omim.fetch(
                FetchRequest(
                    (("GeneSymbol", "=", record["Symbol"]),),
                    purpose="symbol-search",
                )
            )
            if hits:
                answer.add(record["LocusID"])
        return answer, {
            "user_actions": user_actions,
            "automated": False,
        }
