"""Baseline integration systems: the four approaches of section 2.

To regenerate Table 1 and quantify the comparative discussion of
section 5, the comparator architectures are implemented as runnable
miniature systems over the same wrappers ANNODA federates:

- :class:`HypertextNavigationSystem` — Entrez/SRS-style indexed
  sources with manual link navigation;
- :class:`WarehouseSystem` — GUS/DataFoundry-style ETL into one
  materialized store, with translators and load-time cleansing;
- :class:`K2KleisliSystem` / :class:`DiscoveryLinkSystem` —
  query-driven middleware without a reconciling mediator (unmediated
  multidatabase queries, object-oriented vs SQL-flavoured);
- ANNODA itself (:class:`repro.core.Annoda`) — the federated system.
"""

from repro.baselines.hypertext import HypertextNavigationSystem
from repro.baselines.interfaces import IntegrationSystem, SystemTraits
from repro.baselines.multidatabase import (
    DiscoveryLinkSystem,
    K2KleisliSystem,
    MultidatabaseSystem,
)
from repro.baselines.warehouse import WarehouseSystem

__all__ = [
    "DiscoveryLinkSystem",
    "HypertextNavigationSystem",
    "IntegrationSystem",
    "K2KleisliSystem",
    "MultidatabaseSystem",
    "SystemTraits",
    "WarehouseSystem",
]
