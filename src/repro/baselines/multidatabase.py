"""The unmediated-multidatabase baselines (K2/Kleisli, DiscoveryLink).

Section 2: users *"construct complex queries that are evaluated
against multiple heterogeneous databases"* with *"format and access
transparency, while it lacks the schema transparency and
reconciliation"*.  Section 5 calls these query-driven middleware
systems.

The implementation exposes per-source querying plus programmatic
combination — exactly what a Kleisli/CPL or DiscoveryLink SQL user
writes by hand.  Joins are *exact*: no case folding, no alias
resolution, no dangling/obsolete checks.  On a conflicted corpus the
answers are measurably wrong, which is the Table-1 row
*"Incorrectness due to inconsistent and incompatible data: no
reconciliation of results"* made quantitative.
"""

from repro.baselines.interfaces import IntegrationSystem, SystemTraits
from repro.mediator.fetch import FetchRequest


class MultidatabaseSystem(IntegrationSystem):
    """Shared machinery of the two query-driven middleware flavours."""

    name = "Multidatabase"
    approach = "unmediated multidatabase queries"

    def __init__(self, wrappers):
        self.wrappers = {wrapper.name: wrapper for wrapper in wrappers}

    def query_source(self, source_name, conditions=()):
        """One source-specific query (the user supplies local labels —
        no schema transparency)."""
        return self.wrappers[source_name].fetch(
            FetchRequest(tuple(conditions), purpose="multidatabase")
        )

    # -- the benchmark workloads --------------------------------------------------

    def integrated_gene_disease_query(self):
        """The hand-written middleware program: fetch loci, fetch the
        GO and OMIM extents, join exactly."""
        loci = self.query_source("LocusLink")
        go_records = self.query_source("GO")
        omim_records = self.query_source("OMIM")
        rows_shipped = len(loci) + len(go_records) + len(omim_records)

        known_go = {record["GoID"] for record in go_records}
        known_mims = {record["MimNumber"] for record in omim_records}
        symbols_with_disease = {
            symbol
            for record in omim_records
            for symbol in record["GeneSymbols"]
        }

        answer = set()
        for record in loci:
            # Exact-id membership only: obsolete terms still count,
            # dangling ids silently count as annotations.
            has_go = bool(record.get("GoIDs"))
            if not has_go:
                continue
            has_omim = bool(
                set(record.get("OmimIDs", [])) & known_mims
            ) or record["Symbol"] in symbols_with_disease
            if not has_omim:
                answer.add(record["LocusID"])
        return answer, {"rows_shipped": rows_shipped, "reconciled": False}

    def disease_association_query(self):
        loci = self.query_source("LocusLink")
        omim_records = self.query_source("OMIM")
        known_mims = {record["MimNumber"] for record in omim_records}
        symbols_with_disease = {
            symbol
            for record in omim_records
            for symbol in record["GeneSymbols"]
        }
        answer = set()
        for record in loci:
            if set(record.get("OmimIDs", [])) & known_mims:
                answer.add(record["LocusID"])
            elif record["Symbol"] in symbols_with_disease:
                answer.add(record["LocusID"])
        return answer, {
            "rows_shipped": len(loci) + len(omim_records),
            "reconciled": False,
        }


_K2_TRAITS = SystemTraits(
    shields_source_details=True,
    global_schema_model="object-oriented",
    single_access_point=True,
    requires_query_language_knowledge=True,
    comprehensive_query_capability=True,
    operations_on="integrated view",
    reorganizes_results=True,
    reconciles_results=False,
    handles_uncertainty=False,
    integrates_via_global_schema=True,
    supports_annotations=False,
    self_describing_model=False,
    integrates_self_generated_data=False,
    new_evaluation_functions=False,
    archival_functionality=False,
)


class K2KleisliSystem(MultidatabaseSystem):
    """K2/Kleisli flavour: CPL/OQL over an object-oriented view."""

    name = "K2/Kleisli"
    query_language = "OQL"

    def traits(self):
        return _K2_TRAITS


_DISCOVERYLINK_TRAITS = SystemTraits(
    shields_source_details=True,
    global_schema_model="object-oriented",
    single_access_point=True,
    requires_query_language_knowledge=True,
    comprehensive_query_capability=True,
    operations_on="integrated view",
    reorganizes_results=True,
    reconciles_results=False,
    handles_uncertainty=False,
    integrates_via_global_schema=True,
    supports_annotations=False,
    self_describing_model=False,
    integrates_self_generated_data=False,
    new_evaluation_functions=False,
    archival_functionality=False,
)


class DiscoveryLinkSystem(MultidatabaseSystem):
    """DiscoveryLink flavour: SQL over wrapped sources."""

    name = "DiscoveryLink"
    query_language = "SQL"

    def traits(self):
        return _DISCOVERYLINK_TRAITS
