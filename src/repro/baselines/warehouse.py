"""The data-warehouse baseline (GUS / DataFoundry style).

Section 2: *"the data from a set of heterogeneous databases are
exported into a single database ... Translators are needed to
transform this exported data"*; the drawback is that *"the extraction,
cleaning, transformation, and loading process can take considerable
time"* — and the warehouse answers from its copy, so it goes stale the
moment a member source changes.

This implementation runs a real ETL: extract through the wrappers,
transform through the mapping module's translators (the cleansing
step uppercases symbols and drops dangling references — GUS's
*"data in warehouse is reconciled and cleansed"*), and load into
in-memory tables.  Queries never touch the sources.
"""

import time

from repro.baselines.interfaces import IntegrationSystem, SystemTraits
from repro.matching.mdsm import MdsmMatcher
from repro.mediator.fetch import FetchRequest
from repro.mediator.mapping import MappingModule
from repro.util.errors import QueryError

_TRAITS = SystemTraits(
    shields_source_details=True,
    global_schema_model="relational",
    single_access_point=True,
    requires_query_language_knowledge=True,
    comprehensive_query_capability=True,
    operations_on="warehouse",
    reorganizes_results=True,
    reconciles_results=True,
    handles_uncertainty=False,
    integrates_via_global_schema=False,
    supports_annotations=True,
    self_describing_model=False,
    integrates_self_generated_data=True,
    new_evaluation_functions=False,
    archival_functionality=True,
)


class WarehouseSystem(IntegrationSystem):
    """Materialized integration with explicit ETL."""

    name = "Warehouse (GUS)"
    approach = "data warehousing"

    def __init__(self, wrappers):
        self.wrappers = {wrapper.name: wrapper for wrapper in wrappers}
        self.mapping_module = MappingModule(matcher=MdsmMatcher())
        for wrapper in wrappers:
            self.mapping_module.register_wrapper(wrapper)
        self.tables = {}
        self.loaded_versions = {}
        self.etl_seconds = 0.0
        self.etl_runs = 0
        self._archive = []

    def traits(self):
        return _TRAITS

    # -- ETL -----------------------------------------------------------------------

    def etl(self):
        """Extract, transform (cleanse), load.  Returns row counts."""
        started = time.perf_counter()
        staging = {}
        for name, wrapper in self.wrappers.items():
            rows = []
            for record in wrapper.fetch(FetchRequest(purpose="etl-extract")):
                rows.append(
                    self.mapping_module.translate_record(
                        name, record, wrapper
                    )
                )
            staging[name] = rows
            self.loaded_versions[name] = wrapper.version
        self.tables = self._cleanse(staging)
        self.etl_seconds = time.perf_counter() - started
        self.etl_runs += 1
        return {name: len(rows) for name, rows in self.tables.items()}

    def _cleanse(self, staging):
        """Load-time cleansing: uppercase symbols everywhere, drop
        dangling cross-references, drop links to obsolete terms."""
        go_rows = staging.get("GO", [])
        known_go = {row.get("AnnotationID") for row in go_rows}
        obsolete_go = {
            row.get("AnnotationID")
            for row in go_rows
            if row.get("Obsolete")
        }
        known_mims = {
            row.get("DiseaseID") for row in staging.get("OMIM", [])
        }
        cleansed = {}
        for name, rows in staging.items():
            cleaned_rows = []
            for row in rows:
                row = dict(row)
                if isinstance(row.get("GeneSymbol"), str):
                    row["GeneSymbol"] = row["GeneSymbol"].upper()
                elif isinstance(row.get("GeneSymbol"), list):
                    row["GeneSymbol"] = [
                        symbol.upper() for symbol in row["GeneSymbol"]
                    ]
                if "AnnotationID" in row and isinstance(
                    row["AnnotationID"], list
                ):
                    row["AnnotationID"] = [
                        go_id
                        for go_id in row["AnnotationID"]
                        if go_id in known_go and go_id not in obsolete_go
                    ]
                if "DiseaseID" in row and isinstance(
                    row["DiseaseID"], list
                ):
                    row["DiseaseID"] = [
                        mim for mim in row["DiseaseID"] if mim in known_mims
                    ]
                cleaned_rows.append(row)
            cleansed[name] = cleaned_rows
        return cleansed

    # -- freshness --------------------------------------------------------------------

    def is_stale(self):
        """Any member source changed since the last load?"""
        if not self.loaded_versions:
            return True
        return any(
            wrapper.version != self.loaded_versions.get(name)
            for name, wrapper in self.wrappers.items()
        )

    def archive_snapshot(self, label):
        """GUS-style archival: keep a named frozen copy of the tables."""
        self._archive.append((label, {
            name: [dict(row) for row in rows]
            for name, rows in self.tables.items()
        }))

    def archived_labels(self):
        return [label for label, _tables in self._archive]

    # -- querying ----------------------------------------------------------------------

    def table(self, name):
        if name not in self.tables:
            raise QueryError(
                f"warehouse has no table {name!r}; run etl() first"
            )
        return self.tables[name]

    def integrated_gene_disease_query(self):
        """Runs entirely against the warehouse copy — fast, possibly
        stale.  Returns (gene_ids, effort)."""
        genes = self.table("LocusLink")
        rows_scanned = len(genes)
        # Symbol-associated diseases: the warehouse cleansed symbols to
        # upper case on both sides, so the join is a plain equi-join.
        symbol_to_mims = {}
        for entry in self.table("OMIM"):
            for symbol in entry.get("GeneSymbol", []):
                symbol_to_mims.setdefault(symbol, set()).add(
                    entry["DiseaseID"]
                )
        rows_scanned += len(self.table("OMIM"))
        answer = set()
        for row in genes:
            if not row.get("AnnotationID"):
                continue
            has_disease = bool(row.get("DiseaseID"))
            if not has_disease:
                symbol = str(row.get("GeneSymbol", "")).upper()
                has_disease = bool(symbol_to_mims.get(symbol))
            if not has_disease:
                answer.add(row["GeneID"])
        return answer, {
            "rows_scanned": rows_scanned,
            "stale": self.is_stale(),
            "etl_seconds": self.etl_seconds,
        }

    def disease_association_query(self):
        genes = self.table("LocusLink")
        symbol_to_mims = {}
        for entry in self.table("OMIM"):
            for symbol in entry.get("GeneSymbol", []):
                symbol_to_mims.setdefault(symbol, set()).add(
                    entry["DiseaseID"]
                )
        answer = set()
        for row in genes:
            if row.get("DiseaseID"):
                answer.add(row["GeneID"])
                continue
            symbol = str(row.get("GeneSymbol", "")).upper()
            if symbol_to_mims.get(symbol):
                answer.add(row["GeneID"])
        return answer, {
            "rows_scanned": len(genes) + len(self.table("OMIM")),
            "stale": self.is_stale(),
            "etl_seconds": self.etl_seconds,
        }
