"""Service-level metrics, merged with the pipeline's registry.

Two layers back the ``/metrics`` endpoint:

- **service counters** — admission/shedding/outcome accounting owned
  by this module (requests received, sheds, degraded answers, ...),
  kept in a lock-guarded :func:`~repro.util.locks.make_counters`
  mapping so the racecheck harness audits every write;
- **pipeline counters** — the federation's own
  :data:`~repro.trace.metrics.METRICS` registry names, accumulated
  from each answered request's
  :class:`~repro.mediator.executor.ExecutionStats` (and, for traced
  requests, reconcilable against
  :func:`~repro.trace.metrics.counter_totals`).

The snapshot is plain data, JSON-ready for the endpoint.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.trace.metrics import METRICS
from repro.util.locks import make_counters, new_lock

#: Service-owned counter names (the admission/outcome accounting).
SERVICE_COUNTERS = (
    "requests_received",
    "requests_admitted",
    "requests_shed",
    "requests_completed",
    "requests_ok",
    "requests_degraded",
    "requests_failed",
    "requests_rejected",
    "deadline_expired",
    "result_cache_hits",
    "queue_high_watermark",
)


class ServiceMetrics:
    """Thread-safe accounting behind the ``/metrics`` endpoint."""

    def __init__(self) -> None:
        self._lock = new_lock("ServiceMetrics._lock")
        self._service = make_counters(
            {name: 0 for name in SERVICE_COUNTERS},
            self._lock,
            "ServiceMetrics._lock",
        )
        self._pipeline = make_counters(
            {name: 0 for name in METRICS.names()},
            self._lock,
            "ServiceMetrics._lock",
        )

    def add(self, name: str, amount: int = 1) -> None:
        """Bump one service counter."""
        with self._lock:
            self._service[name] += amount

    def observe_queue_depth(self, depth: int) -> None:
        """Track the deepest queue observed (a high-watermark gauge)."""
        with self._lock:
            if depth > self._service["queue_high_watermark"]:
                self._service["queue_high_watermark"] = depth

    def merge_execution(self, stats: Any,
                        reconciliation: Any = None) -> None:
        """Fold one answered request's pipeline accounting in.

        ``stats`` is the result's
        :class:`~repro.mediator.executor.ExecutionStats`; every value
        lands under the matching registry name, so the endpoint's
        pipeline section reads exactly like a summed trace.
        """
        attempts = sum(
            report.attempts for report in stats.source_reports.values()
        )
        merged = {
            "rows": stats.total_rows_fetched(),
            "attempts": attempts,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "residual_evaluations": stats.residual_evaluations,
            "concurrent_batches": stats.concurrent_batches,
            "batched_fetches": stats.batched_fetches,
            "enrichment_cache_hits": stats.enrichment_cache_hits,
            "anchors_considered": stats.anchors_considered,
            "anchors_returned": stats.anchors_returned,
            "index_hits": stats.index_hits,
            "scan_fetches": stats.scan_fetches,
            "indexes_rebuilt": stats.indexes_rebuilt,
            "indexes_adopted": stats.indexes_adopted,
            "batch_rows": stats.batch_rows,
            "artifact_hits": stats.artifact_hits,
            "artifact_misses": stats.artifact_misses,
            "artifact_bytes": stats.artifact_bytes,
        }
        if reconciliation is not None:
            merged["conflicts"] = reconciliation.count()
            merged["repaired"] = reconciliation.repaired_count()
        with self._lock:
            for name, value in merged.items():
                self._pipeline[name] += value

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """A point-in-time copy: ``{"service": ..., "pipeline": ...}``."""
        with self._lock:
            return {
                "service": dict(self._service),
                "pipeline": dict(self._pipeline),
            }

    def value(self, name: str, section: str = "service") -> Optional[int]:
        with self._lock:
            table = self._service if section == "service" else self._pipeline
            return table.get(name)

    def render(self) -> str:
        """The endpoint's text form: ``section.name value`` lines plus
        each pipeline counter's registered description."""
        snapshot = self.snapshot()
        lines = []
        for name in SERVICE_COUNTERS:
            lines.append(f"service.{name} {snapshot['service'][name]}")
        for metric in METRICS:
            lines.append(
                f"pipeline.{metric.name} "
                f"{snapshot['pipeline'][metric.name]}"
            )
        return "\n".join(lines)
