"""The bounded admission queue and its per-request tickets.

Admission control is the service's load-shedding point: a request
either gets a seat in the queue (and will definitely be answered) or
is rejected *immediately* with a 429 — the queue never grows beyond
``capacity``, so a burst of clients cannot take the process down, and
clients learn to back off instead of piling onto a doomed backlog.

Every admitted request rides a :class:`Ticket`: the submitting thread
parks on ``ticket.result()`` while a worker executes the query and
``resolve``\\ s it.  The ticket also owns the request's
:class:`~repro.util.cancel.RequestBudget`, created *at admission* so
queue wait counts against the deadline — a request that waited its
whole deadline in the queue degrades immediately when a worker picks
it up, instead of doing doomed work.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional

from repro.service.types import ServiceRequest, ServiceResponse
from repro.util.cancel import RequestBudget
from repro.util.locks import new_lock


class Ticket:
    """One admitted request: input, budget, and the response slot."""

    def __init__(self, request: ServiceRequest, request_id: int,
                 budget: RequestBudget) -> None:
        self.request = request
        self.request_id = request_id
        self.budget = budget
        self._done = threading.Event()
        self._response: Optional[ServiceResponse] = None

    def resolve(self, response: ServiceResponse) -> None:
        """Deliver the response and wake every waiter (idempotent —
        the first resolution wins)."""
        if not self._done.is_set():
            self._response = response
            self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> ServiceResponse:
        """Block until resolved; raises ``TimeoutError`` on expiry."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} unresolved after {timeout}s"
            )
        response = self._response
        assert response is not None
        return response


class AdmissionQueue:
    """A bounded FIFO of tickets with explicit rejection.

    ``offer`` never blocks: it returns ``False`` when the queue is
    full (the caller sheds the request) or closed.  ``take`` blocks
    until a ticket arrives, and returns ``None`` once the queue is
    closed *and* drained — the worker-pool termination signal.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self._items: Deque[Ticket] = deque()
        self._closed = False
        self._waiters = threading.Condition(new_lock("AdmissionQueue"))

    def offer(self, ticket: Ticket) -> bool:
        """Admit ``ticket`` if a seat is free; never blocks."""
        with self._waiters:
            if self._closed or len(self._items) >= self.capacity:
                return False
            self._items.append(ticket)
            self._waiters.notify()
            return True

    def take(self) -> Optional[Ticket]:
        """The next ticket, blocking; ``None`` when closed and empty."""
        with self._waiters:
            while not self._items and not self._closed:
                self._waiters.wait()
            if self._items:
                return self._items.popleft()
            return None

    def close(self) -> None:
        """Stop admitting; wake every blocked :meth:`take`.

        Already-queued tickets stay takeable (graceful drain); pair
        with :meth:`flush` for a fast shutdown.
        """
        with self._waiters:
            self._closed = True
            self._waiters.notify_all()

    def flush(self) -> List[Ticket]:
        """Remove and return every queued ticket (fast-shutdown path:
        the caller resolves them as rejected)."""
        with self._waiters:
            flushed = list(self._items)
            self._items.clear()
            return flushed

    @property
    def closed(self) -> bool:
        with self._waiters:
            return self._closed

    def __len__(self) -> int:
        with self._waiters:
            return len(self._items)
