"""Request/response types of the ANNODA query service.

A :class:`ServiceRequest` names either a catalog question (by its
:class:`~repro.questions.catalog.QuestionCatalog` method name, with
keyword ``params``) or free constrained-English ``text``; the service
resolves it against the federation and answers with a
:class:`ServiceResponse` whose ``body`` is a plain JSON-ready dict.

The body keeps the *deterministic* answer under ``body["result"]``
(sorted gene ids, sorted degraded sources) strictly separate from the
volatile envelope (request id, elapsed seconds, counters) — a property
test pins concurrent responses byte-identical to serial ones on
exactly that sub-dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: HTTP statuses the service answers with.
STATUS_OK = 200
STATUS_BAD_REQUEST = 400
STATUS_NOT_FOUND = 404
STATUS_SHED = 429
STATUS_ERROR = 500
STATUS_SHUTTING_DOWN = 503

#: Catalog questions that take parameters, with the keywords each
#: accepts (everything else must be called bare).
CATALOG_PARAMS: Dict[str, Tuple[str, ...]] = {
    "disease_genes": ("organism",),
    "genes_by_annotation_keyword": ("keyword", "aspect"),
    "genes_under_term": ("go_id",),
}


class BadRequest(ValueError):
    """The client's request was malformed (HTTP 400)."""


@dataclass(frozen=True)
class ServiceRequest:
    """One question posed to the service.

    Exactly one of ``question`` (a catalog question name, with
    ``params``) or ``text`` (constrained English) must be set.
    ``deadline`` is relative seconds the whole request may take —
    queue wait included; ``None`` inherits the service default.
    ``trace`` opts into flight-recording the query (the response and
    the request log then carry the trace shape; traced requests bypass
    the answer caches by design, so tracing is per-request opt-in).
    """

    question: Optional[str] = None
    text: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    deadline: Optional[float] = None
    enrich_links: bool = True
    use_cache: bool = True
    trace: bool = False

    def __post_init__(self) -> None:
        if (self.question is None) == (self.text is None):
            raise BadRequest(
                "exactly one of 'question' (catalog name) or 'text' "
                "(constrained English) must be given"
            )
        if self.deadline is not None and self.deadline < 0:
            raise BadRequest("'deadline' must be >= 0 seconds")
        object.__setattr__(self, "params", dict(self.params))

    @property
    def kind(self) -> str:
        return "catalog" if self.question is not None else "text"

    def describe(self) -> str:
        if self.question is not None:
            if self.params:
                rendered = ", ".join(
                    f"{key}={value!r}"
                    for key, value in sorted(self.params.items())
                )
                return f"{self.question}({rendered})"
            return self.question
        return repr(self.text)

    @classmethod
    def from_dict(cls, payload: Any) -> "ServiceRequest":
        """Validate a decoded JSON body into a request (HTTP 400 on
        any shape error, via :class:`BadRequest`)."""
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        known = {
            "question", "text", "params", "deadline", "enrich_links",
            "use_cache", "trace",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise BadRequest(f"unknown request field(s): {unknown}")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise BadRequest("'params' must be a JSON object")
        deadline = payload.get("deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise BadRequest("'deadline' must be a number of seconds")
        for flag in ("enrich_links", "use_cache", "trace"):
            if flag in payload and not isinstance(payload[flag], bool):
                raise BadRequest(f"'{flag}' must be a boolean")
        question = payload.get("question")
        text = payload.get("text")
        if question is not None and not isinstance(question, str):
            raise BadRequest("'question' must be a string")
        if text is not None and not isinstance(text, str):
            raise BadRequest("'text' must be a string")
        return cls(
            question=question,
            text=text,
            params=params,
            deadline=None if deadline is None else float(deadline),
            enrich_links=payload.get("enrich_links", True),
            use_cache=payload.get("use_cache", True),
            trace=payload.get("trace", False),
        )


@dataclass(frozen=True)
class ServiceResponse:
    """One answered (or shed) request: HTTP status + JSON-ready body.

    ``retry_after`` is set on load-shed (429) responses and becomes
    the ``Retry-After`` header over HTTP.
    """

    status: int
    body: Dict[str, Any]
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def shed(self) -> bool:
        return self.status == STATUS_SHED

    @property
    def outcome(self) -> str:
        """The body's outcome tag (``ok``/``degraded``/``shed``/...)."""
        outcome = self.body.get("outcome")
        return outcome if isinstance(outcome, str) else "unknown"
