"""ANNODA as a long-lived, admission-controlled query service.

The transport-independent core (:class:`AnnodaService`) wraps one
federation in a bounded admission queue and a worker pool with
per-request deadline budgets; the stdlib HTTP shell
(:func:`serve` / :class:`AnnodaHTTPServer`) exposes it as
``POST /query`` plus ``/questions``, ``/metrics``, ``/requests`` and
``/healthz``.  See DESIGN §14.
"""

from repro.service.metrics import SERVICE_COUNTERS, ServiceMetrics
from repro.service.queue import AdmissionQueue, Ticket
from repro.service.requestlog import RequestLog, log_record_shape
from repro.service.server import (
    AnnodaHTTPServer,
    AnnodaService,
    ServiceConfig,
    serve,
)
from repro.service.types import (
    BadRequest,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.workers import WorkerPool

__all__ = [
    "AdmissionQueue",
    "AnnodaHTTPServer",
    "AnnodaService",
    "BadRequest",
    "RequestLog",
    "SERVICE_COUNTERS",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceRequest",
    "ServiceResponse",
    "Ticket",
    "WorkerPool",
    "log_record_shape",
    "serve",
]
