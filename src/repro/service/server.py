"""ANNODA as a long-lived query service.

:class:`AnnodaService` is the transport-independent core: admission
control (bounded queue, immediate 429 shedding), a worker pool
executing queries against one shared federation, per-request deadline
budgets, a structured request log and merged service/pipeline metrics.
The HTTP layer (:class:`AnnodaHTTPServer`, stdlib
``ThreadingHTTPServer`` — no new dependencies) is a thin shell over
it, so the whole concurrency surface is testable in-process without
sockets.

Endpoints:

- ``POST /query`` — a :class:`~repro.service.types.ServiceRequest`
  JSON body; answers 200 (full or degraded-partial), 400 (malformed),
  429 + ``Retry-After`` (queue full), 503 (shutting down);
- ``GET /questions`` — the catalog question names and their params;
- ``GET /metrics`` — the service + pipeline counter snapshot;
- ``GET /requests`` — recent structured request-log records;
- ``GET /healthz`` — liveness plus queue depth.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import urlparse

from repro.questions.catalog import QuestionCatalog
from repro.service.metrics import ServiceMetrics
from repro.service.queue import AdmissionQueue, Ticket
from repro.service.requestlog import RequestLog, log_record_shape
from repro.service.types import (
    CATALOG_PARAMS,
    STATUS_BAD_REQUEST,
    STATUS_ERROR,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_SHED,
    STATUS_SHUTTING_DOWN,
    BadRequest,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.workers import WorkerPool
from repro.trace.export import trace_shape
from repro.util.cancel import RequestBudget
from repro.util.locks import new_lock


@dataclass(frozen=True)
class ServiceConfig:
    """Operating knobs of one :class:`AnnodaService`."""

    #: Seats in the admission queue; a full queue sheds with 429.
    queue_capacity: int = 64
    #: Worker threads executing queries.
    workers: int = 4
    #: Deadline (seconds) applied to requests that don't set one;
    #: ``None`` leaves them unbounded.
    default_deadline: Optional[float] = None
    #: ``Retry-After`` hint (seconds) on shed responses.
    retry_after: float = 0.05
    #: Ring size of the structured request log.
    request_log_size: int = 256


class AnnodaService:
    """Admission-controlled query execution over one federation."""

    def __init__(self, annoda: Any,
                 config: Optional[ServiceConfig] = None) -> None:
        self.annoda = annoda
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.request_log = RequestLog(self.config.request_log_size)
        self.queue = AdmissionQueue(self.config.queue_capacity)
        self.pool = WorkerPool(
            self.queue, self._handle, workers=self.config.workers
        )
        self._ids_lock = new_lock("AnnodaService._ids_lock")
        self._next_id = 0
        self._started = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AnnodaService":
        if not self._started:
            self._started = True
            self.pool.start()
        return self

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service.

        ``drain=True`` (graceful) answers everything already admitted
        before the workers exit; ``drain=False`` flushes queued
        requests as 503 and cancels in-flight budgets so workers
        return degraded answers immediately.
        """
        self._stopped = True
        self.pool.shutdown(drain=drain, timeout=timeout)

    def __enter__(self) -> "AnnodaService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=True)

    # -- admission -----------------------------------------------------------

    def submit(self, request: ServiceRequest) -> Ticket:
        """Admit (or immediately shed) one request.

        Always returns a ticket; a shed or shutdown rejection comes
        back already resolved, so ``ticket.result()`` never blocks on
        a request the service declined.  The request's deadline budget
        starts *here* — time spent queued counts against it.
        """
        self.metrics.add("requests_received")
        deadline = request.deadline
        if deadline is None:
            deadline = self.config.default_deadline
        ticket = Ticket(
            request, self._allocate_id(), RequestBudget(deadline=deadline)
        )
        if self.queue.offer(ticket):
            self.metrics.add("requests_admitted")
            self.metrics.observe_queue_depth(len(self.queue))
            return ticket
        if self.queue.closed:
            response = ServiceResponse(
                status=STATUS_SHUTTING_DOWN,
                body=self._envelope(
                    ticket, outcome="shutdown",
                    error="service is shutting down",
                ),
            )
        else:
            self.metrics.add("requests_shed")
            body = self._envelope(
                ticket, outcome="shed",
                error=(
                    f"admission queue full "
                    f"({self.queue.capacity} seats)"
                ),
            )
            # The HTTP Retry-After header is integer delta-seconds;
            # the body carries the precise sub-second hint.
            body["retry_after"] = self.config.retry_after
            response = ServiceResponse(
                status=STATUS_SHED,
                body=body,
                retry_after=self.config.retry_after,
            )
        self._finish(ticket, response)
        ticket.resolve(response)
        return ticket

    def ask(self, request: ServiceRequest,
            timeout: Optional[float] = None) -> ServiceResponse:
        """Submit and wait: the blocking one-call client API."""
        return self.submit(request).result(timeout)

    def _allocate_id(self) -> int:
        with self._ids_lock:
            self._next_id += 1
            return self._next_id

    # -- execution (worker side) ---------------------------------------------

    def _handle(self, ticket: Ticket) -> ServiceResponse:
        """Execute one admitted ticket (runs on a pool worker)."""
        request = ticket.request
        try:
            question = self._resolve_question(request)
        except BadRequest as exc:
            self.metrics.add("requests_rejected")
            response = ServiceResponse(
                status=STATUS_BAD_REQUEST,
                body=self._envelope(
                    ticket, outcome="bad-request", error=str(exc)
                ),
            )
            self._finish(ticket, response)
            return response
        recorder = None
        if request.trace:
            from repro.trace.recorder import TraceRecorder

            recorder = TraceRecorder()
        try:
            result = self.annoda.ask(
                question,
                enrich_links=request.enrich_links,
                use_cache=request.use_cache,
                recorder=recorder,
                budget=ticket.budget,
            )
        except Exception as exc:
            self.metrics.add("requests_failed")
            response = ServiceResponse(
                status=STATUS_ERROR,
                body=self._envelope(
                    ticket, outcome="error",
                    error=str(exc) or type(exc).__name__,
                ),
            )
            self._finish(ticket, response)
            return response
        degraded = sorted(result.report.degraded)
        outcome = "degraded" if degraded else "ok"
        self.metrics.add(
            "requests_degraded" if degraded else "requests_ok"
        )
        if ticket.budget.expired:
            self.metrics.add("deadline_expired")
        if getattr(result, "from_result_cache", False):
            # A warm replay of a cached IntegratedResult did no new
            # pipeline work — folding its ExecutionStats in again would
            # inflate rows/attempts/fetch counters on every repeat.
            self.metrics.add("result_cache_hits")
        else:
            self.metrics.merge_execution(result.stats, result.reconciliation)
        body = self._envelope(ticket, outcome=outcome)
        body["result"] = {
            "gene_count": len(result.genes),
            "gene_ids": sorted(result.gene_ids()),
            "degraded_sources": degraded,
        }
        body["sources"] = {
            name: {
                "status": report.status,
                "fetches": report.fetches,
                "rows": report.rows,
            }
            for name, report in sorted(result.report.sources.items())
        }
        if recorder is not None and result.trace is not None:
            body["trace"] = trace_shape(result.trace)
        response = ServiceResponse(status=STATUS_OK, body=body)
        self._finish(ticket, response)
        return response

    def _resolve_question(self, request: ServiceRequest) -> Any:
        """The catalog question object (or raw text) a request names."""
        if request.question is None:
            return request.text
        name = request.question
        factory = getattr(QuestionCatalog, name, None)
        known = QuestionCatalog.all_names() + ["genes_under_term"]
        if factory is None or name not in known:
            raise BadRequest(
                f"unknown catalog question {name!r}; "
                f"known: {sorted(known)}"
            )
        allowed = CATALOG_PARAMS.get(name, ())
        unknown = sorted(set(request.params) - set(allowed))
        if unknown:
            raise BadRequest(
                f"question {name!r} does not accept param(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        try:
            return factory(**request.params)
        except TypeError as exc:
            raise BadRequest(
                f"bad params for question {name!r}: {exc}"
            ) from None

    # -- bookkeeping ---------------------------------------------------------

    def _envelope(self, ticket: Ticket, outcome: str,
                  error: Optional[str] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "request_id": ticket.request_id,
            "kind": ticket.request.kind,
            "question": ticket.request.describe(),
            "outcome": outcome,
            "deadline": ticket.budget.deadline,
            "deadline_expired": ticket.budget.expired,
            "elapsed": ticket.budget.elapsed(),
        }
        if error is not None:
            body["error"] = error
        return body

    def _finish(self, ticket: Ticket, response: ServiceResponse) -> None:
        """Count completion and append the structured log record."""
        self.metrics.add("requests_completed")
        body = response.body
        result = body.get("result") or {}
        self.request_log.append({
            "request_id": ticket.request_id,
            "kind": ticket.request.kind,
            "question": ticket.request.describe(),
            "http_status": response.status,
            "outcome": body.get("outcome"),
            "degraded_sources": result.get("degraded_sources", []),
            "deadline": ticket.budget.deadline,
            "deadline_expired": ticket.budget.expired,
            "gene_count": result.get("gene_count"),
            "elapsed": ticket.budget.elapsed(),
            "error": body.get("error"),
            "trace": body.get("trace"),
        })

    # -- introspection -------------------------------------------------------

    def questions(self) -> Dict[str, Any]:
        names = QuestionCatalog.all_names() + ["genes_under_term"]
        return {
            "questions": [
                {"name": name, "params": list(CATALOG_PARAMS.get(name, ()))}
                for name in sorted(names)
            ]
        }

    def health(self) -> Dict[str, Any]:
        return {
            "status": "shutting-down" if self._stopped else "ok",
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "workers": self.pool.size,
            "inflight": self.pool.inflight(),
        }


class AnnodaHTTPHandler(BaseHTTPRequestHandler):
    """The stdlib HTTP shell over :class:`AnnodaService`."""

    server: "AnnodaHTTPServer"

    #: Request bodies larger than this are rejected outright.
    MAX_BODY_BYTES = 1 << 20

    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr access log — the service keeps
        its own structured request log."""

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path = urlparse(self.path).path
        service = self.server.service
        if path == "/healthz":
            self._send_json(STATUS_OK, service.health())
        elif path == "/metrics":
            self._send_json(STATUS_OK, service.metrics.snapshot())
        elif path == "/questions":
            self._send_json(STATUS_OK, service.questions())
        elif path == "/requests":
            records = [
                log_record_shape(record)
                for record in service.request_log.records()
            ]
            self._send_json(STATUS_OK, {"requests": records})
        else:
            self._send_json(
                STATUS_NOT_FOUND,
                {"error": f"no such endpoint: {path}"},
            )

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        path = urlparse(self.path).path
        if path != "/query":
            self._send_json(
                STATUS_NOT_FOUND,
                {"error": f"no such endpoint: {path}"},
            )
            return
        try:
            request = ServiceRequest.from_dict(self._read_json())
        except BadRequest as exc:
            self._send_json(STATUS_BAD_REQUEST, {"error": str(exc)})
            return
        response = self.server.service.ask(request)
        self._send_json(
            response.status, response.body, retry_after=response.retry_after
        )

    # -- plumbing ------------------------------------------------------------

    def _read_json(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise BadRequest("Content-Length header required") from None
        if length < 0 or length > self.MAX_BODY_BYTES:
            raise BadRequest(
                f"request body must be 0..{self.MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not JSON: {exc}") from None

    def _send_json(self, status: int, payload: Any,
                   retry_after: Optional[float] = None) -> None:
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        if retry_after is not None:
            # RFC 9110 Retry-After is integer delta-seconds; round the
            # sub-second hint up (the precise float rides in the body).
            self.send_header(
                "Retry-After", str(max(1, math.ceil(retry_after)))
            )
        self.end_headers()
        self.wfile.write(encoded)


class AnnodaHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnnodaService`.

    Handler threads are non-daemon so ``server_close()`` joins them:
    a request whose connection was accepted is fully answered before
    the service behind it shuts down (every admitted ticket resolves,
    so the join always terminates).
    """

    daemon_threads = False

    def __init__(self, address: Any, service: AnnodaService) -> None:
        super().__init__(address, AnnodaHTTPHandler)
        self.service = service

    def close(self, drain: bool = True) -> None:
        """Stop accepting connections, then stop the service."""
        self.shutdown()
        self.server_close()
        self.service.shutdown(drain=drain)


def serve(annoda: Any, host: str = "127.0.0.1", port: int = 8080,
          config: Optional[ServiceConfig] = None) -> AnnodaHTTPServer:
    """Build and start the service around ``annoda``; returns the
    bound HTTP server (call ``serve_forever()`` to block, ``close()``
    to stop).  ``port=0`` binds an ephemeral port (tests)."""
    service = AnnodaService(annoda, config=config).start()
    return AnnodaHTTPServer((host, port), service)
