"""The service's worker pool: N threads draining the admission queue.

Workers never die on a bad request: the handler is required to turn
every outcome — answer, degraded answer, error — into a
:class:`~repro.service.types.ServiceResponse`, and the pool adds a
last-resort guard so a handler bug resolves the ticket as a 500
instead of leaving a client parked forever.

Shutdown comes in two flavours:

- ``shutdown(drain=True)`` (graceful): stop admitting, let the
  workers finish everything already queued, then join them;
- ``shutdown(drain=False)`` (fast): stop admitting, resolve every
  still-queued ticket as 503, cancel the budgets of in-flight
  requests (their fetches turn into immediate timeout replies and the
  degrading federation policy returns partial answers), then join.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.service.queue import AdmissionQueue, Ticket
from repro.service.types import (
    STATUS_ERROR,
    STATUS_SHUTTING_DOWN,
    ServiceResponse,
)
from repro.util.locks import new_lock


def _rejected_body(ticket: Ticket, outcome: str, detail: str) -> dict:
    return {
        "request_id": ticket.request_id,
        "question": ticket.request.describe(),
        "outcome": outcome,
        "error": detail,
    }


class WorkerPool:
    """Fixed-size pool executing tickets from an admission queue."""

    def __init__(self, queue: AdmissionQueue,
                 handler: Callable[[Ticket], ServiceResponse],
                 workers: int = 4,
                 name: str = "annoda-service") -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least 1 worker")
        self._queue = queue
        self._handler = handler
        self._threads: List[threading.Thread] = [
            threading.Thread(
                target=self._run, name=f"{name}-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        self._inflight: Dict[int, Ticket] = {}
        self._inflight_lock = new_lock("WorkerPool._inflight_lock")
        #: Set (under the inflight lock) by a fast shutdown; workers
        #: re-check it right after registering a ticket, closing the
        #: window where a just-dequeued ticket misses both the queue
        #: flush and the budget-cancel sweep.
        self._cancelling = False
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    @property
    def size(self) -> int:
        return len(self._threads)

    def inflight(self) -> int:
        """Tickets currently being executed by a worker."""
        with self._inflight_lock:
            return len(self._inflight)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the pool (see module docstring for the two modes)."""
        self._queue.close()
        if not drain:
            with self._inflight_lock:
                self._cancelling = True
            for ticket in self._queue.flush():
                ticket.resolve(ServiceResponse(
                    status=STATUS_SHUTTING_DOWN,
                    body=_rejected_body(
                        ticket, "shutdown",
                        "service shutting down before execution",
                    ),
                ))
            with self._inflight_lock:
                inflight = list(self._inflight.values())
            for ticket in inflight:
                ticket.budget.cancel("service shutdown")
        if self._started:
            for thread in self._threads:
                thread.join(timeout)

    # -- the worker loop -----------------------------------------------------

    def _run(self) -> None:
        while True:
            ticket = self._queue.take()
            if ticket is None:
                return
            with self._inflight_lock:
                self._inflight[ticket.request_id] = ticket
                cancelling = self._cancelling
            if cancelling:
                # Fast shutdown raced our dequeue: the ticket was no
                # longer in the queue for the flush and not yet in
                # ``_inflight`` for the cancel sweep — cancel it here
                # so its fetches degrade instead of running full-length.
                ticket.budget.cancel("service shutdown")
            try:
                response = self._handler(ticket)
            except Exception as exc:  # handler bug — never hang the client
                response = ServiceResponse(
                    status=STATUS_ERROR,
                    body=_rejected_body(
                        ticket, "error",
                        str(exc) or type(exc).__name__,
                    ),
                )
            finally:
                with self._inflight_lock:
                    self._inflight.pop(ticket.request_id, None)
            ticket.resolve(response)
