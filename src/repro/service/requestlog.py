"""The service's structured request log.

Every request the service finishes — answered, degraded, failed, shed
or flushed at shutdown — appends one plain-dict record.  Traced
requests additionally carry the query's
:func:`~repro.trace.export.trace_shape` (the timing-free span-tree
view PR 5's golden suite pins), which is what makes the log the
service-level flight record the tentpole asks for.

:func:`log_record_shape` strips the volatile fields (elapsed seconds,
monotonically growing request ids) so a record can be compared against
a checked-in golden byte-for-byte; the golden conformance tests in
``tests/service/test_request_log_golden.py`` regenerate via the same
``--regen-golden`` switch as the trace suite.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.util.locks import new_lock

#: Fields every record carries, in a fixed order (kept stable so the
#: golden shapes stay diffable).
RECORD_FIELDS = (
    "request_id",
    "kind",
    "question",
    "http_status",
    "outcome",
    "degraded_sources",
    "deadline",
    "deadline_expired",
    "gene_count",
    "elapsed",
    "error",
    "trace",
)

#: Volatile per-run fields :func:`log_record_shape` normalizes away.
VOLATILE_FIELDS = ("request_id", "elapsed")


def log_record_shape(record: Dict[str, Any]) -> Dict[str, Any]:
    """The record with run-volatile fields normalized out.

    ``request_id`` and ``elapsed`` change run to run; everything else
    — including the embedded trace shape, which is already timing-free
    — is deterministic for a fixed corpus seed and question.
    """
    shape = {key: record.get(key) for key in RECORD_FIELDS}
    for key in VOLATILE_FIELDS:
        shape.pop(key, None)
    return shape


class RequestLog:
    """A bounded, thread-safe ring of finished-request records."""

    def __init__(self, size: int = 256) -> None:
        if size < 1:
            raise ValueError("request log size must be at least 1")
        self._records: Deque[Dict[str, Any]] = deque(maxlen=size)
        self._guard = new_lock("RequestLog._guard")

    def append(self, record: Dict[str, Any]) -> None:
        with self._guard:
            self._records.append(record)

    def records(self) -> List[Dict[str, Any]]:
        """A snapshot copy, oldest first."""
        with self._guard:
            return list(self._records)

    def last(self) -> Optional[Dict[str, Any]]:
        with self._guard:
            return self._records[-1] if self._records else None

    def __len__(self) -> int:
        with self._guard:
            return len(self._records)
