"""The OEM graph store.

Data represented in OEM *"can be thought of as a graph, with objects as
the vertices and labels or attributes as the edges"* (paper section
3.2.1).  :class:`OEMGraph` owns a set of :class:`~repro.oem.model.OEMObject`
vertices indexed by oid, plus *named roots* — the entry points a model
exposes (``LocusLink`` in Figure 3, ``ANNODA-GML`` in Figure 4, the
``answer`` object of section 4.1).

The graph supports construction from Python structures, traversal,
reachability, subgraph extraction, and merging another graph in with
oid remapping (the operation the mediator uses to combine wrapper
results into one answer graph).
"""

from repro.oem.model import OEMObject, ObjectRef
from repro.oem.types import OEMType, infer_type
from repro.util.errors import DataFormatError
from repro.util.oids import OidAllocator


class OEMGraph:
    """A mutable OEM database: objects, edges and named roots."""

    def __init__(self, name="oem"):
        self.name = name
        self._objects = {}
        self._roots = {}
        self._allocator = OidAllocator()

    # -- basic accessors ----------------------------------------------------

    def __len__(self):
        return len(self._objects)

    def __contains__(self, oid):
        return oid in self._objects

    def get(self, oid):
        """Return the object with ``oid``; raise if absent."""
        try:
            return self._objects[oid]
        except KeyError:
            raise DataFormatError(
                f"graph {self.name!r} has no object &{oid}"
            ) from None

    def objects(self):
        """All objects, in ascending oid order."""
        return [self._objects[oid] for oid in sorted(self._objects)]

    def atomic_objects(self):
        return [obj for obj in self.objects() if obj.is_atomic]

    def complex_objects(self):
        return [obj for obj in self.objects() if obj.is_complex]

    # -- roots ----------------------------------------------------------------

    def set_root(self, name, obj):
        """Register ``obj`` as the named entry point ``name``.

        Per section 4.1, answer names may need renaming *"so that answer
        is not overwritten"* — re-binding an existing name is therefore
        an explicit error; callers rename instead.
        """
        if name in self._roots:
            raise DataFormatError(
                f"root {name!r} already bound in graph {self.name!r}; "
                "rename the new answer instead of overwriting"
            )
        self._bind_root(name, obj)

    def rebind_root(self, name, obj):
        """Bind ``name`` to ``obj``, replacing any previous binding."""
        self._bind_root(name, obj)

    def _bind_root(self, name, obj):
        if obj.oid not in self._objects:
            raise DataFormatError(
                f"object &{obj.oid} does not belong to graph {self.name!r}"
            )
        self._roots[name] = obj.oid

    def root(self, name):
        """Return the root object bound to ``name``."""
        try:
            return self._objects[self._roots[name]]
        except KeyError:
            raise DataFormatError(
                f"graph {self.name!r} has no root named {name!r}"
            ) from None

    def has_root(self, name):
        return name in self._roots

    def root_names(self):
        """Root names in binding order."""
        return list(self._roots)

    def unique_root_name(self, base):
        """Derive an unused root name from ``base`` (``answer``,
        ``answer2``, ``answer3``, ...), implementing the renaming rule
        of section 4.1."""
        if base not in self._roots:
            return base
        counter = 2
        while f"{base}{counter}" in self._roots:
            counter += 1
        return f"{base}{counter}"

    # -- construction ---------------------------------------------------------

    def new_atomic(self, value, oem_type=None):
        """Create an atomic object; the type tag is inferred if omitted."""
        resolved = oem_type if oem_type is not None else infer_type(value)
        obj = OEMObject(self._allocator.allocate(), resolved, value)
        self._objects[obj.oid] = obj
        return obj

    def new_complex(self):
        """Create an empty complex object."""
        obj = OEMObject(self._allocator.allocate(), OEMType.COMPLEX)
        self._objects[obj.oid] = obj
        return obj

    def add_edge(self, parent, label, child):
        """Add the reference (label, child.oid, child.type) to ``parent``."""
        if (
            self._objects.get(parent.oid) is not parent
            or self._objects.get(child.oid) is not child
        ):
            raise DataFormatError(
                "both endpoints of an edge must belong to this graph"
            )
        return parent.add_reference(label, child)

    def attach_atomic(self, parent, label, value, oem_type=None):
        """Allocate an atomic for ``value`` and reference it from
        ``parent`` in one step.

        The child's oid is fresh, so the reference cannot duplicate an
        existing one and the duplicate check (and the ownership
        re-validation of objects this graph just created) is skipped —
        the answer-construction hot path allocates tens of thousands
        of these per query.  Returns the new child.
        """
        child = self.new_atomic(value, oem_type)
        parent.append_reference_unchecked(label, child)
        return child

    def attach_complex(self, parent, label):
        """Allocate an empty complex object and reference it from
        ``parent``; the fresh-oid twin of :meth:`attach_atomic`."""
        child = self.new_complex()
        parent.append_reference_unchecked(label, child)
        return child

    def build(self, value, label_order=None):
        """Build a subtree from a plain Python structure and return its root.

        Mappings become complex objects (keys are labels), lists fan a
        label out to several children when nested as ``{"label": [...]}``,
        and scalars become atomic objects.  ``label_order`` optionally
        fixes the emission order of a mapping's labels.
        """
        if isinstance(value, dict):
            node = self.new_complex()
            keys = list(value)
            if label_order:
                keys.sort(
                    key=lambda key: (
                        label_order.index(key)
                        if key in label_order
                        else len(label_order)
                    )
                )
            for key in keys:
                child_value = value[key]
                for item in _fan_out(child_value):
                    child = self.build(item, label_order=label_order)
                    if isinstance(item, OEMObject):
                        # A pre-existing object may already be
                        # referenced under this label: dedup applies.
                        self.add_edge(node, key, child)
                    else:
                        node.append_reference_unchecked(key, child)
            return node
        if isinstance(value, OEMObject):
            if value.oid not in self._objects:
                raise DataFormatError(
                    f"object &{value.oid} belongs to a different graph"
                )
            return value
        return self.new_atomic(value)

    def reserve_oid(self, oid):
        """Keep the allocator clear of an externally assigned oid."""
        self._allocator.reserve(oid)

    def adopt(self, obj):
        """Insert an externally constructed object (used by the reader)."""
        if obj.oid in self._objects:
            raise DataFormatError(f"oid &{obj.oid} already present")
        self._objects[obj.oid] = obj
        self._allocator.reserve(obj.oid)
        return obj

    # -- traversal --------------------------------------------------------------

    def children(self, obj, label=None):
        """Child objects of ``obj``, optionally restricted to one label."""
        refs = obj.references if label is None else obj.refs_with_label(label)
        return [self.get(ref.oid) for ref in refs]

    def child_value(self, obj, label, default=None):
        """The atomic value of the first ``label`` child, or ``default``."""
        for ref in obj.refs_with_label(label):
            child = self.get(ref.oid)
            if child.is_atomic:
                return child.value
        return default

    def parents(self, oid):
        """All (parent, label) pairs that reference ``oid``."""
        found = []
        for obj in self.objects():
            if obj.is_complex:
                for ref in obj.references:
                    if ref.oid == oid:
                        found.append((obj, ref.label))
        return found

    def reachable(self, start):
        """Set of oids reachable from ``start`` (inclusive), cycle-safe."""
        seen = set()
        stack = [start.oid]
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            obj = self.get(oid)
            if obj.is_complex:
                stack.extend(
                    ref.oid for ref in obj.references if ref.oid not in seen
                )
        return seen

    def walk(self, start):
        """Depth-first pre-order traversal yielding (path, object).

        ``path`` is the tuple of labels from ``start``; each object is
        visited once (first encounter wins), so cycles terminate.
        """
        seen = set()

        def _walk(obj, path):
            if obj.oid in seen:
                return
            seen.add(obj.oid)
            yield path, obj
            if obj.is_complex:
                for ref in obj.references:
                    yield from _walk(self.get(ref.oid), path + (ref.label,))

        yield from _walk(start, ())

    # -- whole-graph operations ---------------------------------------------

    def validate(self):
        """Check referential integrity; return the list of problems.

        An empty list means the graph is well-formed: every reference
        resolves, every reference's type tag matches its target, and
        every root is a live object.
        """
        problems = []
        for obj in self.objects():
            if obj.is_complex:
                for ref in obj.references:
                    if ref.oid not in self._objects:
                        problems.append(
                            f"&{obj.oid} references missing object &{ref.oid}"
                        )
                    elif self._objects[ref.oid].type is not ref.type:
                        problems.append(
                            f"&{obj.oid} reference {ref.label} tags &{ref.oid} "
                            f"as {ref.type} but the object is "
                            f"{self._objects[ref.oid].type}"
                        )
        for name, oid in self._roots.items():
            if oid not in self._objects:
                problems.append(f"root {name!r} points at missing &{oid}")
        return problems

    def import_subgraph(self, other, start, label_map=None):
        """Copy the subgraph of ``other`` rooted at ``start`` into this graph.

        Oids are remapped to fresh local oids; shared substructure in the
        source stays shared in the copy.  ``label_map`` optionally renames
        edge labels during the copy (the mediator uses this to apply
        mapping rules while combining wrapper answers).  Returns the local
        copy of ``start``.
        """
        label_map = label_map or {}
        mapping = {}

        def _copy(src):
            if src.oid in mapping:
                return mapping[src.oid]
            if src.is_atomic:
                local = self.new_atomic(src.value, src.type)
                mapping[src.oid] = local
                return local
            local = self.new_complex()
            mapping[src.oid] = local
            for ref in src.references:
                child = _copy(other.get(ref.oid))
                self.add_edge(local, label_map.get(ref.label, ref.label), child)
            return local

        return _copy(start)

    def equal_structure(self, start_a, other, start_b):
        """True when two subtrees are isomorphic ignoring oids.

        Compares labels (as multisets per object), atomic types and
        values; used heavily by tests and by duplicate elimination.
        """
        return _signature(self, start_a, set()) == _signature(
            other, start_b, set()
        )

    def __repr__(self):
        return (
            f"OEMGraph({self.name!r}, {len(self._objects)} objects, "
            f"roots={list(self._roots)})"
        )


def _fan_out(value):
    """Lists fan a label out to several children; scalars stay single."""
    if isinstance(value, list):
        return value
    return [value]


def _signature(graph, obj, active):
    """Canonical signature of a subtree, with cycle cutoff."""
    if obj.oid in active:
        return ("cycle",)
    if obj.is_atomic:
        return ("atom", obj.type.value, obj.value)
    active = active | {obj.oid}
    parts = sorted(
        (ref.label,) + _signature(graph, graph.get(ref.oid), active)
        for ref in obj.references
    )
    return ("complex", tuple(parts))


def graph_signature(graph, obj):
    """Public wrapper over the subtree signature (used for oid-independent
    duplicate elimination and test assertions)."""
    return _signature(graph, obj, set())
