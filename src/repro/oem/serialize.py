"""OEM serialization: the paper's Figure-3 text format and a JSON form.

Figure 3 of the paper shows the ANNODA-OML representation of LocusLink
as indented text where *"each line shows label, object's oid, object
type, and object value.  If the object is atomic, its value is given on
that line.  If the object is complex, and has not been described
earlier, subsequent indented lines describe its object references."*

:func:`write_figure3` emits exactly that layout; :func:`read_figure3`
parses it back into an :class:`~repro.oem.graph.OEMGraph` preserving
oids, so the format round-trips (a property test enforces this).  The
JSON form is a flat object table used for machine interchange.
"""

from repro.oem.graph import OEMGraph
from repro.oem.model import OEMObject
from repro.oem.types import (
    OEMType,
    parse_value,
    render_value,
    type_from_name,
)
from repro.util.errors import DataFormatError
from repro.util.oids import OidAllocator

INDENT = "  "


# ---------------------------------------------------------------------------
# Figure-3 text format
# ---------------------------------------------------------------------------


def write_figure3(graph, root_label, root):
    """Serialize the subtree at ``root`` in the paper's Figure-3 layout."""
    lines = []
    described = set()

    def _emit(label, obj, depth):
        pad = INDENT * depth
        oid_text = OidAllocator.render(obj.oid)
        if obj.is_atomic:
            value_text = _quote(render_value(obj.value, obj.type))
            lines.append(f"{pad}{label} {oid_text} {obj.type} {value_text}")
            return
        lines.append(f"{pad}{label} {oid_text} {obj.type}")
        if obj.oid in described:
            return
        described.add(obj.oid)
        for ref in obj.references:
            _emit(ref.label, graph.get(ref.oid), depth + 1)

    _emit(root_label, root, 0)
    return "\n".join(lines) + "\n"


def read_figure3(text, graph_name="oem"):
    """Parse Figure-3 text back into ``(graph, root_label, root)``.

    Oids from the text are preserved so that ``write -> read -> write``
    is the identity on well-formed documents.
    """
    graph = OEMGraph(graph_name)
    # (depth, parent object) stack; index 0 is a virtual super-root.
    stack = []
    root_label = None
    root_obj = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        depth, line = _split_indent(raw, line_number)
        label, oid, oem_type, value = _parse_line(line, line_number)
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if depth > 0 and not stack:
            raise DataFormatError(
                "indented line has no parent", line_number=line_number
            )
        if oid in graph:
            obj = graph.get(oid)
            if obj.type is not oem_type:
                raise DataFormatError(
                    f"&{oid} re-described with type {oem_type}, "
                    f"was {obj.type}",
                    line_number=line_number,
                )
        else:
            obj = OEMObject(oid, oem_type, value)
            graph.adopt(obj)
        if stack:
            parent = stack[-1][1]
            parent.add_reference(label, obj)
        else:
            if root_obj is not None:
                raise DataFormatError(
                    "document has more than one top-level object",
                    line_number=line_number,
                )
            root_label, root_obj = label, obj
        if obj.is_complex:
            stack.append((depth, obj))
    if root_obj is None:
        raise DataFormatError("document contains no objects")
    graph.rebind_root(root_label, root_obj)
    return graph, root_label, root_obj


def _split_indent(raw, line_number):
    stripped = raw.lstrip(" ")
    spaces = len(raw) - len(stripped)
    if spaces % len(INDENT) != 0:
        raise DataFormatError(
            f"indentation of {spaces} spaces is not a multiple of "
            f"{len(INDENT)}",
            line_number=line_number,
        )
    return spaces // len(INDENT), stripped.rstrip()


def _parse_line(line, line_number):
    """Split ``Label &N Type ['value']`` into its four parts."""
    parts = line.split(" ", 3)
    if len(parts) < 3:
        raise DataFormatError(
            f"expected 'label &oid type [value]', got {line!r}",
            line_number=line_number,
        )
    label = parts[0]
    try:
        oid = OidAllocator.parse(parts[1])
    except ValueError as exc:
        raise DataFormatError(str(exc), line_number=line_number) from None
    oem_type = type_from_name(parts[2])
    if oem_type is OEMType.COMPLEX:
        if len(parts) == 4 and parts[3].strip():
            raise DataFormatError(
                "complex objects carry no value on their line",
                line_number=line_number,
            )
        return label, oid, oem_type, None
    if len(parts) < 4:
        raise DataFormatError(
            f"atomic object of type {oem_type} is missing its value",
            line_number=line_number,
        )
    return label, oid, oem_type, parse_value(_unquote(parts[3], line_number), oem_type)


def _quote(text):
    return "'" + text.replace("'", "''") + "'"


def _unquote(text, line_number):
    stripped = text.strip()
    if len(stripped) < 2 or not (
        stripped.startswith("'") and stripped.endswith("'")
    ):
        raise DataFormatError(
            f"atomic value must be single-quoted: {text!r}",
            line_number=line_number,
        )
    return stripped[1:-1].replace("''", "'")


# ---------------------------------------------------------------------------
# JSON object-table format
# ---------------------------------------------------------------------------


def to_json_table(graph):
    """Flatten a whole graph to a JSON-serializable object table."""
    objects = []
    for obj in graph.objects():
        if obj.is_atomic:
            objects.append(
                {
                    "oid": obj.oid,
                    "type": obj.type.value,
                    "value": render_value(obj.value, obj.type),
                }
            )
        else:
            objects.append(
                {
                    "oid": obj.oid,
                    "type": obj.type.value,
                    "references": [
                        {"label": ref.label, "oid": ref.oid}
                        for ref in obj.references
                    ],
                }
            )
    roots = {name: graph.root(name).oid for name in graph.root_names()}
    return {"name": graph.name, "objects": objects, "roots": roots}


def from_json_table(table):
    """Rebuild a graph from :func:`to_json_table` output."""
    graph = OEMGraph(table.get("name", "oem"))
    pending_refs = []
    for entry in table["objects"]:
        oem_type = type_from_name(entry["type"])
        if oem_type is OEMType.COMPLEX:
            obj = OEMObject(entry["oid"], oem_type)
            pending_refs.append((obj, entry.get("references", [])))
        else:
            obj = OEMObject(
                entry["oid"], oem_type, parse_value(entry["value"], oem_type)
            )
        graph.adopt(obj)
    for obj, refs in pending_refs:
        for ref in refs:
            obj.add_reference(ref["label"], graph.get(ref["oid"]))
    for name, oid in table.get("roots", {}).items():
        graph.rebind_root(name, graph.get(oid))
    problems = graph.validate()
    if problems:
        raise DataFormatError(
            "JSON object table is not referentially consistent: "
            + "; ".join(problems)
        )
    return graph


# ---------------------------------------------------------------------------
# Convenience conversion to plain Python
# ---------------------------------------------------------------------------


def to_python(graph, obj, _active=None):
    """Convert an OEM subtree into plain Python structures.

    Complex objects become dicts; labels that fan out to several
    children become lists; atomic objects become their values.  Cycles
    are cut with the sentinel string ``"<cycle &N>"``.
    """
    active = _active or frozenset()
    if obj.is_atomic:
        return obj.value
    if obj.oid in active:
        return f"<cycle &{obj.oid}>"
    active = active | {obj.oid}
    result = {}
    for label in obj.labels():
        children = [
            to_python(graph, graph.get(ref.oid), active)
            for ref in obj.refs_with_label(label)
        ]
        result[label] = children[0] if len(children) == 1 else children
    return result
