"""Objects and object references of the Object Exchange Model.

In OEM *all entities are objects* (paper section 3.2.1).  Each object
has a unique object identifier (oid).  Atomic objects carry a value
from one of the disjoint atomic types; complex objects carry a set of
*object references*, denoted as (label, oid, type) pairs.

:class:`OEMObject` instances are owned by an :class:`~repro.oem.graph.OEMGraph`
and are never constructed directly by user code — the graph's
``new_atomic`` / ``new_complex`` factories allocate oids and keep the
oid index consistent.
"""

from dataclasses import dataclass

from repro.oem.types import OEMType, infer_type, validate_value
from repro.util.errors import DataFormatError
from repro.util.oids import OidAllocator


@dataclass(frozen=True)
class ObjectRef:
    """One (label, oid, type) pair of a complex object's value.

    ``type`` is the type tag of the *referenced* object, carried on the
    edge exactly as the paper describes so that a reader of a complex
    value knows each child's type without dereferencing it.
    """

    label: str
    oid: int
    type: OEMType

    def render(self):
        """Render as e.g. ``(Symbol, &4, String)``."""
        return f"({self.label}, {OidAllocator.render(self.oid)}, {self.type})"


class OEMObject:
    """A single OEM object: oid plus either an atomic value or references.

    Attributes
    ----------
    oid:
        Unique integer identifier within the owning graph.
    type:
        The object's :class:`OEMType`; ``COMPLEX`` for non-atomic objects.
    value:
        The atomic payload (``None`` for complex objects).
    """

    __slots__ = ("oid", "type", "value", "_references", "_reference_set")

    def __init__(self, oid, oem_type, value=None):
        self.oid = oid
        self.type = oem_type
        if oem_type is OEMType.COMPLEX:
            if value is not None:
                raise DataFormatError(
                    "complex objects carry references, not a value"
                )
            self.value = None
            self._references = []
            # Mirrors _references for O(1) duplicate checks; built
            # lazily on the first checked add (fresh-reference appends
            # never need it) and the list alone stays authoritative
            # for order.
            self._reference_set = None
        else:
            self.value = validate_value(value, oem_type)
            self._references = None
            self._reference_set = None

    # -- classification -----------------------------------------------------

    @property
    def is_atomic(self):
        return self.type is not OEMType.COMPLEX

    @property
    def is_complex(self):
        return self.type is OEMType.COMPLEX

    # -- complex-object value -----------------------------------------------

    @property
    def references(self):
        """The (label, oid, type) pairs of a complex object's value."""
        if self._references is None:
            raise DataFormatError(
                f"atomic object &{self.oid} has no object references"
            )
        return tuple(self._references)

    def add_reference(self, label, child):
        """Append a reference to ``child`` under ``label``.

        The reference set of an OEM object is *a set*: adding an exact
        duplicate (same label, same child) is a no-op, matching the
        paper's set-of-pairs definition.
        """
        if self._references is None:
            raise DataFormatError(
                f"cannot add references to atomic object &{self.oid}"
            )
        ref = ObjectRef(label, child.oid, child.type)
        if self._reference_set is None:
            self._reference_set = set(self._references)
        if ref not in self._reference_set:
            self._reference_set.add(ref)
            self._references.append(ref)
        return ref

    def append_reference_unchecked(self, label, child):
        """Append a reference *without* the duplicate check.

        Only for callers that can prove the reference is new — e.g.
        ``child`` was allocated moments ago and has never been
        referenced, so no existing (label, oid) pair can collide.
        Misuse would violate the set-of-pairs contract; prefer
        :meth:`add_reference` when in doubt.
        """
        if self._references is None:
            raise DataFormatError(
                f"cannot add references to atomic object &{self.oid}"
            )
        ref = ObjectRef(label, child.oid, child.type)
        self._references.append(ref)
        if self._reference_set is not None:
            self._reference_set.add(ref)
        return ref

    def remove_reference(self, label, child_oid):
        """Remove the reference (label → child_oid); error if absent."""
        if self._references is None:
            raise DataFormatError(
                f"atomic object &{self.oid} has no references to remove"
            )
        for index, ref in enumerate(self._references):
            if ref.label == label and ref.oid == child_oid:
                del self._references[index]
                if self._reference_set is not None:
                    self._reference_set.discard(ref)
                return
        raise DataFormatError(
            f"object &{self.oid} has no reference {label} -> &{child_oid}"
        )

    def sort_references(self, key):
        """Stably sort the reference list by ``key(ref)``.

        Used by Lorel's ``order by``: an answer object's edge order is
        its result order.
        """
        if self._references is None:
            raise DataFormatError(
                f"atomic object &{self.oid} has no references to sort"
            )
        self._references.sort(key=key)

    def reverse_references(self):
        """Reverse the reference list (descending ``order by``)."""
        if self._references is None:
            raise DataFormatError(
                f"atomic object &{self.oid} has no references to reverse"
            )
        self._references.reverse()

    def labels(self):
        """The distinct outgoing labels, in first-appearance order."""
        seen = []
        for ref in self.references:
            if ref.label not in seen:
                seen.append(ref.label)
        return seen

    def refs_with_label(self, label):
        """All references whose label equals ``label``."""
        return [ref for ref in self.references if ref.label == label]

    # -- display ------------------------------------------------------------

    def __repr__(self):
        if self.is_atomic:
            return (
                f"OEMObject(&{self.oid}, {self.type}, value={self.value!r})"
            )
        return (
            f"OEMObject(&{self.oid}, Complex, "
            f"{len(self._references)} references)"
        )


def atomic_from_python(oid, value, oem_type=None):
    """Build an atomic object, inferring the type tag when not given."""
    resolved = oem_type if oem_type is not None else infer_type(value)
    return OEMObject(oid, resolved, value)
