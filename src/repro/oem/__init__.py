"""The extended Object Exchange Model (OEM) — ANNODA's interchange model.

The paper (section 3.2.1) chooses OEM because *"the simple data models
have an advantage over complex models when used for integration"* while
still supporting the two key object-model features: **object nesting**
and **object identity**.  Both the per-source local models
(ANNODA-OML) and the global model (ANNODA-GML) are expressed in this
model, and Lorel query answers are themselves OEM objects.

Public surface:

- :class:`OEMGraph` — the object store (vertices = objects, edges =
  labels), with named roots, construction helpers and merging.
- :class:`OEMObject` / :class:`ObjectRef` — objects and the
  (label, oid, type) reference pairs forming complex values.
- :class:`OEMType` — the extended atomic type tags (Integer, Real,
  String, Boolean, Gif, Url) plus Complex.
- :class:`PathExpression` — Lorel-style label paths with wildcards.
- Figure-3 text serialization and a JSON object-table format.
"""

from repro.oem.graph import OEMGraph, graph_signature
from repro.oem.model import OEMObject, ObjectRef
from repro.oem.paths import PathExpression
from repro.oem.serialize import (
    from_json_table,
    read_figure3,
    to_json_table,
    to_python,
    write_figure3,
)
from repro.oem.types import ATOMIC_TYPES, OEMType, infer_type, type_from_name

__all__ = [
    "ATOMIC_TYPES",
    "OEMGraph",
    "OEMObject",
    "OEMType",
    "ObjectRef",
    "PathExpression",
    "from_json_table",
    "graph_signature",
    "infer_type",
    "read_figure3",
    "to_json_table",
    "to_python",
    "type_from_name",
    "write_figure3",
]
