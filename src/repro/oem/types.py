"""Atomic value types of the extended Object Exchange Model.

Section 3.2.1 of the paper: *"for simplicity, when comparing the
object's value, we extended the data type of the object's value into
OEM"* and *"some objects are atomic and contain a value from one of the
disjoint basic atomic types (e.g. integer, real, string, gif, etc)"*.

This module defines those disjoint atomic types, type inference from
Python values, and value validation.  ``COMPLEX`` is included as the
type tag of non-atomic objects so every (label, oid, type) reference
carries a tag from one enumeration.
"""

import enum

from repro.util.errors import DataFormatError


class OEMType(enum.Enum):
    """Type tags of the extended OEM used by ANNODA-OML and ANNODA-GML."""

    INTEGER = "Integer"
    REAL = "Real"
    STRING = "String"
    BOOLEAN = "Boolean"
    #: Binary image payload; in this reproduction carried as ``bytes``.
    GIF = "Gif"
    #: Web-link values power the paper's interactive navigation.
    URL = "Url"
    #: Non-atomic objects whose value is a set of object references.
    COMPLEX = "Complex"

    def __str__(self):
        return self.value

    @property
    def is_atomic(self):
        return self is not OEMType.COMPLEX


#: Types an atomic object may carry, in serialization-stable order.
ATOMIC_TYPES = tuple(t for t in OEMType if t.is_atomic)

_BY_NAME = {t.value: t for t in OEMType}
_BY_NAME.update({t.value.lower(): t for t in OEMType})
_BY_NAME.update({t.name: t for t in OEMType})


def type_from_name(name):
    """Resolve a type tag from its serialized name (case-tolerant).

    Raises
    ------
    DataFormatError
        If ``name`` is not a known OEM type tag.
    """
    try:
        return _BY_NAME[name if name in _BY_NAME else str(name).lower()]
    except KeyError:
        raise DataFormatError(f"unknown OEM type tag: {name!r}") from None


def infer_type(value):
    """Infer the OEM atomic type of a Python value.

    Booleans are checked before integers because ``bool`` subclasses
    ``int`` in Python.  Strings that look like URLs become ``URL`` only
    via explicit tagging, never by inference, so that gene descriptions
    mentioning a protocol are not misclassified.
    """
    if isinstance(value, bool):
        return OEMType.BOOLEAN
    if isinstance(value, int):
        return OEMType.INTEGER
    if isinstance(value, float):
        return OEMType.REAL
    if isinstance(value, str):
        return OEMType.STRING
    if isinstance(value, (bytes, bytearray)):
        return OEMType.GIF
    raise DataFormatError(
        f"value of Python type {type(value).__name__!r} has no OEM atomic type"
    )


_EXPECTED_PYTHON_TYPES = {
    OEMType.INTEGER: (int,),
    OEMType.REAL: (float, int),
    OEMType.STRING: (str,),
    OEMType.BOOLEAN: (bool,),
    OEMType.GIF: (bytes, bytearray),
    OEMType.URL: (str,),
}


def validate_value(value, oem_type):
    """Check that ``value`` is representable under ``oem_type``.

    Returns the (possibly normalized) value: integers passed as REAL
    are widened to float, ``bytearray`` is frozen to ``bytes``.

    Raises
    ------
    DataFormatError
        If the value cannot carry the requested type.
    """
    if oem_type is OEMType.COMPLEX:
        raise DataFormatError("complex objects do not carry an atomic value")
    expected = _EXPECTED_PYTHON_TYPES[oem_type]
    if isinstance(value, bool) and oem_type is not OEMType.BOOLEAN:
        raise DataFormatError(
            f"boolean value {value!r} cannot carry type {oem_type}"
        )
    if not isinstance(value, expected):
        raise DataFormatError(
            f"value {value!r} cannot carry OEM type {oem_type}"
        )
    if oem_type is OEMType.REAL:
        return float(value)
    if isinstance(value, bytearray):
        return bytes(value)
    return value


def parse_value(text, oem_type):
    """Parse the serialized text of an atomic value back into Python.

    Inverse of :func:`render_value` for every atomic type.
    """
    if oem_type is OEMType.INTEGER:
        return int(text)
    if oem_type is OEMType.REAL:
        return float(text)
    if oem_type is OEMType.BOOLEAN:
        lowered = text.strip().lower()
        if lowered in ("true", "1"):
            return True
        if lowered in ("false", "0"):
            return False
        raise DataFormatError(f"not a boolean literal: {text!r}")
    if oem_type is OEMType.GIF:
        return bytes.fromhex(text)
    # STRING and URL serialize verbatim.
    return text


def render_value(value, oem_type):
    """Render an atomic value to its serialized text form."""
    if oem_type is OEMType.GIF:
        return bytes(value).hex()
    if oem_type is OEMType.BOOLEAN:
        return "true" if value else "false"
    return str(value)
