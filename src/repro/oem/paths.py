"""Label path expressions over OEM graphs.

Lorel navigates OEM with *path expressions*: ``Source.Name`` walks the
``Source`` edge then the ``Name`` edge.  Because semi-structured data is
irregular (*"object structure is not fully known"*, paper section 4.1),
Lorel path expressions allow wildcards; this module implements the
subset ANNODA uses:

``Label``      an exact edge label (matched case-sensitively),
``%``          inside a label: any run of characters (SQL LIKE style),
``#``          a whole segment matching *any path* of length >= 0.

A path is compiled once into a :class:`PathExpression` and can then be
matched from any start object, returning either the terminal objects or
full trails for navigation displays.
"""

import re

from repro.util.errors import QueryError


class PathExpression:
    """A compiled label path.

    >>> from repro.oem.graph import OEMGraph
    >>> graph = OEMGraph()
    >>> root = graph.build({"Source": {"Name": "LocusLink"}})
    >>> [obj.value for obj in PathExpression.parse("Source.Name").terminals(graph, root)]
    ['LocusLink']
    """

    def __init__(self, segments, text):
        self.segments = segments
        self.text = text

    @classmethod
    def parse(cls, text):
        """Compile dotted path text into a :class:`PathExpression`."""
        stripped = text.strip()
        if not stripped:
            raise QueryError("empty path expression")
        segments = []
        for raw in stripped.split("."):
            label = raw.strip()
            if not label:
                raise QueryError(f"empty segment in path {text!r}")
            if label == "#":
                segments.append(_AnyPath())
            elif "%" in label:
                segments.append(_LikeSegment(label))
            else:
                segments.append(_ExactSegment(label))
        return cls(segments, stripped)

    def __len__(self):
        return len(self.segments)

    def __repr__(self):
        return f"PathExpression({self.text!r})"

    # -- matching -----------------------------------------------------------

    def trails(self, graph, start):
        """All matching trails from ``start``.

        A trail is a tuple of (label, object) steps; the terminal object
        of a trail is ``trail[-1][1]`` (or ``start`` for the empty trail,
        which only an all-``#`` path can produce).  Results preserve
        first-encounter order and contain no duplicate terminal visits
        for the same (segment index, object) state, so cyclic graphs
        terminate.
        """
        results = []
        seen_states = set()

        def _match(obj, index, trail):
            state = (index, obj.oid)
            if state in seen_states:
                return
            seen_states.add(state)
            if index == len(self.segments):
                results.append(tuple(trail))
                return
            segment = self.segments[index]
            if isinstance(segment, _AnyPath):
                # '#' matches the empty path ...
                _match(obj, index + 1, trail)
                # ... or one more edge followed by '#' again.
                if obj.is_complex:
                    for ref in obj.references:
                        child = graph.get(ref.oid)
                        trail.append((ref.label, child))
                        _match(child, index, trail)
                        trail.pop()
                return
            if obj.is_complex:
                for ref in obj.references:
                    if segment.matches(ref.label):
                        child = graph.get(ref.oid)
                        trail.append((ref.label, child))
                        _match(child, index + 1, trail)
                        trail.pop()

        _match(start, 0, [])
        return results

    def terminals(self, graph, start):
        """Terminal objects of all matching trails, de-duplicated by oid."""
        ordered = []
        seen = set()
        for trail in self.trails(graph, start):
            terminal = trail[-1][1] if trail else start
            if terminal.oid not in seen:
                seen.add(terminal.oid)
                ordered.append(terminal)
        return ordered

    def first(self, graph, start):
        """The first terminal object, or ``None`` when nothing matches."""
        terminals = self.terminals(graph, start)
        return terminals[0] if terminals else None


class _ExactSegment:
    """Matches one edge whose label equals the segment exactly."""

    def __init__(self, label):
        self.label = label

    def matches(self, label):
        return label == self.label

    def __repr__(self):
        return f"Exact({self.label})"


class _LikeSegment:
    """Matches one edge whose label fits a ``%`` wildcard pattern."""

    def __init__(self, pattern):
        self.pattern = pattern
        parts = [re.escape(part) for part in pattern.split("%")]
        self._regex = re.compile("^" + ".*".join(parts) + "$")

    def matches(self, label):
        return self._regex.match(label) is not None

    def __repr__(self):
        return f"Like({self.pattern})"


class _AnyPath:
    """The ``#`` segment: any path of length >= 0."""

    def __repr__(self):
        return "AnyPath(#)"
