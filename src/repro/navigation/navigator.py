"""Following web-links to live records across the federation."""

from repro.mediator.fetch import FetchRequest
from repro.navigation.links import extract_links, make_web_link, resolve_url
from repro.oem.graph import OEMGraph
from repro.trace.recorder import NULL_RECORDER
from repro.util.errors import IntegrationError, QueryError


class ObjectView:
    """The individual object view of Figure 5(c): one live record as
    OEM, plus its onward links."""

    def __init__(self, source_name, target_id, graph, entry, links):
        self.source_name = source_name
        self.target_id = target_id
        self.graph = graph
        self.entry = entry
        self.links = links

    def field_items(self):
        """(label, value) pairs of the record's atomic fields, in OML
        order, with multivalued labels flattened."""
        items = []
        for ref in self.entry.references:
            child = self.graph.get(ref.oid)
            if child.is_atomic:
                items.append((ref.label, child.value))
        return items

    def __repr__(self):
        return (
            f"ObjectView({self.source_name}:{self.target_id}, "
            f"{len(self.links)} links)"
        )


class Navigator:
    """Resolve and follow links against a mediator's wrappers."""

    def __init__(self, mediator, recorder=NULL_RECORDER):
        self.mediator = mediator
        self.recorder = recorder

    def follow_url(self, url):
        """Navigate a raw URL to its :class:`ObjectView`."""
        source_name, target_id = resolve_url(url)
        return self._view(source_name, target_id)

    def follow(self, web_link):
        """Navigate a :class:`~repro.navigation.links.WebLink`."""
        return self._view(web_link.target_source, web_link.target_id)

    def links_of(self, graph, obj):
        """The navigable links an OEM object exposes."""
        return extract_links(graph, obj)

    def _view(self, source_name, target_id):
        with self.recorder.span(
            "navigate:follow",
            attributes={"source": source_name, "target": str(target_id)},
        ) as span:
            view = self._resolve_view(source_name, target_id)
            span.set("links", len(view.links))
            return view

    def _resolve_view(self, source_name, target_id):
        if source_name not in self.mediator.sources():
            raise IntegrationError(
                f"link points at unregistered source {source_name!r}"
            )
        wrapper = self.mediator.wrapper(source_name)
        key_label = wrapper.key_label
        if key_label is None:
            raise QueryError(
                f"source {source_name!r} has no navigation key configured"
            )
        records = wrapper.fetch(
            FetchRequest(
                ((key_label, "=", target_id),), purpose="object-view"
            )
        )
        if not records:
            raise IntegrationError(
                f"{source_name} has no record {target_id!r} "
                "(dangling web-link)"
            )
        graph = OEMGraph(f"view-{source_name}-{target_id}")
        entry = wrapper.build_entry(graph, records[0])
        graph.set_root("Object", entry)
        links = extract_links(graph, entry)
        return ObjectView(source_name, target_id, graph, entry, links)


class NavigationSession:
    """A stateful browsing session with history (back/forward)."""

    def __init__(self, navigator):
        self.navigator = navigator
        self._history = []
        self._position = -1

    @property
    def current(self):
        """The view currently displayed, or ``None``."""
        if 0 <= self._position < len(self._history):
            return self._history[self._position]
        return None

    def visit_url(self, url):
        """Navigate to a URL, truncating any forward history."""
        view = self.navigator.follow_url(url)
        self._push(view)
        return view

    def visit(self, web_link):
        view = self.navigator.follow(web_link)
        self._push(view)
        return view

    def _push(self, view):
        self._history = self._history[: self._position + 1]
        self._history.append(view)
        self._position += 1

    def back(self):
        """Return to the previous view; error at the start of history."""
        if self._position <= 0:
            raise QueryError("no earlier view in this session")
        self._position -= 1
        return self.current

    def forward(self):
        """Redo a navigation undone by :meth:`back`."""
        if self._position + 1 >= len(self._history):
            raise QueryError("no later view in this session")
        self._position += 1
        return self.current

    def trail(self):
        """The (source, id) breadcrumb of this session up to now."""
        return [
            (view.source_name, view.target_id)
            for view in self._history[: self._position + 1]
        ]
