"""Renderers for the three Figure-5 views.

The paper demonstrates ANNODA through a web GUI; a screenshot cannot
be reproduced, but the information content can: these renderers emit
deterministic text (and minimal HTML) for (a) the query interface,
(b) the annotation integrated view, and (c) the individual object
view.  The figure-regeneration benchmark prints them.
"""

import html

from repro.navigation.links import extract_links
from repro.util.text import box, table


# ---------------------------------------------------------------------------
# Figure 5(a): the query interface
# ---------------------------------------------------------------------------


def render_query_form(question, available_sources):
    """The query form: source inclusion/exclusion, combination method,
    search conditions — the three steps section 4.2 walks through."""
    body = [f"Biological question: {question.text}"]
    body.append("")
    body.append("Step 1 - target sources:")
    included = {link.source_name for link in question.include_links()}
    excluded = {link.source_name for link in question.exclude_links()}
    for source in available_sources:
        if source == question.anchor_source:
            marker = "[anchor]"
        elif source in included:
            marker = "[include]"
        elif source in excluded:
            marker = "[exclude]"
        else:
            marker = "[ignore]"
        body.append(f"  {marker} {source}")
    body.append("")
    body.append(f"Step 2 - combination method: {question.combination}")
    body.append("")
    body.append("Step 3 - search conditions:")
    condition_lines = question.condition_descriptions()
    if condition_lines:
        body.extend(f"  - {line}" for line in condition_lines)
    else:
        body.append("  (none)")
    return box("ANNODA query interface", body)


# ---------------------------------------------------------------------------
# Figure 5(b): the annotation integrated view
# ---------------------------------------------------------------------------


def render_integrated_view(result, limit=None):
    """The integrated answer as an aligned table with web-link markers.

    GO and OMIM get the paper's named columns; any further federated
    source with matches (SwissProt, PubMed, ...) gets its own column.
    """
    extra_sources = sorted(
        {
            source
            for gene in result.genes
            for source, ids in gene.get("_links", {}).items()
            if source not in ("GO", "OMIM") and ids
        }
    )
    headers = (
        ["GeneID", "Symbol", "Organism", "Annotations", "Diseases"]
        + extra_sources
        + ["Links"]
    )
    rows = []
    genes = result.genes if limit is None else result.genes[:limit]
    for gene in genes:
        links = gene.get("_links", {})
        go_ids = links.get("GO", [])
        mims = links.get("OMIM", [])
        row = [
            gene.get("GeneID", ""),
            gene.get("GeneSymbol", ""),
            gene.get("Species", ""),
            ", ".join(go_ids) or "-",
            ", ".join(str(mim) for mim in mims) or "-",
        ]
        for source in extra_sources:
            row.append(
                ", ".join(str(i) for i in links.get(source, ())) or "-"
            )
        row.append("[web]")
        rows.append(row)
    header = (
        f"Annotation integrated view - {len(result.genes)} genes "
        f"({result.reconciliation.count()} conflicts reconciled)"
    )
    shown = table(headers, rows)
    if limit is not None and len(result.genes) > limit:
        shown += f"\n... and {len(result.genes) - limit} more"
    return f"{header}\n{shown}"


def render_integrated_view_html(result, limit=None):
    """Minimal HTML version of the integrated view, with real anchors
    for the web-links (what the paper's GUI showed)."""
    genes = result.genes if limit is None else result.genes[:limit]
    parts = [
        "<html><head><title>ANNODA integrated view</title></head><body>",
        f"<h1>Annotation integrated view ({len(result.genes)} genes)</h1>",
        "<table border='1'>",
        "<tr><th>GeneID</th><th>Symbol</th><th>Organism</th>"
        "<th>Annotations</th><th>Diseases</th></tr>",
    ]
    gene_objects = result.graph.children(result.root, "Gene")
    for gene, gene_object in zip(genes, gene_objects):
        links = {
            link.label: link.url
            for link in extract_links(result.graph, gene_object)
        }
        self_url = links.get("Self", "#")
        annotations = ", ".join(gene.get("_links", {}).get("GO", [])) or "-"
        diseases = ", ".join(
            str(mim) for mim in gene.get("_links", {}).get("OMIM", [])
        ) or "-"
        parts.append(
            "<tr>"
            f"<td><a href='{html.escape(self_url)}'>"
            f"{gene.get('GeneID', '')}</a></td>"
            f"<td>{html.escape(str(gene.get('GeneSymbol', '')))}</td>"
            f"<td>{html.escape(str(gene.get('Species', '')))}</td>"
            f"<td>{html.escape(annotations)}</td>"
            f"<td>{html.escape(diseases)}</td>"
            "</tr>"
        )
    parts.append("</table></body></html>")
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Figure 5(c): the individual object view
# ---------------------------------------------------------------------------


def render_object_view(view):
    """One record with its fields and onward navigation links."""
    body = []
    for label, value in view.field_items():
        body.append(f"{label}: {value}")
    if view.links:
        body.append("")
        body.append("Web links:")
        body.extend(f"  {link.render()}" for link in view.links)
    title = f"{view.source_name} object {view.target_id}"
    return box(title, body)
