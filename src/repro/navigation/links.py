"""Web-link objects and URL resolution.

The 2005-era NCBI/GO URL schemes used by the wrappers are parsed back
into (source, identifier) pairs so the navigator can follow a link to
the live record inside the federation instead of the (long gone)
public website.
"""

import re
from dataclasses import dataclass

from repro.oem.types import OEMType
from repro.util.errors import QueryError

#: URL pattern -> (source name, identifier converter).
_URL_PATTERNS = (
    (re.compile(r"LocRpt\.cgi\?l=(\d+)"), "LocusLink", int),
    (re.compile(r"go\.cgi\?query=(GO:\d{7})"), "GO", str),
    (re.compile(r"dispomim\.cgi\?id=(\d+)"), "OMIM", int),
    (re.compile(r"db=PubMed&list_uids=(\d+)"), "PubMed", int),
    (
        re.compile(r"niceprot\.pl\?([OPQ]\d[A-Z0-9]{3}\d)"),
        "SwissProt",
        str,
    ),
)


@dataclass(frozen=True)
class WebLink:
    """One navigable link: display label, URL and resolved target."""

    label: str
    url: str
    target_source: str
    target_id: object

    def render(self):
        return f"[{self.label}] {self.target_source}:{self.target_id} -> {self.url}"


#: Source name -> URL template, the inverse of :data:`_URL_PATTERNS`.
_URL_TEMPLATES = {
    "LocusLink": "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={0}",
    "GO": "http://godatabase.org/cgi-bin/go.cgi?query={0}",
    "OMIM": "http://www.ncbi.nlm.nih.gov/entrez/dispomim.cgi?id={0}",
    "PubMed": (
        "http://www.ncbi.nlm.nih.gov/entrez/query.fcgi"
        "?cmd=Retrieve&db=PubMed&list_uids={0}"
    ),
    "SwissProt": "http://www.expasy.org/cgi-bin/niceprot.pl?{0}",
}


def url_for(source_name, target_id):
    """The canonical web-link URL of one record in one source.

    Raises
    ------
    QueryError
        When the source has no registered URL scheme.
    """
    template = _URL_TEMPLATES.get(source_name)
    if template is None:
        raise QueryError(f"no URL scheme for source {source_name!r}")
    return template.format(target_id)


def resolve_url(url):
    """Parse a wrapper-emitted URL into ``(source_name, identifier)``.

    Raises
    ------
    QueryError
        When the URL matches no registered pattern.
    """
    for pattern, source_name, converter in _URL_PATTERNS:
        match = pattern.search(url)
        if match:
            return source_name, converter(match.group(1))
    raise QueryError(f"unnavigable URL: {url!r}")


def make_web_link(label, url):
    """Build a :class:`WebLink`, resolving its target eagerly."""
    source_name, target_id = resolve_url(url)
    return WebLink(
        label=label, url=url, target_source=source_name, target_id=target_id
    )


def extract_links(graph, obj):
    """All web links reachable from an OEM object's ``Links`` children.

    Unresolvable URLs (e.g. source homepages) are skipped — they lead
    outside the federation.
    """
    links = []
    for links_object in graph.children(obj, "Links"):
        if not links_object.is_complex:
            continue
        for ref in links_object.references:
            child = graph.get(ref.oid)
            if child.is_atomic and child.type is OEMType.URL:
                try:
                    links.append(make_web_link(ref.label, child.value))
                except QueryError:
                    continue
    return links
