"""Interactive navigation via web-links (Figure 5c, requirement 4).

The paper's abstract highlights that *"this database design uses
web-links which are very useful for interactive navigation"*.  Every
OML entry and every integrated answer carries a ``Links`` object of
``Url``-typed children; this package parses those URLs back to
(source, identifier) pairs, follows them to live records in the
federation, keeps a browsing history, and renders the three views of
Figure 5: the query form (a), the annotation integrated view (b), and
the individual object view (c).
"""

from repro.navigation.links import WebLink, extract_links, resolve_url
from repro.navigation.navigator import NavigationSession, Navigator, ObjectView
from repro.navigation.render import (
    render_integrated_view,
    render_integrated_view_html,
    render_object_view,
    render_query_form,
)

__all__ = [
    "NavigationSession",
    "Navigator",
    "ObjectView",
    "WebLink",
    "extract_links",
    "render_integrated_view",
    "render_integrated_view_html",
    "render_object_view",
    "render_query_form",
    "resolve_url",
]
