"""Machine-readable exports of integrated results."""

import csv
import io
import json


#: Gene columns exported in stable order when present.
_PREFERRED_COLUMNS = (
    "GeneID",
    "GeneSymbol",
    "Species",
    "MapPosition",
    "Definition",
)


def _columns(result):
    present = set()
    for gene in result.genes:
        present.update(key for key in gene if key != "_links")
    ordered = [c for c in _PREFERRED_COLUMNS if c in present]
    ordered.extend(sorted(present - set(ordered)))
    return ordered


def to_csv(result):
    """The integrated result as CSV text.

    Multivalued attributes and matched link ids are joined with ``|``
    inside their cell (the classic bioinformatics convention).
    """
    columns = _columns(result)
    link_sources = sorted(
        {
            source
            for gene in result.genes
            for source in gene.get("_links", {})
        }
    )
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns + [f"Linked{source}" for source in link_sources])
    for gene in result.genes:
        row = []
        for column in columns:
            value = gene.get(column, "")
            if isinstance(value, list):
                value = "|".join(str(item) for item in value)
            row.append(value)
        for source in link_sources:
            row.append(
                "|".join(
                    str(link_id)
                    for link_id in gene.get("_links", {}).get(source, ())
                )
            )
        writer.writerow(row)
    return buffer.getvalue()


def to_json_records(result):
    """The integrated result as a JSON string of gene records.

    ``_links`` becomes a ``links`` object keyed by source name.
    """
    records = []
    for gene in result.genes:
        record = {
            key: value for key, value in gene.items() if key != "_links"
        }
        record["links"] = {
            source: list(ids)
            for source, ids in gene.get("_links", {}).items()
        }
        records.append(record)
    return json.dumps(records, indent=2, sort_keys=True)
