"""Pivot views over integrated results."""

from repro.oem.graph import OEMGraph
from repro.util.errors import QueryError


class Reorganizer:
    """Re-organize one integrated result for further analysis.

    All views are derived from the result's plain gene dicts (global
    vocabulary), so they work for any anchor/link combination the
    mediator produced.
    """

    def __init__(self, result):
        self.result = result

    # -- grouping views ----------------------------------------------------------

    def by_annotation(self):
        """GO accession -> {"title": term title or None,
        "genes": [GeneIDs]} over the matched annotations."""
        return self._by_link("GO")

    def by_disease(self):
        """MIM number -> {"title": ..., "genes": [GeneIDs]}."""
        return self._by_link("OMIM")

    def _by_link(self, source_name):
        groups = {}
        titles = self._link_titles(source_name)
        for gene in self.result.genes:
            for link_id in gene.get("_links", {}).get(source_name, ()):
                group = groups.setdefault(
                    link_id,
                    {"title": titles.get(link_id), "genes": []},
                )
                group["genes"].append(gene["GeneID"])
        for group in groups.values():
            group["genes"].sort()
        return dict(sorted(groups.items(), key=lambda item: str(item[0])))

    def _link_titles(self, source_name):
        """Link id -> Title, read from the enriched OEM view."""
        titles = {}
        graph = self.result.graph
        child_label = {"GO": "Annotation", "OMIM": "Disease",
                       "PubMed": "Citation"}.get(source_name)
        if child_label is None:
            return titles
        for gene_object in graph.children(self.result.root, "Gene"):
            for child in graph.children(gene_object, child_label):
                link_id = None
                title = None
                for ref in child.references:
                    value_object = graph.get(ref.oid)
                    if not value_object.is_atomic:
                        continue
                    if ref.label == "Title":
                        title = value_object.value
                    elif link_id is None and ref.label != "Title":
                        link_id = value_object.value
                if link_id is not None and title is not None:
                    titles[link_id] = title
        return titles

    def by_species(self):
        """Species -> [GeneIDs]."""
        groups = {}
        for gene in self.result.genes:
            species = gene.get("Species", "unknown")
            groups.setdefault(species, []).append(gene["GeneID"])
        for genes in groups.values():
            genes.sort()
        return dict(sorted(groups.items()))

    # -- the analysis matrix --------------------------------------------------------

    def incidence_matrix(self, source_name="GO"):
        """The gene x link incidence matrix automated analyses consume.

        Returns ``(gene_ids, link_ids, rows)`` where ``rows[i][j]`` is
        1 iff gene ``gene_ids[i]`` matched link ``link_ids[j]``.
        """
        gene_ids = [gene["GeneID"] for gene in self.result.genes]
        link_ids = sorted(
            {
                link_id
                for gene in self.result.genes
                for link_id in gene.get("_links", {}).get(source_name, ())
            },
            key=str,
        )
        column_of = {link_id: j for j, link_id in enumerate(link_ids)}
        rows = []
        for gene in self.result.genes:
            row = [0] * len(link_ids)
            for link_id in gene.get("_links", {}).get(source_name, ()):
                row[column_of[link_id]] = 1
            rows.append(row)
        return gene_ids, link_ids, rows

    # -- OEM pivot view ------------------------------------------------------------

    def pivot_view(self, source_name="GO"):
        """The by-annotation grouping as a new OEM graph.

        Result shape: a root with one ``Group`` per link id, each
        carrying the id, its title (when enriched) and ``GeneID``
        members — itself queryable with Lorel, keeping the paper's
        "answers are OEM objects" property.
        """
        groups = self._by_link(source_name)
        graph = OEMGraph(f"pivot-{source_name.lower()}")
        root = graph.new_complex()
        graph.set_root("PivotView", root)
        for link_id, group in groups.items():
            group_object = graph.new_complex()
            graph.add_edge(root, "Group", group_object)
            graph.add_edge(group_object, "Key", graph.new_atomic(link_id))
            if group["title"] is not None:
                graph.add_edge(
                    group_object, "Title", graph.new_atomic(group["title"])
                )
            for gene_id in group["genes"]:
                graph.add_edge(
                    group_object, "GeneID", graph.new_atomic(gene_id)
                )
        return graph, root

    # -- summary -----------------------------------------------------------------------

    def summary(self):
        """Headline counts for reports."""
        annotation_groups = self.by_annotation()
        disease_groups = self.by_disease()
        return {
            "genes": len(self.result.genes),
            "annotation_groups": len(annotation_groups),
            "disease_groups": len(disease_groups),
            "species": {
                species: len(genes)
                for species, genes in self.by_species().items()
            },
        }


def require_nonempty(result):
    """Guard helper for workflows that cannot pivot nothing."""
    if not result.genes:
        raise QueryError("cannot reorganize an empty result")
    return result
