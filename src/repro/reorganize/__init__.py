"""Re-organization of retrieved results (paper future-work item 4).

The paper's conclusion: *"Re-Organization of the retrieved results
will be mainly focused on to facilitate the further analysis."*  This
package implements that follow-up: pivoting an
:class:`~repro.mediator.executor.IntegratedResult` by annotation,
disease or species; building the gene x annotation incidence matrix
automated large-scale analyses consume; and exporting to CSV/JSON.
"""

from repro.reorganize.export import to_csv, to_json_records
from repro.reorganize.pivot import Reorganizer

__all__ = ["Reorganizer", "to_csv", "to_json_records"]
