"""The lint engine: source model, rule registry, suppressions, runner.

The linter is deliberately small and dependency-free: each checked
file becomes a :class:`SourceModule` (text + ``ast`` tree + logical
module name), each rule is a registered object with a stable ``ANN``
code, and the runner walks every module through every selected rule,
filters suppressed findings, and renders ``path:line:col: CODE
message`` diagnostics.

Two comment directives are honoured:

- ``# annoda: noqa=ANN001[,ANN003] [-- reason]`` suppresses the named
  codes *on that line only*.  Naming a code the registry does not
  know is itself reported (``ANN000``) — a typo in a suppression must
  never silently disable nothing.
- ``# annoda: module=repro.sources.fake`` (in the first ten lines)
  overrides the logical module name derived from the path.  Scoped
  rules key on the logical name, so rule fixtures living under
  ``tests/tools/fixtures/`` can impersonate any module.

Directories named ``fixtures`` are excluded from path walks: they
hold deliberately-violating rule corpora, linted explicitly by the
rule tests, never by the project gate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Reserved meta-codes (not registrable rules).
META_UNKNOWN_SUPPRESSION = "ANN000"
META_SYNTAX_ERROR = "ANN901"

_NOQA_RE = re.compile(
    r"#\s*annoda:\s*noqa=([A-Za-z0-9_,\s]+?)(?:\s*--\s*(?P<reason>.*))?\s*$"
)
_MODULE_RE = re.compile(r"#\s*annoda:\s*module=([A-Za-z0-9_.]+)\s*$")
_CODE_RE = re.compile(r"^ANN\d{3}$")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which rule, and what is wrong."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class SourceModule:
    """One parsed file plus the metadata rules key on."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.suppressions: Dict[int, Set[str]] = {}
        self.suppression_reasons: Dict[int, str] = {}
        self._scan_directives()
        self.module_name = self._directive_module() or _logical_name(path)

    def _scan_directives(self) -> None:
        for number, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            }
            self.suppressions[number] = codes
            reason = match.group("reason")
            if reason:
                self.suppression_reasons[number] = reason.strip()

    def _directive_module(self) -> Optional[str]:
        for line in self.lines[:10]:
            match = _MODULE_RE.search(line)
            if match is not None:
                return match.group(1)
        return None

    def in_module(self, *prefixes: str) -> bool:
        """True when the logical module name sits under any prefix."""
        return any(
            self.module_name == prefix
            or self.module_name.startswith(prefix + ".")
            for prefix in prefixes
        )


@dataclass
class Project:
    """Everything one lint invocation saw, for cross-file rules."""

    modules: List[SourceModule] = field(default_factory=list)

    def module(self, name: str) -> Optional[SourceModule]:
        for candidate in self.modules:
            if candidate.module_name == name:
                return candidate
        return None


class Rule:
    """One invariant checker.  Subclasses set ``code``/``title``/
    ``rationale`` and implement :meth:`check` (per module) and/or
    :meth:`finish` (once, with the whole project).

    Rules with ``interprocedural = True`` live in the registry for
    code/suppression bookkeeping (``--select`` validation, ``noqa``
    spell checking) but only produce findings under the whole-program
    analyzer (:mod:`repro.tools.flow`); the per-file runner treats
    them as no-ops.
    """

    code = "ANN999"
    title = "unnamed rule"
    rationale = ""
    #: True for rules needing the project-wide call graph; such rules
    #: implement ``analyze(FlowProject)`` instead of check/finish.
    interprocedural = False

    def check(self, module: SourceModule) -> List[Diagnostic]:
        return []

    def finish(self, project: Project) -> List[Diagnostic]:
        return []


REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one rule instance to the registry."""
    rule = cls()
    if not _CODE_RE.match(rule.code):
        raise ValueError(f"invalid rule code {rule.code!r}")
    if rule.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    if rule.code in (META_UNKNOWN_SUPPRESSION, META_SYNTAX_ERROR):
        raise ValueError(f"rule code {rule.code} is reserved")
    REGISTRY[rule.code] = rule
    return cls


def known_codes() -> Set[str]:
    return set(REGISTRY) | {META_UNKNOWN_SUPPRESSION, META_SYNTAX_ERROR}


def resolve_codes(codes: Iterable[str]) -> Set[str]:
    """Validate a user-supplied code selection.

    Raises
    ------
    ValueError
        For any code the registry does not know — a typo in
        ``--select`` must fail loudly, not silently check nothing.
    """
    resolved = set()
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in REGISTRY:
            raise ValueError(
                f"unknown rule code {normalized!r} "
                f"(known: {', '.join(sorted(REGISTRY))})"
            )
        resolved.add(normalized)
    return resolved


def collect_files(
    paths: Sequence[str], include_fixtures: bool = False
) -> List[str]:
    """Python files under ``paths``, fixtures and caches excluded."""
    collected: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            collected.append(str(path))
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if "__pycache__" in parts:
                continue
            if not include_fixtures and "fixtures" in parts:
                continue
            if any(part.startswith(".") for part in parts):
                continue
            collected.append(str(candidate))
    return collected


def lint_texts(
    sources: Iterable[Tuple[str, str]],
    select: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Lint ``(path, text)`` pairs; the core of every entry point.

    Unreadable syntax becomes an ``ANN901`` diagnostic for that file
    (the rest still lint); suppression comments naming unknown codes
    become ``ANN000`` diagnostics; everything else is produced by the
    registered rules, filtered by line-level suppressions and the
    optional ``select`` set.
    """
    project = Project()
    diagnostics: List[Diagnostic] = []
    for path, text in sources:
        try:
            module = SourceModule(path, text)
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    path,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    META_SYNTAX_ERROR,
                    f"cannot parse file: {exc.msg}",
                )
            )
            continue
        project.modules.append(module)

    rules = [
        rule
        for code, rule in sorted(REGISTRY.items())
        if select is None or code in select
    ]
    raw: List[Diagnostic] = []
    for module in project.modules:
        for rule in rules:
            raw.extend(rule.check(module))
    for rule in rules:
        raw.extend(rule.finish(project))

    diagnostics.extend(
        apply_suppressions(project.modules, raw, check_unknown=True)
    )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return diagnostics


def apply_suppressions(
    modules: Iterable[SourceModule],
    raw: Iterable[Diagnostic],
    check_unknown: bool = True,
) -> List[Diagnostic]:
    """Filter ``raw`` through the modules' line-level suppressions.

    Shared by the per-file runner and the whole-program analyzer so
    ``# annoda: noqa=...`` means the same thing under both.  With
    ``check_unknown`` a suppression naming an unknown code becomes an
    ``ANN000`` diagnostic itself.
    """
    modules = list(modules)
    by_path = {module.path: module for module in modules}
    kept: List[Diagnostic] = []
    for diagnostic in raw:
        module = by_path.get(diagnostic.path)
        if module is not None:
            suppressed = module.suppressions.get(diagnostic.line, set())
            if diagnostic.code in suppressed:
                continue
        kept.append(diagnostic)

    if check_unknown:
        # A suppression naming an unknown code is a lint error itself.
        for module in modules:
            for line, codes in sorted(module.suppressions.items()):
                for code in sorted(codes):
                    if code not in known_codes():
                        kept.append(
                            Diagnostic(
                                module.path,
                                line,
                                0,
                                META_UNKNOWN_SUPPRESSION,
                                f"suppression names unknown rule code "
                                f"{code}",
                            )
                        )
    return kept


def lint_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
    include_fixtures: bool = False,
) -> List[Diagnostic]:
    """Lint every Python file under ``paths``."""
    files = collect_files(paths, include_fixtures=include_fixtures)
    sources = []
    for file_path in files:
        sources.append(
            (file_path, Path(file_path).read_text(encoding="utf-8"))
        )
    return lint_texts(sources, select=select)


def lint_file(
    path: str, select: Optional[Set[str]] = None
) -> List[Diagnostic]:
    """Lint one file (fixture tests call this directly)."""
    return lint_texts(
        [(path, Path(path).read_text(encoding="utf-8"))], select=select
    )


def _logical_name(path: str) -> str:
    """Dotted module name from a file path.

    ``src/repro/sources/base.py`` -> ``repro.sources.base``;
    paths outside a recognisable package root keep their dotted path
    sans suffix (scoped rules then simply do not fire).
    """
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for root in ("src", "lib"):
        if root in parts:
            parts = parts[parts.index(root) + 1:]
            break
    return ".".join(part for part in parts if part not in ("", "."))
