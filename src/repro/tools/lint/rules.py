"""The project's invariant rules, ANN001..ANN006.

Each rule guards one convention the federation's correctness rests on
(DESIGN §10).  Rules are registered by code; fixtures exercising every
rule live under ``tests/tools/fixtures/`` with one good/bad pair per
code, and a violation can be locally waived with
``# annoda: noqa=<code> -- reason``.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.tools.lint.engine import (
    Diagnostic,
    Project,
    Rule,
    SourceModule,
    register,
)

# -- shared AST helpers -------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """Textual dotted form of a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lockish(expression: ast.AST) -> bool:
    """True when a ``with`` item's context expression looks like a
    mutex: its dotted text mentions ``lock`` or ``mutex``."""
    node = expression
    if isinstance(node, ast.Call):
        node = node.func
    text = _dotted(node)
    if text is None:
        return False
    lowered = text.lower()
    return "lock" in lowered or "mutex" in lowered


def _self_private_attr(node: ast.AST) -> Optional[str]:
    """The private ``self._attr`` a write target/receiver resolves to.

    Unwraps subscripts, calls and attribute chains so
    ``self._by_symbol.setdefault(k, []).append(v)`` and
    ``self._by_id[key] = record`` both resolve to their backing
    attribute.  Dunder attributes (``self.__dict__``) and version
    counters are not state in this rule's sense.
    """
    while True:
        if isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Attribute) and not isinstance(
            node.value, ast.Name
        ):
            node = node.value
        else:
            break
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        attr = node.attr
        if (
            attr.startswith("_")
            and not attr.startswith("__")
            and attr not in ("_version",)
        ):
            return attr
    return None


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """name-in-module -> origin ("module" or "module.symbol")."""
    origins: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                origins[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                origins[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return origins


def _walk_locked(
    body: Iterable[ast.stmt], locked: Tuple[str, ...] = ()
) -> Iterable[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, held-lock labels)`` over statements, descending
    into compound statements and tracking ``with <lock>`` nesting.
    Nested function bodies run later (the lock is not held when they
    execute), so they are yielded with an empty held set.
    """
    for statement in body:
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            yield statement, locked
            yield from _walk_locked(statement.body, ())
            continue
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            labels = list(locked)
            for item in statement.items:
                if _is_lockish(item.context_expr):
                    node = item.context_expr
                    if isinstance(node, ast.Call):
                        node = node.func
                    labels.append(_dotted(node) or "<lock>")
            yield statement, locked
            yield from _walk_locked(statement.body, tuple(labels))
            continue
        yield statement, locked
        for child_body in _statement_bodies(statement):
            yield from _walk_locked(child_body, locked)


def _statement_bodies(statement: ast.stmt) -> List[List[ast.stmt]]:
    bodies = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(statement, name, None)
        if block:
            bodies.append(block)
    for handler in getattr(statement, "handlers", ()) or ():
        bodies.append(handler.body)
    return bodies


def _expressions_under(statement: ast.AST) -> Iterable[ast.AST]:
    """Every expression node belonging to one statement, without
    descending into nested statements (those are walked separately)."""
    block_fields = {"body", "orelse", "finalbody", "handlers"}
    stack = [
        child
        for name, child in ast.iter_fields(statement)
        if name not in block_fields
    ]
    while stack:
        node = stack.pop()
        if isinstance(node, list):
            stack.extend(node)
        elif isinstance(node, ast.AST):
            yield node
            stack.extend(
                child
                for name, child in ast.iter_fields(node)
                if name not in block_fields
            )


# -- ANN001: no raw-conditions fetch shim ------------------------------------


@register
class RawConditionFetchRule(Rule):
    code = "ANN001"
    title = "no in-repo use of the deprecated raw-conditions fetch shim"
    rationale = (
        "Every in-repo fetch must pass a FetchRequest: the raw "
        "condition-sequence shim exists only for external "
        "pre-FetchRequest callers, bypasses the purpose/timeout/retry "
        "accounting, and is slated for removal."
    )

    _LITERALS = (
        ast.List,
        ast.Tuple,
        ast.Set,
        ast.Dict,
        ast.ListComp,
        ast.SetComp,
        ast.GeneratorExp,
    )

    def check(self, module: SourceModule) -> List[Diagnostic]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "fetch"):
                continue
            argument = self._request_argument(node)
            if argument is _NO_ARGUMENT:
                reason = "no request argument (the shim's empty default)"
            elif self._is_raw_sequence(argument):
                reason = "a raw condition sequence"
            else:
                continue
            findings.append(
                Diagnostic(
                    module.path,
                    node.lineno,
                    node.col_offset,
                    self.code,
                    f"fetch() called with {reason}; build a "
                    "repro.mediator.fetch.FetchRequest instead",
                )
            )
        return findings

    @staticmethod
    def _request_argument(call: ast.Call) -> Any:
        if call.args:
            first = call.args[0]
            if isinstance(first, ast.Starred):
                return None  # cannot tell statically; let it pass
            return first
        for keyword in call.keywords:
            if keyword.arg == "request":
                return keyword.value
        if call.keywords:
            return None
        return _NO_ARGUMENT

    def _is_raw_sequence(self, argument: Any) -> bool:
        if argument is None:
            return False
        if isinstance(argument, self._LITERALS):
            return True
        if isinstance(argument, ast.Call):
            return _dotted(argument.func) in ("list", "tuple")
        return False


_NO_ARGUMENT = object()


# -- ANN002: indexed-state writes are synchronized ----------------------------


@register
class UnsynchronizedStateWriteRule(Rule):
    code = "ANN002"
    title = (
        "store-state mutation must bump version or hold _fetch_mutex"
    )
    rationale = (
        "The version-keyed index scheme is only sound if every "
        "mutation of a store's record/index state either bumps the "
        "version counter (invalidating derived indexes wholesale) or "
        "runs under the per-source fetch mutex; methods suffixed "
        "_locked assert the caller already holds it."
    )

    _MUTATORS = {
        "append", "add", "clear", "discard", "extend", "insert",
        "pop", "popitem", "remove", "setdefault", "sort", "update",
    }

    def check(self, module: SourceModule) -> List[Diagnostic]:
        if not module.in_module("repro.sources"):
            return []
        findings: List[Diagnostic] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_store_class(node):
                continue
            for method in node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                if method.name.endswith("_locked"):
                    continue
                findings.extend(self._check_method(module, method))
        return findings

    @staticmethod
    def _is_store_class(node: ast.ClassDef) -> bool:
        if node.name == "DataSource":
            return True
        for base in node.bases:
            text = _dotted(base)
            if text is not None and text.split(".")[-1] == "DataSource":
                return True
        return False

    def _check_method(
        self, module: SourceModule, method: ast.FunctionDef
    ) -> List[Diagnostic]:
        bumps_version = any(
            isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign))
            and any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in ("_version", "version")
                for target in (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
            )
            for node in ast.walk(method)
        )
        if bumps_version:
            return []
        findings = []
        for statement, held in _walk_locked(method.body):
            if held:
                continue
            for attr, line, col in self._state_writes(statement):
                findings.append(
                    Diagnostic(
                        module.path,
                        line,
                        col,
                        self.code,
                        f"write to self.{attr} in {method.name}() "
                        "without holding _fetch_mutex or bumping "
                        "version",
                    )
                )
        return findings

    def _state_writes(
        self, statement: ast.AST
    ) -> List[Tuple[str, int, int]]:
        writes = []
        targets: List[ast.AST] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            targets = [statement.target]
        elif isinstance(statement, ast.Delete):
            targets = list(statement.targets)
        for target in targets:
            attr = _self_private_attr(target)
            if attr is not None:
                writes.append(
                    (attr, statement.lineno, statement.col_offset)
                )
        for node in _expressions_under(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MUTATORS
            ):
                attr = _self_private_attr(node.func.value)
                if attr is not None:
                    writes.append((attr, node.lineno, node.col_offset))
        return writes


# -- ANN003: determinism of answer-affecting modules --------------------------


@register
class NondeterminismRule(Rule):
    code = "ANN003"
    title = (
        "no wall-clock time or unseeded randomness in answer-"
        "affecting modules"
    )
    rationale = (
        "Worker count must be answer-invariant: mediator, sources, "
        "reconciliation and the trace recorder may only use monotonic "
        "timers for accounting (perf_counter, the repro.util.clock "
        "seam) and seeded RNGs (DeterministicRng); wall-clock reads "
        "and global random draws make answers irreproducible."
    )

    _SCOPES = ("repro.mediator", "repro.sources", "repro.trace")
    _TIME_BANNED = {"time.time", "time.time_ns"}
    _DATETIME_RECEIVERS = {"datetime", "datetime.datetime", "datetime.date"}
    _DATETIME_CALLS = {"now", "utcnow", "today"}
    _RANDOM_DRAWS = {
        "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "gauss", "betavariate",
        "random.seed",
    }

    def check(self, module: SourceModule) -> List[Diagnostic]:
        if not module.in_module(*self._SCOPES):
            return []
        origins = _import_map(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node, origins)
            if message is not None:
                findings.append(
                    Diagnostic(
                        module.path,
                        node.lineno,
                        node.col_offset,
                        self.code,
                        message,
                    )
                )
        return findings

    def _violation(
        self, call: ast.Call, origins: Dict[str, str]
    ) -> Optional[str]:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        origin = self._resolve(dotted, origins)
        if origin in self._TIME_BANNED:
            return (
                f"{dotted}() reads the wall clock; use "
                "time.perf_counter() for accounting"
            )
        head, _, tail = origin.rpartition(".")
        if tail in self._DATETIME_CALLS and (
            head in self._DATETIME_RECEIVERS
            or origins.get(head, "").startswith("datetime")
        ):
            return (
                f"{dotted}() reads the wall clock; answer-affecting "
                "code must be deterministic"
            )
        if head == "random" and tail in self._RANDOM_DRAWS:
            return (
                f"{dotted}() draws from the process-global RNG; use "
                "repro.util.rng.DeterministicRng"
            )
        if origin == "random.Random" and not call.args:
            return (
                "random.Random() without a seed is nondeterministic; "
                "pass an explicit seed or use DeterministicRng"
            )
        return None

    @staticmethod
    def _resolve(dotted: str, origins: Dict[str, str]) -> str:
        head, _, rest = dotted.partition(".")
        origin = origins.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


# -- ANN004: no blocking calls while holding a lock ---------------------------


@register
class BlockingUnderLockRule(Rule):
    code = "ANN004"
    title = "no blocking I/O or sleep while holding a lock"
    rationale = (
        "The per-source fetch mutex serializes every indexed fetch on "
        "that source: a sleep or filesystem/network call inside it "
        "stalls the whole federation's worker pool, and lock-holding "
        "I/O is the classic priority-inversion deadlock shape."
    )

    _BANNED_EXACT = {
        "time.sleep", "os.system", "os.popen", "pickle.dump",
        "pickle.load", "json.dump", "json.load", "open", "input",
    }
    _BANNED_ROOTS = {"subprocess", "socket", "requests", "urllib",
                     "shutil"}
    _BANNED_ATTRS = {
        "read_text", "write_text", "read_bytes", "write_bytes",
        "sleep",
    }

    def check(self, module: SourceModule) -> List[Diagnostic]:
        origins = _import_map(module.tree)
        findings = []
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        seen: Set[int] = set()
        for function in functions:
            for statement, held in _walk_locked(function.body):
                if not held or id(statement) in seen:
                    continue
                seen.add(id(statement))
                for node in _expressions_under(statement):
                    if not isinstance(node, ast.Call):
                        continue
                    offence = self._blocking_call(node, origins)
                    if offence is not None:
                        findings.append(
                            Diagnostic(
                                module.path,
                                node.lineno,
                                node.col_offset,
                                self.code,
                                f"{offence} while holding "
                                f"{', '.join(held)}",
                            )
                        )
        return findings

    def _blocking_call(
        self, call: ast.Call, origins: Dict[str, str]
    ) -> Optional[str]:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        head = dotted.split(".")[0]
        origin = origins.get(head, head)
        resolved = (
            origin + dotted[len(head):] if dotted != head else origin
        )
        if resolved in self._BANNED_EXACT or dotted in self._BANNED_EXACT:
            return f"blocking call {dotted}()"
        if origin.split(".")[0] in self._BANNED_ROOTS:
            return f"blocking call {dotted}()"
        tail = dotted.rsplit(".", 1)[-1]
        if "." in dotted and tail in self._BANNED_ATTRS:
            return f"blocking call {dotted}()"
        return None


# -- ANN005: no silently-dropped counters ------------------------------------


@register
class DroppedCounterRule(Rule):
    code = "ANN005"
    title = (
        "every ExecutionStats / fetch-path counter is folded into "
        "ExecutionReport"
    )
    rationale = (
        "Counters that are written but never surfaced rot silently: "
        "each ExecutionStats field must be referenced by "
        "ExecutionReport (directly or via a stats method it calls), "
        "each fetch-path counter key must be folded into the "
        "executor's snapshot, and each counter declared in a metrics "
        "registry must be attached to some span (incr / set_counter / "
        "_delta_counter) somewhere in the project — and conversely, "
        "a counter attached inside repro modules must be declared in "
        "a registry (registered AND attached, never half-wired)."
    )

    def check(self, module: SourceModule) -> List[Diagnostic]:
        stats = self._class(module.tree, "ExecutionStats")
        report = self._class(module.tree, "ExecutionReport")
        if stats is None or report is None:
            return []
        counters = self._stats_counters(stats)
        referenced = {
            node.attr
            for node in ast.walk(report)
            if isinstance(node, ast.Attribute)
        }
        folded = set(referenced)
        for method_name, reads in self._stats_method_reads(stats).items():
            if method_name in referenced:
                folded.update(reads)
        findings = []
        for name, line, col in counters:
            if name not in folded:
                findings.append(
                    Diagnostic(
                        module.path,
                        line,
                        col,
                        self.code,
                        f"ExecutionStats.{name} is never folded into "
                        "ExecutionReport (silently-dropped counter)",
                    )
                )
        return findings

    def finish(self, project: Project) -> List[Diagnostic]:
        findings = self._check_fetchpath_keys(project)
        findings.extend(self._check_registered_metrics(project))
        return findings

    def _check_fetchpath_keys(
        self, project: Project
    ) -> List[Diagnostic]:
        stats_literals: Set[str] = set()
        stats_seen = False
        for module in project.modules:
            if self._class(module.tree, "ExecutionStats") is None:
                continue
            stats_seen = True
            stats_literals.update(
                node.value
                for node in ast.walk(module.tree)
                if isinstance(node, ast.Constant)
                and isinstance(node.value, str)
            )
        if not stats_seen:
            return []
        findings = []
        for module in project.modules:
            for key, line, col in self._fetchpath_counter_keys(
                module.tree
            ):
                if key not in stats_literals:
                    findings.append(
                        Diagnostic(
                            module.path,
                            line,
                            col,
                            self.code,
                            f"fetch-path counter {key!r} is not folded "
                            "into any ExecutionStats module (the "
                            "executor snapshot would drop it)",
                        )
                    )
        return findings

    def _check_registered_metrics(
        self, project: Project
    ) -> List[Diagnostic]:
        """Registration and attachment must agree both ways: a counter
        registered in a metrics registry must be attached to a span
        somewhere in the linted project, and (within ``repro`` modules)
        a counter attached to a span must be declared in a registry —
        a new counter cannot ship half-wired."""
        attached: Set[str] = set()
        registrations: List[
            Tuple[SourceModule, str, int, int]
        ] = []
        for module in project.modules:
            attached.update(self._attached_counter_names(module.tree))
            for name, line, col in self._metric_registrations(
                module.tree
            ):
                registrations.append((module, name, line, col))
        findings = []
        registered = {name for _, name, _, _ in registrations}
        for module, name, line, col in registrations:
            if name not in attached:
                findings.append(
                    Diagnostic(
                        module.path,
                        line,
                        col,
                        self.code,
                        f"metric {name!r} is registered in the metrics "
                        "registry but never attached to any span "
                        "(no incr/set_counter/_delta_counter names it)",
                    )
                )
        if not registered:
            # No registry in the linted set: nothing to agree with
            # (single-file lints of unrelated fixtures stay silent).
            return findings
        for module in project.modules:
            if not module.in_module("repro"):
                continue
            for name, line, col in self._attached_counter_sites(
                module.tree
            ):
                if name not in registered:
                    findings.append(
                        Diagnostic(
                            module.path,
                            line,
                            col,
                            self.code,
                            f"counter {name!r} is attached to a span "
                            "but not registered in any metrics "
                            "registry (undeclared counter)",
                        )
                    )
        return findings

    @staticmethod
    def _metric_registrations(
        tree: ast.Module,
    ) -> List[Tuple[str, int, int]]:
        """``(name, line, col)`` for every counter registered on a
        registry instance constructed in this module, i.e. a
        ``.register("name", ...)`` call whose receiver was assigned
        from a ``MetricsRegistry(...)`` call."""
        registries: Set[str] = set()
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
            ):
                continue
            callee = _dotted(node.value.func)
            if (
                callee is not None
                and callee.split(".")[-1] == "MetricsRegistry"
            ):
                registries.update(
                    target.id
                    for target in node.targets
                    if isinstance(target, ast.Name)
                )
        if not registries:
            return []
        registrations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "register"
                and _dotted(func.value) in registries
            ):
                continue
            if (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                registrations.append(
                    (
                        node.args[0].value,
                        node.lineno,
                        node.col_offset,
                    )
                )
        return registrations

    @classmethod
    def _attached_counter_names(cls, tree: ast.Module) -> Set[str]:
        """Counter names attached to spans in this module."""
        return {
            name for name, _, _ in cls._attached_counter_sites(tree)
        }

    @staticmethod
    def _attached_counter_sites(
        tree: ast.Module,
    ) -> List[Tuple[str, int, int]]:
        """``(name, line, col)`` per span attachment in this module:
        the literal first argument of ``.incr()`` / ``.set_counter()``
        calls and the literal second argument of ``_delta_counter()``
        calls."""
        sites: List[Tuple[str, int, int]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("incr", "set_counter")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                sites.append(
                    (node.args[0].value, node.lineno, node.col_offset)
                )
                continue
            dotted = _dotted(func)
            if (
                dotted is not None
                and dotted.split(".")[-1] == "_delta_counter"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                sites.append(
                    (node.args[1].value, node.lineno, node.col_offset)
                )
        return sites

    @staticmethod
    def _class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None

    @staticmethod
    def _stats_counters(
        stats: ast.ClassDef,
    ) -> List[Tuple[str, int, int]]:
        counters = []
        for node in stats.body:
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and not node.target.id.startswith("_")
            ):
                counters.append(
                    (node.target.id, node.lineno, node.col_offset)
                )
        return counters

    @staticmethod
    def _stats_method_reads(
        stats: ast.ClassDef,
    ) -> Dict[str, Set[str]]:
        reads: Dict[str, Set[str]] = {}
        for node in stats.body:
            if isinstance(node, ast.FunctionDef):
                reads[node.name] = {
                    sub.attr
                    for sub in ast.walk(node)
                    if isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                }
        return reads

    @staticmethod
    def _fetchpath_counter_keys(
        tree: ast.Module,
    ) -> List[Tuple[str, int, int]]:
        keys = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "_fetchpath_counters"
            ):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Dict):
                        for key in sub.keys:
                            if isinstance(
                                key, ast.Constant
                            ) and isinstance(key.value, str):
                                keys.append(
                                    (
                                        key.value,
                                        key.lineno,
                                        key.col_offset,
                                    )
                                )
                        break
        return keys


# -- ANN006: plan nodes are constructed frozen --------------------------------


@register
class FrozenPlanNodeRule(Rule):
    code = "ANN006"
    title = (
        "plan nodes are constructed frozen — no post-hoc mutation "
        "outside optimizer rules"
    )
    rationale = (
        "The plan IR's contract is immutability: the optimizer "
        "rewrites logical trees with dataclasses.replace, lowering "
        "produces fresh stages, and the executor only reads — so a "
        "plan object can be shared, cached and fingerprinted safely. "
        "Assigning to a node attribute (directly, via setattr, or via "
        "object.__setattr__) after construction silently invalidates "
        "estimates, rule records and artifact keys.  Optimizer rule "
        "classes (name ending in 'Rule' or 'Optimizer') are the one "
        "sanctioned place for low-level node surgery."
    )

    _PLAN_MODULE = "repro.mediator.plan"
    _NODE_NAMES = {
        "Scan", "Filter", "ClosureFilter", "SemiJoin", "AntiJoin",
        "Reconcile", "Enrich", "Project", "LogicalPlan", "FetchStage",
        "StageNode", "PhysicalPlan", "RuleRecord", "RuleReport",
    }

    def check(self, module: SourceModule) -> List[Diagnostic]:
        origins = _import_map(module.tree)
        constructors = self._constructor_names(origins)
        if not constructors:
            return []
        exempt = self._exempt_spans(module.tree)
        node_vars = self._node_variables(module.tree, constructors)
        findings = []
        for node in ast.walk(module.tree):
            message = self._mutation(node, constructors, node_vars)
            if message is None:
                continue
            if any(
                start <= node.lineno <= end for start, end in exempt
            ):
                continue
            findings.append(
                Diagnostic(
                    module.path,
                    node.lineno,
                    node.col_offset,
                    self.code,
                    message,
                )
            )
        return findings

    def _constructor_names(
        self, origins: Dict[str, str]
    ) -> Dict[str, str]:
        """local name -> node class, for every way this module can
        reach a plan-node constructor (direct import, alias, or the
        plan module itself for ``plan.Scan(...)`` dotted calls)."""
        constructors: Dict[str, str] = {}
        for local, origin in origins.items():
            head, _, symbol = origin.rpartition(".")
            if head == self._PLAN_MODULE and symbol in self._NODE_NAMES:
                constructors[local] = symbol
            elif origin == self._PLAN_MODULE:
                for name in self._NODE_NAMES:
                    constructors[f"{local}.{name}"] = name
        return constructors

    @staticmethod
    def _exempt_spans(tree: ast.Module) -> List[Tuple[int, int]]:
        """Line spans of classes sanctioned to rewrite nodes in place
        (optimizer rule classes)."""
        spans = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and (
                node.name.endswith("Rule")
                or node.name.endswith("Optimizer")
            ):
                spans.append(
                    (
                        node.lineno,
                        max(
                            getattr(n, "end_lineno", None)
                            or getattr(n, "lineno", node.lineno)
                            for n in ast.walk(node)
                            if hasattr(n, "lineno")
                        ),
                    )
                )
        return spans

    @staticmethod
    def _node_variables(
        tree: ast.Module, constructors: Dict[str, str]
    ) -> Dict[str, str]:
        """variable name -> node class, for names bound from a
        plan-node constructor call anywhere in the module."""
        bound: Dict[str, str] = {}
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
            ):
                continue
            callee = _dotted(node.value.func)
            if callee is None or callee not in constructors:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound[target.id] = constructors[callee]
        return bound

    def _mutation(
        self,
        node: ast.AST,
        constructors: Dict[str, str],
        node_vars: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                klass = self._receiver_class(
                    target, constructors, node_vars
                )
                if klass is not None:
                    attr = (
                        target.attr
                        if isinstance(target, ast.Attribute)
                        else "?"
                    )
                    return (
                        f"assignment to {klass}.{attr} after "
                        "construction; build the node with the final "
                        "value or rewrite with dataclasses.replace"
                    )
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("setattr", "object.__setattr__") and node.args:
                receiver = node.args[0]
                klass = node_vars.get(_dotted(receiver) or "")
                if klass is None and isinstance(receiver, ast.Call):
                    callee = _dotted(receiver.func)
                    klass = (
                        constructors.get(callee) if callee else None
                    )
                if klass is not None:
                    return (
                        f"{dotted}() on a frozen {klass} node; rewrite "
                        "with dataclasses.replace instead"
                    )
        return None

    @staticmethod
    def _receiver_class(
        target: ast.AST,
        constructors: Dict[str, str],
        node_vars: Dict[str, str],
    ) -> Optional[str]:
        if not isinstance(target, ast.Attribute):
            return None
        receiver = target.value
        name = _dotted(receiver)
        if name is not None and name in node_vars:
            return node_vars[name]
        if isinstance(receiver, ast.Call):
            callee = _dotted(receiver.func)
            if callee is not None and callee in constructors:
                return constructors[callee]
        return None
