"""Command line front end: ``python -m repro.tools.lint [paths...]``.

Exit codes: 0 clean, 1 diagnostics reported, 2 usage error (unknown
rule code in ``--select``, nothing to lint).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.tools.lint.engine import (
    REGISTRY,
    collect_files,
    lint_paths,
    resolve_codes,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description=(
            "AST lint for the federation's invariants "
            "(ANN001..ANN005; see DESIGN §10)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help=(
            "also lint 'fixtures' directories (deliberate-violation "
            "corpora, excluded by default)"
        ),
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code in sorted(REGISTRY):
        rule = REGISTRY[code]
        lines.append(f"{code}  {rule.title}")
        if rule.rationale:
            lines.append(f"       {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    select = None
    if options.select:
        try:
            select = resolve_codes(options.select.split(","))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    files = collect_files(
        options.paths, include_fixtures=options.include_fixtures
    )
    if not files:
        print(
            f"error: no Python files under {' '.join(options.paths)}",
            file=sys.stderr,
        )
        return 2

    diagnostics = lint_paths(
        options.paths,
        select=select,
        include_fixtures=options.include_fixtures,
    )
    for diagnostic in diagnostics:
        print(diagnostic.render())
    if diagnostics:
        plural = "s" if len(diagnostics) != 1 else ""
        print(
            f"{len(diagnostics)} finding{plural} in "
            f"{len(files)} files checked",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
