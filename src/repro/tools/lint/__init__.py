"""AST lint enforcing the federation's invariants (DESIGN §10).

Importing this package registers the project rules; the public API is
re-exported from :mod:`repro.tools.lint.engine`.
"""

from repro.tools.lint.engine import (
    META_SYNTAX_ERROR,
    META_UNKNOWN_SUPPRESSION,
    REGISTRY,
    Diagnostic,
    Project,
    Rule,
    SourceModule,
    collect_files,
    known_codes,
    lint_file,
    lint_paths,
    lint_texts,
    register,
    resolve_codes,
)
from repro.tools.lint import rules as _rules  # noqa: F401  (registers rules)

__all__ = [
    "Diagnostic",
    "META_SYNTAX_ERROR",
    "META_UNKNOWN_SUPPRESSION",
    "Project",
    "REGISTRY",
    "Rule",
    "SourceModule",
    "collect_files",
    "known_codes",
    "lint_file",
    "lint_paths",
    "lint_texts",
    "register",
    "resolve_codes",
]
