"""AST lint enforcing the federation's invariants (DESIGN §10).

Importing this package registers the project rules; the public API is
re-exported from :mod:`repro.tools.lint.engine`.
"""

from repro.tools.lint.engine import (
    META_SYNTAX_ERROR,
    META_UNKNOWN_SUPPRESSION,
    REGISTRY,
    Diagnostic,
    Project,
    Rule,
    SourceModule,
    collect_files,
    known_codes,
    lint_file,
    lint_paths,
    lint_texts,
    register,
    resolve_codes,
)
from repro.tools.lint import rules as _rules  # noqa: F401  (registers rules)

# The interprocedural rules (ANN007..) live with the flow analyzer but
# share this registry, so --select validation and noqa spell-checking
# know them.  A plain ``import`` tolerates the circular package load
# (repro.tools.flow imports the engine above).
import repro.tools.flow.rules  # noqa: E402,F401  (registers flow rules)

__all__ = [
    "Diagnostic",
    "META_SYNTAX_ERROR",
    "META_UNKNOWN_SUPPRESSION",
    "Project",
    "REGISTRY",
    "Rule",
    "SourceModule",
    "collect_files",
    "known_codes",
    "lint_file",
    "lint_paths",
    "lint_texts",
    "register",
    "resolve_codes",
]
