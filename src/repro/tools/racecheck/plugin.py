"""pytest plugin wiring the race monitor around a test run.

Enable with::

    pytest tests/concurrency -p repro.tools.racecheck.plugin --racecheck

While active, every lock and shared-counter mapping created through
the :mod:`repro.util.locks` seam is instrumented.  After the run the
terminal summary carries a ``racecheck`` section; any lock-order cycle
or unsynchronized counter write turns a passing run into exit status 3
so CI cannot miss it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.tools.racecheck import RaceMonitor

#: Exit status used when tests pass but the sanitizer found races.
RACECHECK_EXIT = 3

_monitor: Optional[RaceMonitor] = None


def pytest_addoption(parser: Any) -> None:
    group = parser.getgroup("racecheck")
    group.addoption(
        "--racecheck",
        action="store_true",
        default=False,
        help=(
            "instrument repro.util.locks and fail the run on "
            "lock-order cycles or unsynchronized counter writes"
        ),
    )


def pytest_configure(config: Any) -> None:
    global _monitor
    if config.getoption("--racecheck"):
        _monitor = RaceMonitor()
        _monitor.install()


def pytest_sessionfinish(session: Any, exitstatus: int) -> None:
    if _monitor is None:
        return
    if int(exitstatus) == 0 and not _monitor.clean:
        session.exitstatus = RACECHECK_EXIT


def pytest_terminal_summary(
    terminalreporter: Any, exitstatus: int, config: Any
) -> None:
    if _monitor is None:
        return
    terminalreporter.section("racecheck")
    terminalreporter.write_line(_monitor.report())
    if not _monitor.clean:
        terminalreporter.write_line(
            "racecheck: FAILED (see findings above); "
            f"exit status forced to {RACECHECK_EXIT}"
        )


def pytest_unconfigure(config: Any) -> None:
    global _monitor
    if _monitor is not None:
        _monitor.uninstall()
        _monitor = None
