"""Concurrency sanitizer: lock-order graph + shared-counter audit.

The checker installs instrumented factories into the
:mod:`repro.util.locks` construction seam, so every mutex and shared
counter mapping the federation creates during a checked run is
observed without monkeypatching production code:

- each :class:`InstrumentedLock` records, on acquisition, one
  *ordering edge* from every lock the acquiring thread already holds;
  a cycle in that graph is a potential deadlock (two threads can
  interleave the cyclic acquisitions and block forever), reported with
  the stack of the first acquisition that created each edge;
- each :class:`AuditedCounters` mapping records every write together
  with the writing thread and whether the owning lock was held; a
  counter written by two or more threads with at least one write
  outside its lock is an unsynchronized shared-counter mutation.

Use via the pytest plugin::

    pytest tests/concurrency -p repro.tools.racecheck.plugin --racecheck

or programmatically: ``monitor = RaceMonitor(); monitor.install()``,
run the workload, ``monitor.uninstall()``, inspect
``monitor.lock_cycles()`` / ``monitor.counter_violations()`` /
``monitor.report()``.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.util import locks as lockseam

__all__ = [
    "AuditedCounters",
    "InstrumentedLock",
    "RaceMonitor",
]

#: Stack frames kept per recorded site (acquisition edge or counter
#: write); enough to see the caller chain without drowning the report.
_STACK_DEPTH = 14


def _site_stack() -> str:
    frames = traceback.extract_stack()[:-2][-_STACK_DEPTH:]
    return "".join(traceback.format_list(frames)).rstrip()


class InstrumentedLock:
    """A ``threading.Lock`` stand-in that reports to a monitor."""

    def __init__(self, label: str, monitor: "RaceMonitor") -> None:
        self.label = label
        # The instrumented lock IS the seam's product; allocating it
        # through new_lock() would recurse forever.
        self._inner = threading.Lock()  # annoda: noqa=ANN008 -- seam internals
        self._monitor = monitor
        self._owner: Optional[int] = None
        monitor._register_lock(self)

    # -- lock protocol ----------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._monitor._on_acquire(self)
        return acquired

    def release(self) -> None:
        self._monitor._on_release(self)
        self._owner = None
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"InstrumentedLock({self.label!r})"


class AuditedCounters(dict):
    """A counter mapping that audits writes against its owning lock."""

    def __init__(
        self,
        initial: Dict[str, int],
        lock: Any,
        owner: str,
        monitor: "RaceMonitor",
    ) -> None:
        super().__init__(initial)
        self.owner = owner
        self._lock = lock
        self._monitor = monitor

    def _lock_held(self) -> bool:
        if isinstance(self._lock, InstrumentedLock):
            return self._lock.held_by_current_thread()
        locked = getattr(self._lock, "locked", None)
        return bool(locked()) if callable(locked) else False

    def __setitem__(self, key: str, value: int) -> None:
        self._monitor._on_counter_write(self, key, self._lock_held())
        super().__setitem__(key, value)

    def update(self, *args: Any, **kwargs: Any) -> None:  # type: ignore[override]
        self._monitor._on_counter_write(self, "<update>", self._lock_held())
        super().update(*args, **kwargs)

    def __delitem__(self, key: str) -> None:
        self._monitor._on_counter_write(self, key, self._lock_held())
        super().__delitem__(key)


class RaceMonitor:
    """Collects lock-order edges and counter-write audits for one run."""

    def __init__(self) -> None:
        # The monitor's own guard is a *plain* lock, invisible to the
        # graph it maintains (self-instrumentation would deadlock the
        # reporting path).
        self._guard = threading.Lock()  # annoda: noqa=ANN008 -- monitor guard
        self._tls = threading.local()
        self._locks: Dict[int, str] = {}
        # (held lock id, acquired lock id) -> (labels, first stack)
        self._edges: Dict[Tuple[int, int], Tuple[str, str, str]] = {}
        self._acquisitions = 0
        # id(counters) -> state
        self._counters: Dict[int, Dict[str, Any]] = {}
        self._installed: Optional[
            Tuple[lockseam.LockFactory, lockseam.CounterFactory]
        ] = None

    # -- seam wiring ------------------------------------------------------

    def install(self) -> None:
        """Install instrumented factories into the lock seam."""
        if self._installed is not None:
            raise RuntimeError("race monitor already installed")
        self._installed = lockseam.install(
            lock_factory=lambda label: InstrumentedLock(label, self),
            counter_factory=lambda initial, lock, owner: AuditedCounters(
                initial, lock, owner, self
            ),
        )

    def uninstall(self) -> None:
        if self._installed is not None:
            lockseam.restore(self._installed)
            self._installed = None

    # -- event intake (called by the instruments) -------------------------

    def _register_lock(self, lock: InstrumentedLock) -> None:
        with self._guard:
            self._locks[id(lock)] = lock.label

    def _held_stack(self) -> List[InstrumentedLock]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _on_acquire(self, lock: InstrumentedLock) -> None:
        held = self._held_stack()
        new_edges = [
            (id(previous), id(lock), previous.label, lock.label)
            for previous in held
            if previous is not lock
        ]
        held.append(lock)
        if not new_edges:
            with self._guard:
                self._acquisitions += 1
            return
        stack = None
        with self._guard:
            self._acquisitions += 1
            for source, target, source_label, target_label in new_edges:
                if (source, target) not in self._edges:
                    if stack is None:
                        stack = _site_stack()
                    self._edges[(source, target)] = (
                        source_label,
                        target_label,
                        stack,
                    )

    def _on_release(self, lock: InstrumentedLock) -> None:
        held = self._held_stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is lock:
                del held[index]
                break

    def _on_counter_write(
        self, counters: AuditedCounters, key: str, locked: bool
    ) -> None:
        ident = threading.get_ident()
        with self._guard:
            state = self._counters.get(id(counters))
            if state is None:
                state = {
                    "owner": counters.owner,
                    "threads": set(),
                    "unlocked": 0,
                    "writes": 0,
                    "unlocked_sample": None,
                }
                self._counters[id(counters)] = state
            state["writes"] += 1
            state["threads"].add(ident)
            if not locked:
                state["unlocked"] += 1
                if state["unlocked_sample"] is None:
                    state["unlocked_sample"] = (key, _site_stack())

    # -- analysis ---------------------------------------------------------

    def lock_cycles(self) -> List[List[str]]:
        """Cycles in the lock-order graph, as label chains.

        A cycle ``A -> B -> A`` means one thread acquired B while
        holding A and another (or the same code path elsewhere)
        acquired A while holding B: the interleaving where each holds
        its first lock deadlocks.
        """
        with self._guard:
            edges = dict(self._edges)
            labels = dict(self._locks)
        graph: Dict[int, Set[int]] = {}
        for source, target in edges:
            graph.setdefault(source, set()).add(target)

        cycles: List[List[str]] = []
        seen_cycles: Set[Tuple[int, ...]] = set()
        visiting: List[int] = []
        on_path: Set[int] = set()
        done: Set[int] = set()

        def visit(node: int) -> None:
            visiting.append(node)
            on_path.add(node)
            for successor in sorted(graph.get(node, ())):
                if successor in on_path:
                    start = visiting.index(successor)
                    cycle = visiting[start:] + [successor]
                    key = tuple(sorted(set(cycle)))
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(
                            [labels.get(n, f"<lock {n}>") for n in cycle]
                        )
                elif successor not in done:
                    visit(successor)
            on_path.discard(node)
            visiting.pop()
            done.add(node)

        for node in sorted(graph):
            if node not in done:
                visit(node)
        return cycles

    def counter_violations(self) -> List[Dict[str, Any]]:
        """Counters mutated by several threads with unlocked writes."""
        with self._guard:
            states = [dict(state) for state in self._counters.values()]
        violations = []
        for state in states:
            if len(state["threads"]) >= 2 and state["unlocked"] > 0:
                violations.append(state)
        return violations

    def edge_report(self) -> List[str]:
        with self._guard:
            edges = list(self._edges.values())
        return sorted(
            f"{source} -> {target}" for source, target, _ in edges
        )

    def report(self) -> str:
        """Human-readable summary with stacks for every finding."""
        with self._guard:
            lock_count = len(self._locks)
            acquisitions = self._acquisitions
            edge_count = len(self._edges)
            write_count = sum(
                state["writes"] for state in self._counters.values()
            )
            edges = dict(self._edges)
        cycles = self.lock_cycles()
        violations = self.counter_violations()

        lines = [
            f"racecheck: {lock_count} locks, {acquisitions} acquisitions, "
            f"{edge_count} ordering edges, {write_count} counter writes",
        ]
        if not cycles:
            lines.append("lock-order cycles: none")
        else:
            lines.append(f"lock-order cycles: {len(cycles)}")
            for cycle in cycles:
                lines.append("  cycle: " + " -> ".join(cycle))
                for (labels_stack) in edges.values():
                    source, target, stack = labels_stack
                    if source in cycle and target in cycle:
                        lines.append(
                            f"    edge {source} -> {target} first taken at:"
                        )
                        lines.extend(
                            "      " + frame
                            for frame in stack.splitlines()
                        )
        if not violations:
            lines.append("unsynchronized counter writes: none")
        else:
            lines.append(
                f"unsynchronized counter writes: {len(violations)}"
            )
            for state in violations:
                lines.append(
                    f"  {state['owner']}: {state['writes']} writes from "
                    f"{len(state['threads'])} threads, "
                    f"{state['unlocked']} without the owning lock"
                )
                sample = state["unlocked_sample"]
                if sample is not None:
                    key, stack = sample
                    lines.append(
                        f"    first unlocked write (key {key!r}) at:"
                    )
                    lines.extend(
                        "      " + frame for frame in stack.splitlines()
                    )
        return "\n".join(lines)

    @property
    def clean(self) -> bool:
        return not self.lock_cycles() and not self.counter_violations()
