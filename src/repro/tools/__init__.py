"""Project-specific correctness tooling.

Two machine-checkers turn the federation's conventions into enforced
invariants (DESIGN §10):

- :mod:`repro.tools.lint` — an AST linter with project rules
  (``ANN001``..``ANN005``) run as
  ``python -m repro.tools.lint src tests benchmarks``;
- :mod:`repro.tools.racecheck` — a concurrency sanitizer (lock-order
  graph + shared-counter audit) enabled on a pytest run with
  ``-p repro.tools.racecheck.plugin --racecheck``.

Nothing under ``repro.tools`` is imported by production code; the only
coupling is the :mod:`repro.util.locks` construction seam the race
checker instruments.
"""
