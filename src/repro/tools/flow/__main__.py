"""``python -m repro.tools.flow`` — the flow analyzer CLI."""

from repro.tools.flow.cli import main

raise SystemExit(main())
