"""Whole-program flow analysis for the federation (DESIGN §15).

Where :mod:`repro.tools.lint` pattern-matches one file at a time, this
package parses the whole project into a symbol table and approximate
call graph (:mod:`repro.tools.flow.graph`) and checks the invariants
that only exist *between* modules: budget threading from the service
front-end to the wrapper boundary (ANN007), construction-seam bypasses
(ANN008), lock-guard consistency (ANN009) and span exception safety
(ANN010).  Importing this package registers the rules in the shared
lint registry, so codes, ``--select`` and ``noqa`` suppressions
compose across both tools.
"""

from repro.tools.flow import rules as _rules  # noqa: F401  (registers rules)
from repro.tools.flow.baseline import (
    load_baseline,
    partition,
    save_baseline,
)
from repro.tools.flow.graph import (
    CallSite,
    ClassInfo,
    ExternalCall,
    FlowProject,
    FunctionInfo,
)
from repro.tools.flow.runner import (
    analyze_paths,
    analyze_texts,
    interprocedural_codes,
)

__all__ = [
    "CallSite",
    "ClassInfo",
    "ExternalCall",
    "FlowProject",
    "FunctionInfo",
    "analyze_paths",
    "analyze_texts",
    "interprocedural_codes",
    "load_baseline",
    "partition",
    "save_baseline",
]
