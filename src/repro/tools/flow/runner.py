"""Entry points shared by the CLI and the rule tests."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.tools.flow.graph import FlowProject
from repro.tools.lint.engine import (
    META_SYNTAX_ERROR,
    REGISTRY,
    Diagnostic,
    SourceModule,
    apply_suppressions,
    collect_files,
)


def interprocedural_codes() -> Set[str]:
    """The registered whole-program rule codes (ANN007..)."""
    return {
        code
        for code, rule in REGISTRY.items()
        if getattr(rule, "interprocedural", False)
    }


def analyze_texts(
    sources: Iterable[Tuple[str, str]],
    select: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Run the interprocedural rules over ``(path, text)`` pairs.

    Mirrors :func:`repro.tools.lint.engine.lint_texts`: unparsable
    files become ``ANN901`` diagnostics, line-level ``noqa``
    suppressions are honoured (unknown-code policing is left to the
    per-file lint so the two CI gates do not double-report).
    """
    modules: List[SourceModule] = []
    diagnostics: List[Diagnostic] = []
    for path, text in sources:
        try:
            modules.append(SourceModule(path, text))
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    path,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    META_SYNTAX_ERROR,
                    f"cannot parse file: {exc.msg}",
                )
            )
    project = FlowProject(modules)
    raw: List[Diagnostic] = []
    for code in sorted(interprocedural_codes()):
        if select is not None and code not in select:
            continue
        raw.extend(REGISTRY[code].analyze(project))
    diagnostics.extend(
        apply_suppressions(modules, raw, check_unknown=False)
    )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return diagnostics


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
    include_fixtures: bool = False,
) -> List[Diagnostic]:
    """Analyze every Python file under ``paths`` as one project."""
    files = collect_files(paths, include_fixtures=include_fixtures)
    sources = [
        (file_path, Path(file_path).read_text(encoding="utf-8"))
        for file_path in files
    ]
    return analyze_texts(sources, select=select)
