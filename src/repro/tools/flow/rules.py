"""The interprocedural rules (ANN007–ANN010, DESIGN §15).

Each rule registers in the shared lint registry — so ``--select``
validation, ``noqa`` spell-checking and code listings compose with the
per-file rules — but produces findings only under the whole-program
analyzer: the per-file entry points see ``check``/``finish`` no-ops,
and ``python -m repro.tools.flow`` calls :meth:`analyze` with a
:class:`~repro.tools.flow.graph.FlowProject`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.tools.flow.graph import (
    ClassInfo,
    FlowProject,
    FunctionInfo,
)
from repro.tools.lint.engine import Diagnostic, Rule, register

#: Entry points a request budget is born at: every path from here to
#: the wrapper boundary must keep the budget threaded.
BUDGET_ROOTS: Tuple[Tuple[str, str, str], ...] = (
    ("repro.core.annoda", "Annoda", "ask"),
    ("repro.service.server", "AnnodaService", "_handle"),
)

#: The construction seams; direct stdlib calls outside them blind
#: FakeClock, the racecheck harness and deterministic replay.
SEAM_MODULES = (
    "repro.util.clock",
    "repro.util.locks",
    "repro.util.rng",
    "repro.util.timer",
)

#: Stdlib calls ANN008 bans outside the seam modules.  Note
#: ``time.perf_counter`` stays allowed: it is the seam's own backend
#: and harmless for answer-affecting code (ANN003 handles wall-clock
#: reads in answer paths).
SEAM_BANNED = {
    "time.sleep",
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "threading.Lock",
    "threading.RLock",
}


class FlowRule(Rule):
    """Base for whole-program rules: per-file hooks are no-ops."""

    interprocedural = True

    def analyze(self, project: FlowProject) -> List[Diagnostic]:
        raise NotImplementedError


def _reads_attribute(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(child, ast.Attribute) and child.attr == name
        for child in ast.walk(node)
    )


def _init_stores_budget(cls: ClassInfo) -> bool:
    init = cls.methods.get("__init__")
    if init is None:
        return False
    for node in ast.walk(init.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in ("budget", "_budget")
                ):
                    return True
    return False


@register
class BudgetThreading(FlowRule):
    """ANN007: no call path from a request root to the wrapper
    boundary may silently drop the ``RequestBudget``."""

    code = "ANN007"
    title = "request budget dropped on a federation call path"
    rationale = (
        "a deadline only degrades a request if every layer hands the "
        "budget down; one call site that forgets budget= silently "
        "detaches everything below it from the deadline"
    )

    def analyze(self, project: FlowProject) -> List[Diagnostic]:
        roots = self._roots(project)
        # Typed edges only: both entry points are roots themselves, and
        # the genuine budget chain resolves precisely — name-only
        # fallback edges (e.g. a regex ``.search`` matching some class)
        # would drag unrelated code into "root-reachable".
        parents = project.reachable(sorted(roots), max_fallback_arity=0)
        diagnostics: List[Diagnostic] = []
        reported: Set[Tuple[str, int, str]] = set()
        for function in project.functions.values():
            bearing = self._bearing(project, function, roots)
            for edge in project.out_edges.get(function.qualname, ()):
                if edge.kind not in ("call", "construct"):
                    continue
                if "budget" in edge.keywords or edge.has_star_kwargs:
                    continue
                accepts = self._accepts_budget(project, edge)
                if accepts is None:
                    continue
                if bearing:
                    key = (edge.path, edge.line, edge.callee)
                    if key in reported:
                        continue
                    reported.add(key)
                    diagnostics.append(
                        self._drop_diagnostic(
                            project, parents, function, edge, accepts
                        )
                    )
                elif (
                    edge.kind == "construct"
                    and edge.callee == "repro.mediator.fetch.FetchRequest"
                    and function.qualname in parents
                ):
                    # The hole case: a fetch issued on a root-reachable
                    # path by a function no budget ever reached.
                    key = (edge.path, edge.line, edge.callee)
                    if key in reported:
                        continue
                    reported.add(key)
                    path = project.render_path(
                        parents, function.qualname
                    )
                    diagnostics.append(
                        Diagnostic(
                            edge.path, edge.line, edge.col, self.code,
                            f"FetchRequest issued without a budget on "
                            f"the federation path {path}: no budget= "
                            f"reaches {function.short} to forward",
                        )
                    )
        return diagnostics

    def _drop_diagnostic(
        self,
        project: FlowProject,
        parents: Dict,
        function: FunctionInfo,
        edge,
        accepts: str,
    ) -> Diagnostic:
        callee_info = project.functions.get(edge.callee)
        callee_name = (
            callee_info.short
            if callee_info is not None
            else edge.callee.rsplit(".", 1)[-1]
        )
        if function.qualname in parents:
            location = (
                f"path "
                f"{project.render_path(parents, function.qualname)}"
            )
        else:
            location = f"in {function.short}"
        return Diagnostic(
            edge.path, edge.line, edge.col, self.code,
            f"call to {callee_name} drops the request budget "
            f"({accepts} accepts budget= but the call, {location}, "
            f"does not pass it)",
        )

    def _roots(self, project: FlowProject) -> Set[str]:
        roots: Set[str] = set()
        for module, class_name, method in BUDGET_ROOTS:
            qualname = f"{module}.{class_name}.{method}"
            if qualname in project.functions:
                roots.add(qualname)
        return roots

    def _bearing(
        self,
        project: FlowProject,
        function: FunctionInfo,
        roots: Set[str],
    ) -> bool:
        """Does ``function`` have a budget in hand to forward?"""
        if function.qualname in roots:
            return True
        if "budget" in function.params:
            return True
        if function.owner is not None:
            owner = project.classes.get(function.owner)
            if owner is not None and _init_stores_budget(owner):
                return True
        return _reads_attribute(function.node, "budget")

    def _accepts_budget(self, project: FlowProject, edge) -> Optional[str]:
        """Name of the budget-accepting callee, or None."""
        if edge.kind == "construct":
            cls = project.classes.get(edge.callee)
            if cls is None:
                return None
            if "budget" in cls.fields:
                return cls.name
            init = cls.methods.get("__init__")
            if init is not None and "budget" in init.params:
                return cls.name
            return None
        callee = project.functions.get(edge.callee)
        if callee is not None and "budget" in callee.params:
            return callee.short
        return None


@register
class SeamBypass(FlowRule):
    """ANN008: stdlib time/locking/randomness outside the seams."""

    code = "ANN008"
    title = "construction seam bypassed with a direct stdlib call"
    rationale = (
        "time.sleep/time.time/threading.Lock()/random.* outside "
        "repro.util.{clock,locks,rng,timer} make FakeClock, the "
        "racecheck harness and deterministic replay blind"
    )

    def analyze(self, project: FlowProject) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for call in project.external_calls:
            if call.module in SEAM_MODULES:
                continue
            banned = call.dotted in SEAM_BANNED or (
                call.dotted.startswith("random.")
            )
            if not banned:
                continue
            seam = {
                "time": "repro.util.clock",
                "threading": "repro.util.locks",
                "random": "repro.util.rng",
            }[call.dotted.split(".")[0]]
            diagnostics.append(
                Diagnostic(
                    call.path, call.line, call.col, self.code,
                    f"direct {call.dotted} call bypasses the "
                    f"construction seam; route it through {seam}",
                )
            )
        return diagnostics


@register
class LockGuardConsistency(FlowRule):
    """ANN009: an attribute written under a lock in one method must
    never be touched lock-free elsewhere in the class (RacerD-style
    guard inference from allocation sites and naming)."""

    code = "ANN009"
    title = "guarded attribute accessed without its lock"
    rationale = (
        "if one method takes the lock to write an attribute, a "
        "lock-free read elsewhere is a data race the schedule just "
        "has not lost yet (this is how the mediator cache race "
        "escaped review)"
    )

    #: Methods exempt from the check: construction happens before the
    #: object is shared, and the ``_locked`` suffix is the project's
    #: caller-holds-the-lock convention.
    _EXEMPT = ("__init__", "__post_init__", "__new__", "__del__")

    def analyze(self, project: FlowProject) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for cls in project.classes.values():
            diagnostics.extend(self._check_class(project, cls))
        return diagnostics

    def _check_class(
        self, project: FlowProject, cls: ClassInfo
    ) -> List[Diagnostic]:
        guards = self._guard_attrs(project, cls)
        if not guards:
            return []
        # (attr, method, is_write, guards_held, line, col)
        accesses: List[Tuple[str, str, bool, frozenset, int, int]] = []
        for name, method in cls.methods.items():
            if name in self._EXEMPT or name.endswith("_locked"):
                continue
            for node, held in _walk_guarded(method.node, guards):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr not in guards
                    and not node.attr.startswith("__")
                ):
                    continue
                accesses.append((
                    node.attr,
                    name,
                    isinstance(node.ctx, (ast.Store, ast.Del)),
                    held,
                    node.lineno,
                    node.col_offset,
                ))
        protected: Dict[str, Tuple[str, str]] = {}
        for attr, method, is_write, held, _, _ in accesses:
            if is_write and held and attr not in protected:
                protected[attr] = (sorted(held)[0], method)
        diagnostics = []
        seen: Set[Tuple[str, int]] = set()
        for attr, method, is_write, held, line, col in accesses:
            if attr not in protected or held:
                continue
            guard, writer = protected[attr]
            key = (attr, line)
            if key in seen:
                continue
            seen.add(key)
            action = "written" if is_write else "read"
            diagnostics.append(
                Diagnostic(
                    cls.path, line, col, self.code,
                    f"{cls.name}.{attr} is written under self.{guard} "
                    f"in {writer}() but {action} lock-free in "
                    f"{method}()",
                )
            )
        return diagnostics

    def _guard_attrs(
        self, project: FlowProject, cls: ClassInfo
    ) -> Set[str]:
        """Lock-holding attributes: allocation sites + lockish names."""
        guards: Set[str] = set()
        scope = project.scopes.get(cls.module, {})
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if _is_lockish(target.attr):
                        guards.add(target.attr)
                    elif isinstance(node.value, ast.Call):
                        dotted = _call_dotted(node.value, scope)
                        if dotted in (
                            "repro.util.locks.new_lock",
                            "threading.Lock",
                            "threading.RLock",
                            "threading.Condition",
                        ):
                            guards.add(target.attr)
        return guards


@register
class SpanExceptionSafety(FlowRule):
    """ANN010: every manually opened span must be provably closed on
    all paths (``with recorder.span(...)`` never has this problem)."""

    code = "ANN010"
    title = "open_span without a guaranteed close_span"
    rationale = (
        "a span leaked on an exception path corrupts the trace tree "
        "for the whole request; manual open_span is only safe under "
        "try/finally, an __enter__/__exit__ pair, or the fetcher's "
        "close-on-BaseException-then-close idiom"
    )

    def analyze(self, project: FlowProject) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for function in project.functions.values():
            if function.name == "open_span":
                continue
            diagnostics.extend(self._check_function(project, function))
        return diagnostics

    def _check_function(
        self, project: FlowProject, function: FunctionInfo
    ) -> List[Diagnostic]:
        calls = [
            node
            for node in ast.walk(function.node)
            if isinstance(node, ast.Call)
            and _callee_name(node) == "open_span"
        ]
        if not calls:
            return []
        if self._enter_exit_pair(project, function):
            return []
        parent_of = _parent_map(function.node)
        diagnostics = []
        for call in calls:
            if not self._call_is_safe(call, parent_of):
                diagnostics.append(
                    Diagnostic(
                        function.path, call.lineno, call.col_offset,
                        self.code,
                        f"open_span in {function.short} has no "
                        f"guaranteed close_span (use with "
                        f"recorder.span(...), try/finally, or close "
                        f"on BaseException and re-raise plus an "
                        f"unconditional close)",
                    )
                )
        return diagnostics

    def _enter_exit_pair(
        self, project: FlowProject, function: FunctionInfo
    ) -> bool:
        """``__enter__`` opening a span is safe when the class's
        ``__exit__`` closes one."""
        if function.name != "__enter__" or function.owner is None:
            return False
        owner = project.classes.get(function.owner)
        if owner is None:
            return False
        exit_method = owner.methods.get("__exit__")
        if exit_method is None:
            return False
        return any(
            isinstance(node, ast.Call)
            and _callee_name(node) == "close_span"
            for node in ast.walk(exit_method.node)
        )

    def _call_is_safe(self, call: ast.Call, parent_of: Dict) -> bool:
        # Safe shape 1: any enclosing try whose finally closes a span.
        node = call
        while node in parent_of:
            node = parent_of[node]
            if isinstance(node, ast.Try) and any(
                _contains_close_span(final) for final in node.finalbody
            ):
                return True
        # The remaining shapes require the handle to be captured:
        # span = recorder.open_span(...)
        statement = call
        while statement in parent_of and not isinstance(
            statement, ast.stmt
        ):
            statement = parent_of[statement]
        if not isinstance(statement, ast.Assign):
            return False
        block = parent_of.get(statement)
        body = getattr(block, "body", None)
        if not isinstance(body, list) or statement not in body:
            for attr in ("body", "orelse", "finalbody"):
                candidate = getattr(block, attr, None)
                if isinstance(candidate, list) and statement in candidate:
                    body = candidate
                    break
        if not isinstance(body, list) or statement not in body:
            return False
        following = body[body.index(statement) + 1:]
        for index, sibling in enumerate(following):
            if not isinstance(sibling, ast.Try):
                continue
            # Safe shape 2: try/finally with a close.
            if any(
                _contains_close_span(final)
                for final in sibling.finalbody
            ):
                return True
            # Safe shape 3 (the fetcher idiom): a handler that closes
            # the span and re-raises, plus an unconditional close
            # after the try.
            reraising_close = any(
                _contains_close_span(handler)
                and any(
                    isinstance(inner, ast.Raise)
                    for inner in ast.walk(handler)
                )
                for handler in sibling.handlers
            )
            if reraising_close and any(
                _contains_close_span(later)
                for later in following[index + 1:]
            ):
                return True
        return False


def _is_lockish(name: str) -> bool:
    lowered = name.lower()
    return any(part in lowered for part in ("lock", "mutex", "guard"))


def _call_dotted(
    call: ast.Call, scope: Dict[str, str]
) -> Optional[str]:
    """The scope-resolved dotted name of a call's target."""
    func = call.func
    if isinstance(func, ast.Name):
        return scope.get(func.id, func.id)
    if isinstance(func, ast.Attribute) and isinstance(
        func.value, ast.Name
    ):
        base = scope.get(func.value.id, func.value.id)
        return f"{base}.{func.attr}"
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _contains_close_span(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Call)
        and _callee_name(child) == "close_span"
        for child in ast.walk(node)
    )


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _walk_guarded(
    root: ast.AST, guards: Set[str]
) -> Iterable[Tuple[ast.AST, frozenset]]:
    """Yield ``(node, held-guards)`` pairs under a method body.

    ``with self.<guard>:`` (attribute or call form, as in
    ``with self._fetch_mutex():``) adds the guard for its body; nested
    function bodies run later — possibly on another thread — so they
    restart with nothing held.
    """

    def visit(node: ast.AST, held: frozenset):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            held = frozenset()
        acquired = held
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in guards
                ):
                    acquired = acquired | {expr.attr}
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    yield sub, held
                if item.optional_vars is not None:
                    yield item.optional_vars, held
            for child in node.body:
                yield from visit(child, acquired)
            return
        yield node, held
        for child in ast.iter_child_nodes(node):
            yield from visit(child, held)

    for statement in getattr(root, "body", []):
        yield from visit(statement, frozenset())
