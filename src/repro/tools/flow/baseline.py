"""Baseline files: land a strict rule set without blocking the world.

A baseline records the findings that existed when the gate was wired
up; CI then fails only on *new* findings.  Entries are keyed on
``(path, code, message)`` — deliberately not the line number, so
unrelated edits shifting a file do not resurrect baselined findings —
and expire automatically: a baseline entry that no longer matches any
current finding is reported as stale so it can be removed (by
re-running with ``--update-baseline``).

The committed project baseline (``.flow-baseline.json``) is empty:
every pre-existing violation was fixed when the analyzer landed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.tools.lint.engine import Diagnostic

#: Bump when the fingerprint shape changes.
BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def fingerprint(diagnostic: Diagnostic) -> Fingerprint:
    return (diagnostic.path, diagnostic.code, diagnostic.message)


def load_baseline(path: str) -> Set[Fingerprint]:
    """The fingerprints in ``path``; a missing file is an empty
    baseline (the common fresh-checkout case)."""
    file = Path(path)
    if not file.exists():
        return set()
    payload = json.loads(file.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {payload.get('version')!r}; "
            f"this analyzer writes version {BASELINE_VERSION}"
        )
    return {
        (entry["path"], entry["code"], entry["message"])
        for entry in payload.get("findings", [])
    }


def save_baseline(path: str, diagnostics: Iterable[Diagnostic]) -> int:
    """Write the current findings as the new baseline; returns the
    entry count."""
    entries = sorted(
        {fingerprint(diagnostic) for diagnostic in diagnostics}
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": entry[0], "code": entry[1], "message": entry[2]}
            for entry in entries
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def partition(
    diagnostics: Iterable[Diagnostic], baseline: Set[Fingerprint]
) -> Tuple[List[Diagnostic], List[Fingerprint]]:
    """Split findings against a baseline.

    Returns ``(new, stale)``: findings not in the baseline (these fail
    the gate) and baseline entries no current finding matches (these
    expired — the underlying issue was fixed)."""
    new: List[Diagnostic] = []
    matched: Set[Fingerprint] = set()
    for diagnostic in diagnostics:
        key = fingerprint(diagnostic)
        if key in baseline:
            matched.add(key)
        else:
            new.append(diagnostic)
    stale = sorted(baseline - matched)
    return new, stale
