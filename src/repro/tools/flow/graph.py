"""Project-wide symbol table and approximate call graph.

The flow analyzer parses every file once (reusing the lint engine's
:class:`~repro.tools.lint.engine.SourceModule`, so ``noqa`` and
``module=`` directives mean the same thing) and builds:

- a **symbol table**: every top-level class and function, every
  method, with parameters, decorators and dataclass fields;
- per-module **scopes**: local name -> dotted target, from ``import``
  statements anywhere in the file (function-local imports included —
  the mediator imports lazily to break cycles) plus local defs;
- an **approximate call graph**: one :class:`CallSite` per resolvable
  call expression, attributed to the enclosing function.

Resolution is deliberately heuristic — this is a linter, not a type
checker.  A call is resolved, in order of preference, by:

1. direct names (``helper()``) through the module scope;
2. ``self.method()`` through the owning class and its project bases;
3. ``ClassName.method()`` / ``module.function()`` through the scope;
4. ``self._attr.method()`` through attribute types inferred from
   ``self._attr = ClassName(...)`` assignments;
5. ``var.method()`` through local ``var = ClassName(...)`` inference;
6. a class-hierarchy fallback: every project class defining a method
   of that name (marked ``fallback`` with its candidate ``arity``, so
   rules can demand precision where it matters).

``threading.Thread(target=f)`` and ``pool.submit(f, ...)`` produce
``target`` edges, so work handed to other threads stays reachable.
Calls into the ``time``/``threading``/``random`` standard-library
modules resolve to *external* sites — the seam-bypass rule's input.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.tools.lint.engine import SourceModule

#: Standard-library roots tracked as external call targets.
EXTERNAL_ROOTS = ("time", "threading", "random")


@dataclass
class FunctionInfo:
    """One function or method in the symbol table."""

    qualname: str
    module: str
    name: str
    owner: Optional[str]  # owning class qualname, None for module level
    path: str
    line: int
    node: ast.AST
    params: Tuple[str, ...]
    has_kwargs: bool
    decorators: Tuple[str, ...]

    @property
    def short(self) -> str:
        """``Class.method`` / ``module.function`` for path rendering."""
        if self.owner is not None:
            return f"{self.owner.rsplit('.', 1)[-1]}.{self.name}"
        return f"{self.module.rsplit('.', 1)[-1]}.{self.name}"


@dataclass
class ClassInfo:
    """One class: methods, inferred attribute types, dataclass fields."""

    qualname: str
    module: str
    name: str
    path: str
    line: int
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.X = ClassName(...)`` -> class qualname (any method).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Class-body annotated assignments (dataclass fields).
    fields: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CallSite:
    """One resolved call expression.

    ``kind`` is ``"call"`` (function/method), ``"construct"`` (class
    instantiation — the callee is the class qualname), ``"target"``
    (a callable handed to a thread or pool) or ``"external"`` (a
    dotted standard-library call such as ``time.sleep``).
    """

    caller: str
    callee: str
    kind: str
    path: str
    line: int
    col: int
    keywords: Tuple[str, ...] = ()
    has_star_kwargs: bool = False
    fallback: bool = False
    #: Number of candidate targets the fallback resolution had; 1 for
    #: precisely resolved sites.
    arity: int = 1


@dataclass(frozen=True)
class ExternalCall:
    """A call into a tracked stdlib module, wherever it appears."""

    module: str  # logical module name of the *calling* file
    dotted: str  # e.g. "time.sleep"
    path: str
    line: int
    col: int


class FlowProject:
    """The whole-program view the interprocedural rules analyze."""

    def __init__(self, modules: Iterable[SourceModule]) -> None:
        self.modules: List[SourceModule] = list(modules)
        self.module_names: Set[str] = {
            module.module_name for module in self.modules
        }
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self.scopes: Dict[str, Dict[str, str]] = {}
        self.out_edges: Dict[str, List[CallSite]] = {}
        self.external_calls: List[ExternalCall] = []
        for module in self.modules:
            self._index_module(module)
        # Attribute types need every class indexed first.
        self._infer_attr_types()
        for module in self.modules:
            self._extract_calls(module)

    # -- symbol table --------------------------------------------------------

    def _index_module(self, module: SourceModule) -> None:
        scope: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    scope[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    scope[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(module, node, owner=None)
                self.functions[info.qualname] = info
                scope[node.name] = info.qualname
            elif isinstance(node, ast.ClassDef):
                info = self._class_info(module, node)
                self.classes[info.qualname] = info
                self.classes_by_name.setdefault(info.name, []).append(info)
                scope[node.name] = info.qualname
                for method in info.methods.values():
                    self.functions[method.qualname] = method
                    self.methods_by_name.setdefault(
                        method.name, []
                    ).append(method)
        self.scopes[module.module_name] = scope

    def _function_info(
        self,
        module: SourceModule,
        node: ast.AST,
        owner: Optional[str],
    ) -> FunctionInfo:
        args = node.args
        params = tuple(
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            )
        )
        qual_owner = owner if owner is not None else module.module_name
        return FunctionInfo(
            qualname=f"{qual_owner}.{node.name}",
            module=module.module_name,
            name=node.name,
            owner=owner,
            path=module.path,
            line=node.lineno,
            node=node,
            params=params,
            has_kwargs=args.kwarg is not None,
            decorators=tuple(
                _dotted(decorator) or ""
                for decorator in node.decorator_list
            ),
        )

    def _class_info(
        self, module: SourceModule, node: ast.ClassDef
    ) -> ClassInfo:
        qualname = f"{module.module_name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module=module.module_name,
            name=node.name,
            path=module.path,
            line=node.lineno,
            node=node,
            bases=tuple(
                dotted
                for dotted in (_dotted(base) for base in node.bases)
                if dotted
            ),
        )
        fields: List[str] = []
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = self._function_info(
                    module, item, owner=qualname
                )
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                fields.append(item.target.id)
        info.fields = tuple(fields)
        return info

    def _infer_attr_types(self) -> None:
        """``self.X = ClassName(...)`` -> attribute type, per class."""
        for cls in self.classes.values():
            scope = self.scopes.get(cls.module, {})
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    target_class = self._class_of_call(node.value, scope)
                    if target_class is None:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            cls.attr_types.setdefault(
                                target.attr, target_class.qualname
                            )

    def _class_of_call(
        self, call: ast.Call, scope: Dict[str, str]
    ) -> Optional[ClassInfo]:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self._resolve_dotted(dotted, scope)
        if resolved is not None and resolved in self.classes:
            return self.classes[resolved]
        return None

    def _resolve_dotted(
        self, dotted: str, scope: Dict[str, str]
    ) -> Optional[str]:
        """A dotted source expression to a project qualname (or the
        dotted name itself for external roots)."""
        head, _, rest = dotted.partition(".")
        target = scope.get(head, head)
        full = f"{target}.{rest}" if rest else target
        if full in self.classes or full in self.functions:
            return full
        if target.split(".")[0] in EXTERNAL_ROOTS:
            return full
        return None

    # -- call extraction -----------------------------------------------------

    def _extract_calls(self, module: SourceModule) -> None:
        scope = self.scopes[module.module_name]
        # Module-level external calls (lock allocations at import time
        # are still seam bypasses).
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = self._external_dotted(node, scope)
                if dotted is not None:
                    self.external_calls.append(
                        ExternalCall(
                            module=module.module_name,
                            dotted=dotted,
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
        # Function-attributed edges.
        for function in self.functions.values():
            if function.module != module.module_name:
                continue
            sites = self.out_edges.setdefault(function.qualname, [])
            owner = (
                self.classes.get(function.owner)
                if function.owner is not None
                else None
            )
            var_types = self._local_var_types(function, scope)
            for node in ast.walk(function.node):
                if isinstance(node, ast.Call):
                    sites.extend(
                        self._resolve_call(
                            function, owner, node, scope, var_types
                        )
                    )

    def _local_var_types(
        self, function: FunctionInfo, scope: Dict[str, str]
    ) -> Dict[str, ClassInfo]:
        var_types: Dict[str, ClassInfo] = {}
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                cls = self._class_of_call(node.value, scope)
                if cls is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        var_types.setdefault(target.id, cls)
        return var_types

    def _external_dotted(
        self, call: ast.Call, scope: Dict[str, str]
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            target = scope.get(func.id)
            if target is not None and target.split(".")[0] in EXTERNAL_ROOTS:
                return target
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            target = scope.get(func.value.id, func.value.id)
            if (
                target.split(".")[0] in EXTERNAL_ROOTS
                and target not in self.module_names
            ):
                return f"{target}.{func.attr}"
        return None

    def _resolve_call(
        self,
        function: FunctionInfo,
        owner: Optional[ClassInfo],
        call: ast.Call,
        scope: Dict[str, str],
        var_types: Dict[str, ClassInfo],
    ) -> List[CallSite]:
        keywords = tuple(
            keyword.arg for keyword in call.keywords
            if keyword.arg is not None
        )
        star = any(keyword.arg is None for keyword in call.keywords)

        def site(callee: str, kind: str, fallback: bool = False,
                 arity: int = 1) -> CallSite:
            return CallSite(
                caller=function.qualname,
                callee=callee,
                kind=kind,
                path=function.path,
                line=call.lineno,
                col=call.col_offset,
                keywords=keywords,
                has_star_kwargs=star,
                fallback=fallback,
                arity=arity,
            )

        sites: List[CallSite] = []
        func = call.func

        if isinstance(func, ast.Name):
            target = scope.get(func.id)
            if target in self.classes:
                sites.append(site(target, "construct"))
            elif target in self.functions:
                sites.append(site(target, "call"))
            elif (
                target is not None
                and target.split(".")[0] in EXTERNAL_ROOTS
            ):
                sites.append(site(target, "external"))
        elif isinstance(func, ast.Attribute):
            sites.extend(
                self._resolve_attribute_call(
                    site, func, owner, scope, var_types
                )
            )

        sites.extend(self._thread_targets(site, call, owner, scope))
        return sites

    def _resolve_attribute_call(
        self,
        site,
        func: ast.Attribute,
        owner: Optional[ClassInfo],
        scope: Dict[str, str],
        var_types: Dict[str, ClassInfo],
    ) -> List[CallSite]:
        attr = func.attr
        base = func.value

        # self.method()
        if isinstance(base, ast.Name) and base.id == "self" and owner:
            method = self._lookup_method(owner, attr)
            if method is not None:
                return [site(method.qualname, "call")]
        # ClassName.method() / module.function() / time.sleep()
        if isinstance(base, ast.Name) and base.id != "self":
            target = scope.get(base.id)
            if target in self.classes:
                method = self._lookup_method(self.classes[target], attr)
                if method is not None:
                    return [site(method.qualname, "call")]
            if target is None and base.id in var_types:
                method = self._lookup_method(var_types[base.id], attr)
                if method is not None:
                    return [site(method.qualname, "call")]
            if target is not None:
                if target in self.module_names:
                    qualname = f"{target}.{attr}"
                    if qualname in self.functions:
                        return [site(qualname, "call")]
                    if qualname in self.classes:
                        return [site(qualname, "construct")]
                elif target.split(".")[0] in EXTERNAL_ROOTS:
                    return [site(f"{target}.{attr}", "external")]
            if base.id in var_types:
                method = self._lookup_method(var_types[base.id], attr)
                if method is not None:
                    return [site(method.qualname, "call")]
        # self._attr.method() via inferred attribute types
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and owner is not None
        ):
            attr_class = owner.attr_types.get(base.attr)
            if attr_class is not None:
                method = self._lookup_method(
                    self.classes[attr_class], attr
                )
                if method is not None:
                    return [site(method.qualname, "call")]
        # Fallback: every project class defining a method of this name.
        candidates = self.methods_by_name.get(attr, ())
        if candidates:
            return [
                site(
                    method.qualname, "call",
                    fallback=True, arity=len(candidates),
                )
                for method in candidates
            ]
        return []

    def _thread_targets(
        self,
        site,
        call: ast.Call,
        owner: Optional[ClassInfo],
        scope: Dict[str, str],
    ) -> List[CallSite]:
        """Edges for ``threading.Thread(target=f)`` / ``pool.submit(f)``."""
        candidates: List[ast.AST] = []
        func = call.func
        dotted = _dotted(func)
        resolved = (
            self._resolve_dotted(dotted, scope) if dotted else None
        )
        if resolved == "threading.Thread" or (
            dotted is not None and dotted.endswith("Thread")
            and resolved is None
        ):
            for keyword in call.keywords:
                if keyword.arg == "target":
                    candidates.append(keyword.value)
        elif isinstance(func, ast.Attribute) and func.attr == "submit":
            if call.args:
                candidates.append(call.args[0])
        sites: List[CallSite] = []
        for candidate in candidates:
            if (
                isinstance(candidate, ast.Attribute)
                and isinstance(candidate.value, ast.Name)
                and candidate.value.id == "self"
                and owner is not None
            ):
                method = self._lookup_method(owner, candidate.attr)
                if method is not None:
                    sites.append(site(method.qualname, "target"))
            elif isinstance(candidate, ast.Name):
                target = scope.get(candidate.id)
                if target in self.functions:
                    sites.append(site(target, "target"))
        return sites

    def _lookup_method(
        self, cls: ClassInfo, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """``name`` on ``cls`` or (recursively) its project bases."""
        seen = _seen if _seen is not None else set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        if name in cls.methods:
            return cls.methods[name]
        scope = self.scopes.get(cls.module, {})
        for base in cls.bases:
            resolved = self._resolve_dotted(base, scope)
            if resolved in self.classes:
                found = self._lookup_method(
                    self.classes[resolved], name, seen
                )
                if found is not None:
                    return found
        return None

    # -- reachability --------------------------------------------------------

    def reachable(
        self,
        roots: Sequence[str],
        max_fallback_arity: int = 2,
    ) -> Dict[str, Optional[CallSite]]:
        """BFS over call/construct/target edges from ``roots``.

        Returns ``{qualname: parent CallSite}`` (roots map to None) —
        the parent chain renders the shortest call path for
        diagnostics.  Fallback edges are followed only while their
        candidate set is small (``max_fallback_arity``): imprecise
        name-only matches must not flood the reachable set.

        A ``construct`` edge reaches the class's ``__init__`` *and*
        every method of the class — once a function holds an instance,
        any method may run (the executor pattern: construct, then call
        ``execute`` through a local variable the heuristics may miss).
        """
        parents: Dict[str, Optional[CallSite]] = {
            root: None for root in roots if root in self.functions
        }
        queue = list(parents)
        while queue:
            current = queue.pop(0)
            for edge in self.out_edges.get(current, ()):
                if edge.kind == "external":
                    continue
                if edge.fallback and edge.arity > max_fallback_arity:
                    continue
                targets: List[str] = []
                if edge.kind == "construct":
                    cls = self.classes.get(edge.callee)
                    if cls is not None:
                        targets.extend(
                            method.qualname
                            for method in cls.methods.values()
                        )
                elif edge.callee in self.functions:
                    targets.append(edge.callee)
                for target in targets:
                    if target not in parents:
                        parents[target] = edge
                        queue.append(target)
        return parents

    def render_path(
        self,
        parents: Dict[str, Optional[CallSite]],
        qualname: str,
    ) -> str:
        """``root.fn -> mid.fn -> leaf.fn`` from a BFS parent map."""
        chain: List[str] = []
        current: Optional[str] = qualname
        seen: Set[str] = set()
        while current is not None and current not in seen:
            seen.add(current)
            info = self.functions.get(current)
            chain.append(info.short if info is not None else current)
            edge = parents.get(current)
            current = edge.caller if edge is not None else None
        return " -> ".join(reversed(chain))


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    if isinstance(node, ast.Call):
        return _dotted(node.func)
    return None
